"""virStream bulk-data plane: client/server stream objects.

See :mod:`repro.stream.core` for the frame grammar and flow control.
"""

from repro.stream.core import (
    DEFAULT_CHUNK,
    DEFAULT_WINDOW,
    ClientStream,
    ServerStream,
    StreamConsole,
    stream_frame,
)

__all__ = [
    "DEFAULT_CHUNK",
    "DEFAULT_WINDOW",
    "ClientStream",
    "ServerStream",
    "StreamConsole",
    "stream_frame",
]
