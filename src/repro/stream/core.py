"""virStream: credit-based bulk-data streams over the RPC connection.

A stream is opened by an ordinary CALL (``storage.vol_upload``,
``storage.vol_download``, ``domain.open_console``,
``domain.backup_begin_pull``) and identified by that call's serial.
Every subsequent frame is ``MessageType.STREAM`` with the opening
procedure/serial in its header, in one of four shapes:

========== ======================= =====================================
status     body                    meaning
========== ======================= =====================================
CONTINUE   bytes/memoryview        one data chunk (≤ :data:`DEFAULT_CHUNK`)
CONTINUE   {"op":"credits","n":k}  flow control: receiver grants k chunks
OK         None (client → server)  sender finished; commit and confirm
OK         result (server→client)  stream completed, result attached
ERROR      error dict              abort (either direction)
========== ======================= =====================================

Flow control is credit-based, riding the same philosophy as the
per-connection ``max_client_requests`` window: each side may have at
most ``window`` unacknowledged chunks toward its peer, and the receiver
returns credits only as it *consumes* — a slow reader therefore
backpressures the sender instead of growing an unbounded buffer in the
daemon.  Chunks never exceed :data:`DEFAULT_CHUNK`, far under
``MAX_MESSAGE``.

Streams ride a *reliable-in-order but severable* link model: a dropped
or lost frame has no retransmit layer underneath, so any loss aborts
the stream on the side that observes it — never a dangle, never a
silent gap in the bytes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.errors import (
    ConnectionClosedError,
    DaemonCrashError,
    OperationAbortedError,
    RPCError,
    TransportStalledError,
    VirtError,
)
from repro.rpc.protocol import MessageType, ReplyStatus, RPCMessage

#: flow-control window: max unacknowledged chunks toward the peer
DEFAULT_WINDOW = 4
#: data chunk ceiling — comfortably under MAX_MESSAGE
DEFAULT_CHUNK = 256 * 1024
#: server-side outbound buffer bound; past it a slow reader is cut off
MAX_OUTBOX = 64


def stream_frame(number: int, serial: int, status: ReplyStatus, body: Any) -> bytes:
    """Pack one STREAM frame for the stream keyed (number, serial)."""
    return RPCMessage(number, MessageType.STREAM, serial, status, body).pack()


class ClientStream:
    """The client half of one open stream (``virStreamPtr``).

    Created by :meth:`RPCClient.open_stream`; ``info`` carries the
    opening call's reply body.  ``send``/``recv`` move data,
    ``finish`` half-closes and returns the server's completion result,
    ``abort`` tears down early.  Any transport casualty (sever, drop,
    daemon crash) aborts the stream locally — it never dangles.
    """

    def __init__(
        self,
        client: Any,
        procedure: str,
        number: int,
        serial: int,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self._client = client
        self.procedure = procedure
        self.number = number
        self.serial = serial
        self.window = window
        #: chunks we may still send before the server grants more
        self.credits = window
        #: chunks consumed locally but not yet credited back to the server
        self._owed = 0
        self._recv_buf: "Deque[Any]" = deque()
        #: "open" | "finished" | "aborted"
        self.state = "open"
        #: reply body of the opening call
        self.info: Any = None
        #: completion body the server attached to its final OK frame
        self.result: Any = None
        self.error: "Optional[VirtError]" = None
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- sending -----------------------------------------------------------

    def send(self, data: "bytes | bytearray | memoryview") -> int:
        """Send bytes into the stream, split into window-sized chunks.

        Chunk payloads travel as memoryviews — the XDR layer keeps them
        by reference, so no per-chunk copy happens on the way out.
        """
        if self.state == "aborted":
            raise self.error
        if self.state == "finished":
            raise RPCError(f"stream {self.procedure}#{self.serial} already finished")
        view = data if isinstance(data, memoryview) else memoryview(data)
        total = 0
        for start in range(0, len(view), DEFAULT_CHUNK):
            chunk = view[start : start + DEFAULT_CHUNK]
            if self.credits <= 0:
                raise TransportStalledError(
                    f"stream {self.procedure}#{self.serial}: flow-control "
                    f"window exhausted ({self.window} chunks unacknowledged)"
                )
            self.credits -= 1
            self._send_frame(
                stream_frame(self.number, self.serial, ReplyStatus.CONTINUE, chunk)
            )
            total += len(chunk)
            self.bytes_sent += len(chunk)
            if self.state == "aborted":
                raise self.error
        return total

    def finish(self) -> Any:
        """Half-close: tell the server we are done, await its result.

        For an upload this is the commit point — the server applies the
        staged bytes and answers with the completion body (or an error,
        re-raised here).  A link that dies before the confirmation
        aborts the stream and raises.
        """
        if self.state == "aborted":
            raise self.error
        if self.state == "finished":
            return self.result
        self._send_frame(stream_frame(self.number, self.serial, ReplyStatus.OK, None))
        if self.state == "aborted":
            raise self.error
        if self.state == "finished":
            return self.result
        # the finish frame went out but no completion came back
        self._finalize_abort(
            ConnectionClosedError(
                f"stream {self.procedure}#{self.serial}: no completion "
                "after finish (connection lost)"
            )
        )
        raise self.error

    def abort(self, reason: str = "aborted by client") -> None:
        """Tear the stream down early (both sides discard state)."""
        if self.state != "open":
            return
        try:
            self._client._send_stream_frame(
                stream_frame(
                    self.number,
                    self.serial,
                    ReplyStatus.ERROR,
                    OperationAbortedError(reason).to_dict(),
                )
            )
        except DaemonCrashError:
            self._finalize_abort(OperationAbortedError(reason))
            raise
        except VirtError:
            pass
        self._finalize_abort(OperationAbortedError(reason))

    def _send_frame(self, frame: bytes) -> None:
        try:
            delivered = self._client._send_stream_frame(frame)
        except DaemonCrashError:
            self._finalize_abort(
                ConnectionClosedError(
                    f"stream {self.procedure}#{self.serial}: daemon crashed mid-stream"
                )
            )
            raise
        except VirtError as exc:
            self._finalize_abort(
                ConnectionClosedError(
                    f"stream {self.procedure}#{self.serial}: {exc}"
                )
            )
            raise self.error from exc
        if not delivered:
            # the link silently ate the frame: without retransmit the
            # byte stream now has a hole, so the stream must die
            self._finalize_abort(
                ConnectionClosedError(
                    f"stream {self.procedure}#{self.serial}: frame lost on dead link"
                )
            )
            raise self.error

    # -- receiving ---------------------------------------------------------

    def recv(self) -> "bytes | memoryview":
        """Next buffered chunk, or ``b""`` (EOF once ``state`` is
        ``finished``, "nothing available yet" while still open).

        Consuming chunks returns credits to the server in half-window
        batches — that grant is what pumps the next chunks out of a
        download source, so a reader that stops calling ``recv``
        freezes the sender at one window of data.
        """
        if not self._recv_buf and self.state == "open":
            if not self._client._stream_link_ok():
                self._finalize_abort(
                    ConnectionClosedError(
                        f"stream {self.procedure}#{self.serial}: connection lost"
                    )
                )
                raise self.error
            if self._owed:
                self._flush_grants()
        if self._recv_buf:
            chunk = self._recv_buf.popleft()
            self._owed += 1
            if self.state == "open" and self._owed >= max(1, self.window // 2):
                self._flush_grants()
            return chunk
        if self.state == "aborted":
            raise self.error
        return b""

    def drain(self) -> bytes:
        """Read to EOF and return everything (the download helper)."""
        parts = []
        stalls = 0
        while True:
            chunk = self.recv()
            if chunk:
                parts.append(bytes(chunk))
                stalls = 0
                continue
            if self.state == "finished":
                return b"".join(parts)
            stalls += 1
            if stalls >= 2:
                self._finalize_abort(
                    ConnectionClosedError(
                        f"stream {self.procedure}#{self.serial}: stalled "
                        "with no data and no completion"
                    )
                )
                raise self.error

    def _flush_grants(self) -> None:
        n, self._owed = self._owed, 0
        if n <= 0:
            return
        self._send_frame(
            stream_frame(
                self.number,
                self.serial,
                ReplyStatus.CONTINUE,
                {"op": "credits", "n": n},
            )
        )

    # -- demux entry (called by RPCClient) ---------------------------------

    def _on_frame(self, message: RPCMessage) -> None:
        if self.state != "open":
            return
        body = message.body
        if message.status == ReplyStatus.CONTINUE:
            if isinstance(body, dict):
                if body.get("op") == "credits":
                    self.credits += int(body.get("n", 0))
                return
            if body is None:
                return
            self._recv_buf.append(body)
            self.bytes_received += len(body)
            return
        if message.status == ReplyStatus.OK:
            self.state = "finished"
            self.result = body
            self._client._forget_stream(self.serial)
            return
        error = (
            VirtError.from_dict(body)
            if isinstance(body, dict)
            else RPCError(f"stream {self.procedure}#{self.serial} aborted by peer")
        )
        self._finalize_abort(error)

    def _finalize_abort(self, error: VirtError) -> None:
        if self.state == "aborted":
            return
        self.state = "aborted"
        self.error = error
        self._client._forget_stream(self.serial)

    def _local_abort(self, reason: str) -> None:
        """Teardown with no wire traffic (link already dead)."""
        self._finalize_abort(
            ConnectionClosedError(
                f"stream {self.procedure}#{self.serial} aborted: {reason}"
            )
        )


class ServerStream:
    """The daemon half of one open stream.

    A handler obtains one via :meth:`RPCServer.open_stream` during the
    opening CALL's dispatch, then wires it either as a *sink*
    (``set_sink``: upload/console input — callbacks fire per incoming
    chunk and at finish) or as a *source* (``set_source``: download /
    backup pull — a pull callback is pumped one chunk per credit, so
    the daemon never buffers more than the client's window).
    """

    def __init__(
        self,
        server: Any,
        conn: Any,
        number: int,
        serial: int,
        label: str,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self._server = server
        self._conn = conn
        self.number = number
        self.serial = serial
        self.label = label
        self.window = window
        #: chunks we may push to the client before it grants more
        self.credits = window
        self.state = "open"
        self.bytes_in = 0
        self.bytes_out = 0
        self.error: "Optional[str]" = None
        #: detached ``stream.transfer`` span (tracing enabled only)
        self.span: Any = None
        self._on_data: "Optional[Callable[[Any], None]]" = None
        self._on_finish: "Optional[Callable[[], Any]]" = None
        self._on_abort: "Optional[Callable[[str], None]]" = None
        self._source: "Optional[Callable[[int], Optional[bytes]]]" = None
        self._source_result: Any = None
        self._outbox: "Deque[Any]" = deque()

    # -- handler wiring ----------------------------------------------------

    def set_sink(
        self,
        on_data: "Callable[[Any], None]",
        on_finish: "Optional[Callable[[], Any]]" = None,
        on_abort: "Optional[Callable[[str], None]]" = None,
    ) -> None:
        """Receive mode: ``on_data`` per chunk, ``on_finish`` at the
        client's half-close (its return value rides the completion
        frame), ``on_abort`` on any teardown short of finish."""
        self._on_data = on_data
        self._on_finish = on_finish
        self._on_abort = on_abort

    def set_source(
        self,
        read: "Callable[[int], Optional[bytes]]",
        result: Any = None,
    ) -> None:
        """Send mode: ``read(max_bytes)`` is pulled once per credit
        until it returns empty, then the stream finishes with
        ``result`` (called if callable).  Pumping starts immediately
        with the client's initial window."""
        self._source = read
        self._source_result = result
        self._pump()

    # -- sending (server → client) -----------------------------------------

    def send(self, data: "bytes | bytearray | memoryview") -> None:
        """Push bytes toward the client, respecting its credit window.

        Chunks beyond the window queue in a bounded outbox; a reader
        slow enough to overflow it is cut off with an abort rather than
        allowed to grow daemon memory without limit.
        """
        if self.state != "open":
            return
        view = data if isinstance(data, memoryview) else memoryview(data)
        for start in range(0, len(view), DEFAULT_CHUNK):
            chunk = view[start : start + DEFAULT_CHUNK]
            if self.credits > 0 and not self._outbox:
                self.credits -= 1
                self._push_data(chunk)
            else:
                self._outbox.append(chunk)
                if len(self._outbox) > MAX_OUTBOX:
                    self.abort("slow reader: outbound stream buffer overflow")
                    return
            if self.state != "open":
                return

    def finish(self, result: Any = None) -> None:
        """Server-side completion (source streams finish themselves)."""
        if self.state != "open":
            return
        self._push(stream_frame(self.number, self.serial, ReplyStatus.OK, result))
        self._teardown("finish")

    def abort(self, reason: str) -> None:
        """Server-initiated abort: tell the client, then tear down."""
        if self.state != "open":
            return
        self._push(
            stream_frame(
                self.number,
                self.serial,
                ReplyStatus.ERROR,
                OperationAbortedError(reason).to_dict(),
            )
        )
        self._teardown("abort", error=reason)

    def local_abort(self, reason: str) -> None:
        """Teardown with no wire traffic (connection already gone)."""
        self._teardown("abort", error=reason)

    def _pump(self) -> None:
        """Move outbox/source chunks out while credits allow."""
        while self.state == "open" and self.credits > 0:
            if self._outbox:
                chunk = self._outbox.popleft()
            elif self._source is not None:
                chunk = self._source(DEFAULT_CHUNK)
                if not chunk:
                    result = (
                        self._source_result()
                        if callable(self._source_result)
                        else self._source_result
                    )
                    self.finish(result)
                    return
            else:
                return
            self.credits -= 1
            self._push_data(chunk)

    def _push_data(self, chunk: "bytes | memoryview") -> None:
        self.bytes_out += len(chunk)
        self._server._count_stream_bytes("out", len(chunk))
        self._push(
            stream_frame(self.number, self.serial, ReplyStatus.CONTINUE, chunk)
        )

    def _push(self, frame: bytes) -> None:
        try:
            self._conn.push(frame)
        except ConnectionClosedError:
            self._teardown("abort", error="connection closed mid-stream")

    # -- incoming frames (routed by RPCServer) ------------------------------

    def handle_frame(self, message: RPCMessage) -> None:
        if self.state != "open":
            return
        body = message.body
        if message.status == ReplyStatus.CONTINUE:
            if isinstance(body, dict):
                if body.get("op") == "credits":
                    self.credits += int(body.get("n", 0))
                    self._pump()
                return
            if body is None:
                return
            self.bytes_in += len(body)
            self._server._count_stream_bytes("in", len(body))
            if self._on_data is not None:
                self._on_data(body)
            # consumed — hand the sender its credit back
            self._push(
                stream_frame(
                    self.number,
                    self.serial,
                    ReplyStatus.CONTINUE,
                    {"op": "credits", "n": 1},
                )
            )
            return
        if message.status == ReplyStatus.OK:
            result: Any = None
            if self._on_finish is not None:
                try:
                    result = self._on_finish()
                except DaemonCrashError:
                    # a crashed daemon confirms nothing: tear down
                    # locally and let the crash propagate like a kill
                    self._teardown("abort", error="daemon crashed at commit")
                    raise
                except VirtError as exc:
                    self._push(
                        stream_frame(
                            self.number, self.serial, ReplyStatus.ERROR, exc.to_dict()
                        )
                    )
                    self._teardown("abort", error=repr(exc))
                    return
            self.finish(result)
            return
        reason = (
            body.get("message", "aborted by peer")
            if isinstance(body, dict)
            else "aborted by peer"
        )
        self._teardown("abort", error=reason)

    def _teardown(self, outcome: str, error: "Optional[str]" = None) -> None:
        if self.state != "open":
            return
        self.state = "finished" if outcome == "finish" else "aborted"
        if outcome != "finish":
            self.error = error or "aborted"
            if self._on_abort is not None:
                try:
                    self._on_abort(self.error)
                except VirtError:
                    pass
        self._server._stream_closed(self, outcome)


class StreamConsole:
    """Duck-typed console handle over a bidirectional stream.

    Mirrors the local console object: ``send`` writes guest input,
    ``recv`` returns buffered guest output, ``close`` detaches.
    """

    def __init__(self, stream: ClientStream) -> None:
        self._stream = stream

    @property
    def closed(self) -> bool:
        return self._stream.state != "open"

    def send(self, data: "str | bytes") -> None:
        payload = data.encode("utf-8") if isinstance(data, str) else data
        self._stream.send(payload)

    def recv(self) -> bytes:
        return bytes(self._stream.recv())

    def close(self) -> None:
        if self._stream.state == "open":
            try:
                self._stream.finish()
            except VirtError:
                pass
