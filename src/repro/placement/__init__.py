"""Placement and consolidation policies over the uniform API (extension).

The paper motivates libvirt with exactly this kind of tooling: a
management layer that can *decide* where guests run because it can see
and move them uniformly.  This package provides host selection
strategies for initial placement and a consolidation planner that
emits live-migration plans.
"""

from repro.placement.planner import ConsolidationPlan, MigrationStep, plan_consolidation
from repro.placement.strategies import (
    BalancedPlacement,
    BestFitPlacement,
    FirstFitPlacement,
    PlacementError,
    PlacementStrategy,
)

__all__ = [
    "PlacementStrategy",
    "FirstFitPlacement",
    "BestFitPlacement",
    "BalancedPlacement",
    "PlacementError",
    "plan_consolidation",
    "ConsolidationPlan",
    "MigrationStep",
]
