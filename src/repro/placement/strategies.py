"""Host-selection strategies for initial guest placement.

A strategy picks the host for a new guest given each candidate's free
capacity.  All strategies work purely through the uniform API
(``Connection.node_info``), so they run unchanged against any mix of
hypervisors — the paper's heterogeneous-pool management story.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.connection import Connection
from repro.errors import VirtError


class PlacementError(VirtError):
    """No host can satisfy the request.

    When raised from a batch plan (:meth:`PlacementStrategy.place_all`)
    the error carries what *did* fit, so a fleet operation can act on
    the partial plan instead of restarting from scratch:

    * ``index`` — position of the first request that could not be
      placed (None for single-request failures);
    * ``partial`` — the connections chosen for requests ``0..index-1``,
      in request order.
    """

    def __init__(
        self,
        message: str,
        index: "Optional[int]" = None,
        partial: "Optional[List[Connection]]" = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.partial = list(partial) if partial is not None else []


class HostView:
    """One candidate host's capacity snapshot."""

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        info = connection.node_info()
        self.hostname = connection.hostname()
        self.total_kib = info["memory_kib"]
        self.free_kib = info["free_memory_kib"]
        self.cpus = info["cpus"]
        self.guests = info["guests"]

    @property
    def used_fraction(self) -> float:
        return 1.0 - self.free_kib / max(1, self.total_kib)

    def fits(self, memory_kib: int) -> bool:
        return self.free_kib >= memory_kib

    def commit(self, memory_kib: int) -> None:
        """Account a planned placement so later decisions see it."""
        self.free_kib -= memory_kib
        self.guests += 1


class PlacementStrategy:
    """Interface: choose a host view for a memory request."""

    name = "abstract"

    def choose(self, hosts: Sequence[HostView], memory_kib: int) -> HostView:
        raise NotImplementedError

    def place(self, connections: Sequence[Connection], memory_kib: int) -> Connection:
        """One-shot convenience: snapshot, choose, return the connection."""
        hosts = [HostView(conn) for conn in connections]
        return self.choose(hosts, memory_kib).connection

    def place_all(
        self, connections: Sequence[Connection], requests_kib: Sequence[int]
    ) -> List[Connection]:
        """Plan a whole batch, accounting each placement against the next.

        If request *i* cannot fit anywhere, the raised
        :class:`PlacementError` reports ``index=i`` and carries the
        already-planned prefix in ``partial`` — callers draining a host
        can migrate what fits rather than throwing the plan away.
        """
        hosts = [HostView(conn) for conn in connections]
        placements: List[Connection] = []
        for index, memory_kib in enumerate(requests_kib):
            try:
                view = self.choose(hosts, memory_kib)
            except PlacementError as exc:
                raise PlacementError(
                    f"request {index} of {len(requests_kib)} cannot be placed: "
                    f"{exc} ({len(placements)} earlier placements still valid)",
                    index=index,
                    partial=placements,
                ) from exc
            view.commit(memory_kib)
            placements.append(view.connection)
        return placements

    def _candidates(self, hosts: Sequence[HostView], memory_kib: int) -> List[HostView]:
        fitting = [h for h in hosts if h.fits(memory_kib)]
        if not fitting:
            raise PlacementError(
                f"no host can fit {memory_kib} KiB "
                f"(free: {[(h.hostname, h.free_kib) for h in hosts]})"
            )
        return fitting


class FirstFitPlacement(PlacementStrategy):
    """The first host (in given order) with room — fast, packs early hosts."""

    name = "first-fit"

    def choose(self, hosts: Sequence[HostView], memory_kib: int) -> HostView:
        return self._candidates(hosts, memory_kib)[0]


class BestFitPlacement(PlacementStrategy):
    """The fitting host with the *least* remaining room — densest packing."""

    name = "best-fit"

    def choose(self, hosts: Sequence[HostView], memory_kib: int) -> HostView:
        return min(self._candidates(hosts, memory_kib), key=lambda h: h.free_kib)


class BalancedPlacement(PlacementStrategy):
    """The fitting host with the *most* free room — spreads load evenly."""

    name = "balanced"

    def choose(self, hosts: Sequence[HostView], memory_kib: int) -> HostView:
        return max(self._candidates(hosts, memory_kib), key=lambda h: h.free_kib)


STRATEGIES: Dict[str, PlacementStrategy] = {
    "first-fit": FirstFitPlacement(),
    "best-fit": BestFitPlacement(),
    "balanced": BalancedPlacement(),
}


def strategy(name: str) -> PlacementStrategy:
    """Look a strategy up by name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise PlacementError(f"unknown placement strategy {name!r}") from None
