"""Consolidation planning: pack guests onto fewer hosts via migration.

The planner computes a migration plan (first-fit decreasing onto the
fullest hosts) without touching anything; ``ConsolidationPlan.execute``
then live-migrates each guest through the uniform API, collecting the
per-step statistics.  Planning and acting are separate so operators can
review the plan first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.connection import Connection
from repro.core.states import ACTIVE_STATES
from repro.errors import InvalidArgumentError, VirtError


@dataclass
class MigrationStep:
    """One planned move."""

    guest: str
    source: str
    destination: str
    memory_kib: int
    #: filled in by execute()
    stats: "dict | None" = None
    error: "str | None" = None

    @property
    def succeeded(self) -> bool:
        return self.stats is not None and self.error is None


@dataclass
class ConsolidationPlan:
    """An ordered migration plan plus its predicted outcome."""

    steps: List[MigrationStep]
    hosts_freed: List[str]
    _connections: Dict[str, Connection] = field(default_factory=dict, repr=False)

    @property
    def is_empty(self) -> bool:
        return not self.steps

    def execute(self, live: bool = True, max_downtime_s: float = 0.3) -> List[MigrationStep]:
        """Run the plan; failed steps are recorded, later steps continue."""
        for step in self.steps:
            source = self._connections[step.source]
            destination = self._connections[step.destination]
            try:
                domain = source.lookup_domain(step.guest)
                moved = domain.migrate(
                    destination, live=live, max_downtime_s=max_downtime_s
                )
                step.stats = moved.last_migration_stats
            except VirtError as exc:
                step.error = str(exc)
        return self.steps

    def total_downtime_s(self) -> float:
        return sum(s.stats["downtime_s"] for s in self.steps if s.succeeded)


def plan_consolidation(
    connections: Sequence[Connection], keep_hosts: "int | None" = None
) -> ConsolidationPlan:
    """Plan packing all running guests onto the fewest (or ``keep_hosts``) hosts.

    First-fit decreasing: targets are the currently fullest hosts;
    guests leave the emptiest hosts, biggest guest first.
    """
    if len(connections) < 2:
        raise InvalidArgumentError("consolidation needs at least two hosts")
    by_name: Dict[str, Connection] = {}
    loads: Dict[str, int] = {}
    frees: Dict[str, int] = {}
    guests: Dict[str, List[tuple]] = {}
    for conn in connections:
        hostname = conn.hostname()
        if hostname in by_name:
            raise InvalidArgumentError(f"duplicate hostname {hostname!r}")
        by_name[hostname] = conn
        info = conn.node_info()
        frees[hostname] = info["free_memory_kib"]
        loads[hostname] = info["memory_kib"] - info["free_memory_kib"]
        guests[hostname] = []
        for domain in conn.list_domains(active=True):
            if domain.state() in ACTIVE_STATES:
                guests[hostname].append((domain.name, domain.info().memory_kib))

    total_used = sum(
        memory for host_guests in guests.values() for _, memory in host_guests
    )
    # how many hosts are needed at all (capacity lower bound)?
    ordered = sorted(by_name, key=lambda h: loads[h], reverse=True)
    if keep_hosts is None:
        capacity_sorted = sorted(
            by_name, key=lambda h: frees[h] + _used_by_guests(guests[h]), reverse=True
        )
        keep_hosts = 0
        remaining = total_used
        for hostname in capacity_sorted:
            if remaining <= 0:
                break
            keep_hosts += 1
            remaining -= frees[hostname] + _used_by_guests(guests[hostname])
        keep_hosts = max(1, keep_hosts)
    if not 1 <= keep_hosts < len(connections):
        raise InvalidArgumentError(
            f"keep_hosts must be in [1, {len(connections) - 1}], got {keep_hosts}"
        )

    targets = ordered[:keep_hosts]
    sources = ordered[keep_hosts:]
    # free capacity the plan can still consume on each target
    room = {h: frees[h] for h in targets}
    steps: List[MigrationStep] = []
    stranded = False
    for source in sources:
        # biggest guests first: classic first-fit decreasing
        for name, memory in sorted(guests[source], key=lambda g: -g[1]):
            placed = False
            for target in targets:
                if room[target] >= memory:
                    room[target] -= memory
                    steps.append(MigrationStep(name, source, target, memory))
                    placed = True
                    break
            if not placed:
                stranded = True
    freed = [] if stranded else list(sources)
    if stranded:
        # only hosts whose every guest found a home are actually freed
        moved_from = {}
        for step in steps:
            moved_from.setdefault(step.source, set()).add(step.guest)
        for source in sources:
            if {g for g, _ in guests[source]} == moved_from.get(source, set()):
                freed.append(source)
    return ConsolidationPlan(steps=steps, hosts_freed=sorted(freed), _connections=by_name)


def _used_by_guests(host_guests: List[tuple]) -> int:
    return sum(memory for _, memory in host_guests)
