"""Paper-style table and series rendering for the benchmark suite.

Every benchmark prints its table/figure rows and also writes them to
``benchmarks/results/<experiment>.txt`` so a ``--benchmark-only`` run
leaves the reproduced artefacts on disk.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table with a title rule."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str, x_label: str, xs: Sequence[object], series: "dict[str, Sequence[object]]"
) -> str:
    """Render figure data: one x column plus one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(title, headers, rows)


def save_result(experiment: str, text: str) -> pathlib.Path:
    """Persist a rendered table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def emit(experiment: str, text: str) -> None:
    """Print and persist one experiment's rendered output."""
    print()
    print(text)
    save_result(experiment, text)
