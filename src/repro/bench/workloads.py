"""Workload construction shared by the benchmark suite."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.connection import Connection
from repro.core.uri import ConnectionURI
from repro.drivers.lxc import LxcDriver
from repro.drivers.qemu import QemuDriver
from repro.drivers.test import TestDriver
from repro.drivers.xen import XenDriver
from repro.errors import InvalidArgumentError
from repro.hypervisors.base import Backend
from repro.hypervisors.container_backend import ContainerBackend
from repro.hypervisors.host import SimHost
from repro.hypervisors.qemu_backend import QemuBackend
from repro.hypervisors.xen_backend import XenBackend
from repro.util.clock import Clock, VirtualClock
from repro.xmlconfig.domain import DomainConfig, OSConfig

GIB_KIB = 1024 * 1024

#: backend kinds the cross-hypervisor benchmarks sweep
BACKEND_KINDS = ("kvm", "qemu", "xen", "lxc")


def build_backend(
    kind: str,
    clock: "Optional[Clock]" = None,
    cpus: int = 64,
    memory_gib: int = 256,
) -> Backend:
    """A fresh simulated host + backend of the requested kind."""
    clock = clock or VirtualClock()
    host = SimHost(
        hostname=f"{kind}-bench", cpus=cpus, memory_kib=memory_gib * GIB_KIB, clock=clock
    )
    if kind == "kvm":
        return QemuBackend(host=host, clock=clock, kvm=True)
    if kind == "qemu":
        return QemuBackend(host=host, clock=clock, kvm=False)
    if kind == "xen":
        return XenBackend(host=host, clock=clock)
    if kind == "lxc":
        return ContainerBackend(host=host, clock=clock)
    raise InvalidArgumentError(f"unknown benchmark backend kind {kind!r}")


def build_local_connection(
    kind: str, clock: "Optional[Clock]" = None, **backend_kwargs: int
) -> "Tuple[Connection, Backend]":
    """A connection whose driver sits directly on a fresh backend."""
    clock = clock or VirtualClock()
    if kind == "test":
        driver = TestDriver(seed_default=False)
        return (
            Connection(driver, ConnectionURI.parse("test:///bench")),
            driver.backend,
        )
    backend = build_backend(kind, clock=clock, **backend_kwargs)
    if kind in ("kvm", "qemu"):
        driver = QemuDriver(backend)
    elif kind == "xen":
        driver = XenDriver(backend)
    else:
        driver = LxcDriver(backend)
    scheme = "qemu" if kind in ("kvm", "qemu") else kind
    return Connection(driver, ConnectionURI.parse(f"{scheme}:///bench")), backend


def guest_config(
    kind: str, name: str = "bench-guest", memory_gib: float = 1.0, vcpus: int = 1
) -> DomainConfig:
    """The canonical benchmark guest, phrased for each hypervisor."""
    memory_kib = int(memory_gib * GIB_KIB)
    if kind in ("kvm", "qemu"):
        domain_type = "kvm" if kind == "kvm" else "qemu"
        return DomainConfig(
            name=name, domain_type=domain_type, memory_kib=memory_kib, vcpus=vcpus
        )
    if kind == "xen":
        return DomainConfig(
            name=name,
            domain_type="xen",
            memory_kib=memory_kib,
            vcpus=vcpus,
            os=OSConfig("xen", "x86_64", ["hd"]),
        )
    if kind == "lxc":
        return DomainConfig(
            name=name,
            domain_type="lxc",
            memory_kib=memory_kib,
            vcpus=vcpus,
            os=OSConfig("exe", "x86_64", [], init="/sbin/init"),
        )
    return DomainConfig(
        name=name, domain_type=kind, memory_kib=memory_kib, vcpus=vcpus
    )
