"""Benchmark harness utilities: table formatting, result capture,
workload construction shared by the ``benchmarks/`` suite."""

from repro.bench.tables import format_series, format_table, save_result
from repro.bench.workloads import (
    build_backend,
    build_local_connection,
    guest_config,
)

__all__ = [
    "format_table",
    "format_series",
    "save_result",
    "build_backend",
    "build_local_connection",
    "guest_config",
]
