"""The daemon administration interface (extension).

The DATE 2010 paper's daemon had no runtime self-management; libvirt
later grew a dedicated admin API (``libvirt-admin``) for exactly that
gap, and this package implements its core surface against the
simulated daemon:

* server enumeration and workerpool control
  (``srv-list``/``srv-threadpool-info``/``srv-threadpool-set``),
* client visibility and limits (``srv-clients-*``, ``client-list``,
  ``client-info``, ``client-disconnect``),
* runtime logging control (``dmn-log-info``/``dmn-log-define``).

Implemented as an extension of the reproduction (documented in
DESIGN.md §5 follow-ups), it reuses the daemon's existing substrate:
the workerpool, the client table, and the RCU logging subsystem.
"""

from repro.admin.api import AdminClient, AdminConnection, AdminServer, admin_open

__all__ = ["admin_open", "AdminConnection", "AdminServer", "AdminClient"]
