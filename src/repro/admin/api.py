"""Client-side administration API (``virAdm*`` analogues)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.daemon.registry import lookup_daemon
from repro.errors import ConnectionClosedError, InvalidArgumentError
from repro.rpc.client import RPCClient
from repro.util import typedparams as tp
from repro.util.typedparams import TypedParameter, TypedParamList
from repro.util.virtlog import parse_priority


def admin_open(
    hostname: str, credentials: "Optional[Dict[str, Any]]" = None
) -> "AdminConnection":
    """Open an administration connection to a daemon's admin server.

    The daemon must have called :meth:`Libvirtd.enable_admin`; by
    default the admin socket only accepts uid 0 (the interface grants
    full daemon control, so it is root-only — same policy as
    ``virt-admin``).
    """
    daemon = lookup_daemon(hostname)
    listener = daemon.listener("unix", server="admin")
    creds = dict(credentials or {"uid": 0, "username": "root"})
    channel = listener.connect(creds)
    client = RPCClient(channel)
    client.call("admin.connect_open")
    return AdminConnection(client, hostname)


class AdminConnection:
    """An open connection to the daemon's administration server."""

    def __init__(self, client: RPCClient, hostname: str) -> None:
        self._client = client
        self.hostname = hostname

    @property
    def closed(self) -> bool:
        return self._client.closed

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "AdminConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._client.closed:
            raise ConnectionClosedError("administration connection is closed")

    # -- servers -----------------------------------------------------------

    def list_servers(self) -> "List[AdminServer]":
        """``srv-list``: the server objects contained in the daemon."""
        self._check_open()
        rows = self._client.call("admin.srv_list")
        return [AdminServer(self, row["name"]) for row in rows]

    def lookup_server(self, name: str) -> "AdminServer":
        self._check_open()
        names = [s.name for s in self.list_servers()]
        if name not in names:
            raise InvalidArgumentError(f"no server named {name!r}")
        return AdminServer(self, name)

    # -- daemon logging ------------------------------------------------------

    def get_logging(self) -> Dict[str, Any]:
        """``dmn-log-info``: level, filters, outputs."""
        self._check_open()
        return self._client.call("admin.dmn_log_info")

    def set_logging_level(self, level: "int | str") -> None:
        """``dmn-log-define --level``."""
        self._check_open()
        self._client.call("admin.dmn_log_define", {"level": parse_priority(level)})

    def set_logging_filters(self, filters: str) -> None:
        """``dmn-log-define --filters`` (space-separated ``level:match``)."""
        self._check_open()
        self._client.call("admin.dmn_log_define", {"filters": filters})

    def set_logging_outputs(self, outputs: str) -> None:
        """``dmn-log-define --outputs`` (``level:dest[:data]``)."""
        self._check_open()
        self._client.call("admin.dmn_log_define", {"outputs": outputs})

    # -- observability -------------------------------------------------------

    def server_stats(self, server: str = "libvirtd") -> Dict[str, Any]:
        """``server-stats``: live workerpool/RPC/driver metrics."""
        self._check_open()
        return self._client.call("admin.srv_stats", {"server": server})

    def client_stats(self, client_id: "Optional[int]" = None) -> Any:
        """``client-stats``: per-client traffic and activity counters."""
        self._check_open()
        body = {} if client_id is None else {"id": client_id}
        return self._client.call("admin.client_stats", body)

    def reset_stats(self) -> Dict[str, Any]:
        """``reset-stats``: zero the daemon's counters and span buffer."""
        self._check_open()
        return self._client.call("admin.reset_stats")

    def metrics_text(self) -> str:
        """``metrics``: the daemon's Prometheus exposition page."""
        self._check_open()
        return self._client.call("admin.metrics_export")["text"]

    def trace_list(self, limit: "Optional[int]" = None) -> List[Dict[str, Any]]:
        """``trace-list``: one summary row per buffered trace."""
        self._check_open()
        body = {} if limit is None else {"limit": limit}
        return self._client.call("admin.trace_list", body)

    def trace_get(self, trace_id: int) -> List[Dict[str, Any]]:
        """``trace-get``: every span of one trace (in-flight included)."""
        self._check_open()
        return self._client.call("admin.trace_get", {"trace_id": trace_id})

    def flight_dump(self) -> Dict[str, Any]:
        """``flight-dump``: the daemon's flight-recorder ring + stats."""
        self._check_open()
        return self._client.call("admin.flight_dump")

    # -- lifecycle -----------------------------------------------------------

    def daemon_shutdown(self, graceful: bool = True) -> Dict[str, str]:
        """``daemon-shutdown``: ask the daemon to exit.

        ``graceful=True`` drains — in-flight calls finish, active jobs
        fail cleanly, journals flush, clients are notified and closed
        cleanly.  ``graceful=False`` simulates ``kill -9`` (the crash
        fault-injection path: links severed, journal left as-is).  The
        daemon replies before tearing down; the teardown happens on its
        next :meth:`~repro.daemon.libvirtd.Libvirtd.tick`.
        """
        self._check_open()
        return self._client.call(
            "admin.daemon_shutdown",
            {"mode": "graceful" if graceful else "crash"},
        )


class AdminServer:
    """Handle to one server object inside the daemon."""

    def __init__(self, conn: AdminConnection, name: str) -> None:
        self._conn = conn
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdminServer({self.name!r} on {self._conn.hostname})"

    def stats(self) -> Dict[str, Any]:
        """``server-stats`` scoped to this server object."""
        return self._conn.server_stats(self.name)

    # -- threadpool --------------------------------------------------------

    def threadpool_info(self) -> Dict[str, int]:
        """``srv-threadpool-info``."""
        return self._conn._client.call(
            "admin.srv_threadpool_info", {"server": self.name}
        )

    def set_threadpool(
        self,
        min_workers: "Optional[int]" = None,
        max_workers: "Optional[int]" = None,
        prio_workers: "Optional[int]" = None,
    ) -> None:
        """``srv-threadpool-set`` (convenience wrapper over typed params)."""
        params: List[TypedParameter] = TypedParamList()
        if min_workers is not None:
            tp.add_uint(params, "minWorkers", min_workers)
        if max_workers is not None:
            tp.add_uint(params, "maxWorkers", max_workers)
        if prio_workers is not None:
            tp.add_uint(params, "prioWorkers", prio_workers)
        self.set_threadpool_params(params)

    def set_threadpool_params(self, params: List[TypedParameter]) -> None:
        """The raw typed-parameter form (what the wire carries)."""
        self._conn._client.call(
            "admin.srv_threadpool_set", {"server": self.name, "params": params}
        )

    # -- client limits ---------------------------------------------------------

    def clients_info(self) -> Dict[str, int]:
        """``srv-clients-info``: current and maximum client counts,
        plus the per-connection ``max_client_requests`` window."""
        return self._conn._client.call(
            "admin.srv_clients_info", {"server": self.name}
        )

    def set_client_limits(
        self,
        max_clients: "Optional[int]" = None,
        max_client_requests: "Optional[int]" = None,
    ) -> None:
        """``srv-clients-set``."""
        params: List[TypedParameter] = TypedParamList()
        if max_clients is not None:
            tp.add_uint(params, "nclients_max", max_clients)
        if max_client_requests is not None:
            tp.add_uint(params, "max_client_requests", max_client_requests)
        self.set_client_limit_params(params)

    def set_client_limit_params(self, params: List[TypedParameter]) -> None:
        self._conn._client.call(
            "admin.srv_clients_set", {"server": self.name, "params": params}
        )

    # -- clients ------------------------------------------------------------------

    def list_clients(self) -> "List[AdminClient]":
        """``client-list``: clients connected to this server."""
        rows = self._conn._client.call("admin.client_list", {"server": self.name})
        return [
            AdminClient(self, row["id"], row["transport"], row["connected_since"])
            for row in rows
        ]

    def lookup_client(self, client_id: int) -> "AdminClient":
        for client in self.list_clients():
            if client.id == client_id:
                return client
        raise InvalidArgumentError(
            f"no client {client_id} on server {self.name!r}"
        )


class AdminClient:
    """Handle to one client connected to a daemon server."""

    def __init__(self, server: AdminServer, client_id: int, transport: str, connected_since: float) -> None:
        self._server = server
        self.id = client_id
        self.transport = transport
        self.connected_since = connected_since

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdminClient(id={self.id}, transport={self.transport!r})"

    def info(self) -> Dict[str, Any]:
        """``client-info``: identity details (transport-dependent)."""
        return self._server._conn._client.call("admin.client_info", {"id": self.id})

    def disconnect(self) -> None:
        """``client-disconnect``: force-close this client's connection."""
        self._server._conn._client.call("admin.client_disconnect", {"id": self.id})
