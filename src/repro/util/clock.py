"""Clock abstraction separating simulated latency from wall time.

Simulated hypervisor backends charge operation latencies against a
:class:`Clock`.  Three implementations cover the use cases:

* :class:`VirtualClock` — pure accounting; ``sleep`` advances a counter
  instantly.  Used by unit tests and by latency benchmarks, where the
  quantity of interest is *modelled* time.
* :class:`WallClock` — real time, real sleeping.
* :class:`ScaledWallClock` — real sleeping scaled down by a factor, so
  concurrency experiments (threadpool scalability, daemon throughput)
  run real threads that genuinely overlap, yet finish quickly.  Reported
  durations are scaled back up to modelled seconds.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface: a monotonically increasing time source that can sleep."""

    def now(self) -> float:
        """Return the current time in (modelled) seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` of modelled time."""
        raise NotImplementedError


class VirtualClock(Clock):
    """A thread-safe counter clock: ``sleep`` returns immediately.

    ``now()`` reports total modelled seconds accumulated by every
    ``sleep``/``advance`` call, so single-threaded sequences of charged
    operations read like an event-driven simulation timeline.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Advance the clock and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        with self._lock:
            self._now += seconds
            return self._now


class WallClock(Clock):
    """Real monotonic time with real sleeping."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ScaledWallClock(Clock):
    """Wall clock with sleeps compressed by ``scale``.

    A modelled sleep of 1 s with ``scale=0.001`` blocks the calling
    thread for 1 ms of real time.  ``now()`` reports modelled seconds
    (real elapsed time divided by the scale), so timelines measured with
    this clock are directly comparable to :class:`VirtualClock` ones
    while real threads still contend and overlap.
    """

    def __init__(self, scale: float = 0.001) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)
        self._epoch = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._epoch) / self.scale

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds * self.scale)


class Stopwatch:
    """Measure an interval against any :class:`Clock`.

    Usable directly or as a context manager::

        with Stopwatch(clock) as sw:
            backend.start(domain)
        print(sw.elapsed)
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._start: float | None = None
        self._stop: float | None = None

    def start(self) -> "Stopwatch":
        self._start = self.clock.now()
        self._stop = None
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was never started")
        self._stop = self.clock.now()
        return self.elapsed

    @property
    def elapsed(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was never started")
        end = self._stop if self._stop is not None else self.clock.now()
        return end - self._start

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
