"""Utility substrate shared by every pyvirt subsystem.

Nothing in this package knows about domains, drivers, or the RPC layer;
it provides the clock abstraction, unit handling, typed parameters, the
daemon workerpool, and the logging subsystem they are all built on.
"""

from repro.util.clock import Clock, ScaledWallClock, Stopwatch, VirtualClock, WallClock
from repro.util.units import format_size, parse_size
from repro.util.uuidutil import generate_uuid, is_valid_uuid, normalize_uuid

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "ScaledWallClock",
    "Stopwatch",
    "parse_size",
    "format_size",
    "generate_uuid",
    "is_valid_uuid",
    "normalize_uuid",
]
