"""Daemon logging subsystem: global level, per-module filters, outputs.

Mirrors libvirt's logger: four priorities in an inclusive hierarchy
(DEBUG logs everything, ERROR only errors), per-module *filters* that
override the global level by match string, and *outputs* that each have
their own minimum priority and destination.

Runtime reconfiguration uses read-copy-update: a new settings snapshot
is parsed and built privately, then swapped in atomically, so a thread
logging concurrently always sees either the complete old or the
complete new configuration (never a half-defined set of filters).
"""

from __future__ import annotations

import io
import sys
import threading
from typing import Callable, List, Optional, Tuple

from repro.errors import ErrorDomain, InvalidArgumentError

# priorities (virLogPriority): inclusive hierarchy, DEBUG is most verbose
LOG_DEBUG = 1
LOG_INFO = 2
LOG_WARN = 3
LOG_ERROR = 4

PRIORITY_NAMES = {
    LOG_DEBUG: "debug",
    LOG_INFO: "info",
    LOG_WARN: "warning",
    LOG_ERROR: "error",
}

_NAME_TO_PRIORITY = {name: prio for prio, name in PRIORITY_NAMES.items()}


def parse_priority(text: "str | int") -> int:
    """Accept ``1``–``4`` or a level name; return the numeric priority."""
    if isinstance(text, int):
        value = text
    else:
        candidate = text.strip().lower()
        if candidate in _NAME_TO_PRIORITY:
            return _NAME_TO_PRIORITY[candidate]
        try:
            value = int(candidate)
        except ValueError:
            raise InvalidArgumentError(f"unknown log priority {text!r}") from None
    if value not in PRIORITY_NAMES:
        raise InvalidArgumentError(f"log priority must be 1..4, got {value}")
    return value


class LogRecord:
    """One emitted message, before output formatting."""

    __slots__ = ("priority", "source", "message", "timestamp")

    def __init__(self, priority: int, source: str, message: str, timestamp: float) -> None:
        self.priority = priority
        self.source = source
        self.message = message
        self.timestamp = timestamp

    def format(self) -> str:
        name = PRIORITY_NAMES[self.priority]
        return f"{self.timestamp:.6f}: {name} : {self.source}: {self.message}"


#: characters allowed in a filter match string (module-path-ish tokens);
#: anything else usually means a malformed multi-filter list
_MATCH_RE = __import__("re").compile(r"^[A-Za-z0-9_./-]+$")


class LogFilter:
    """``level:match`` — overrides the global level for matching sources."""

    __slots__ = ("priority", "match")

    def __init__(self, priority: int, match: str) -> None:
        if priority not in PRIORITY_NAMES:
            raise InvalidArgumentError(f"filter priority must be 1..4, got {priority}")
        if not match:
            raise InvalidArgumentError("filter match string must be non-empty")
        if not _MATCH_RE.match(match):
            raise InvalidArgumentError(
                f"filter match string {match!r} contains invalid characters "
                "(filters are space-delimited)"
            )
        self.priority = priority
        self.match = match

    def matches(self, source: str) -> bool:
        return self.match in source

    def format(self) -> str:
        return f"{self.priority}:{self.match}"

    @staticmethod
    def parse(text: str) -> "LogFilter":
        head, sep, match = text.partition(":")
        if not sep:
            raise InvalidArgumentError(
                f"filter {text!r} does not match 'level:match' format"
            )
        if not head.isdigit():
            raise InvalidArgumentError(f"filter {text!r}: level must be numeric")
        return LogFilter(parse_priority(int(head)), match)


def parse_filters(text: str) -> List[LogFilter]:
    """Parse a space-separated filter list string."""
    return [LogFilter.parse(part) for part in text.split()]


def format_filters(filters: List[LogFilter]) -> str:
    """Inverse of :func:`parse_filters`."""
    return " ".join(f.format() for f in filters)


class LogOutput:
    """``level:dest[:data]`` — a destination with its own minimum priority.

    Destinations: ``stderr``, ``file`` (data = absolute path), ``memory``
    (in-process ring used by tests and the simulated journald/syslog).
    ``journald`` and ``syslog`` are accepted and routed to the memory
    sink, since no system daemon exists in the simulation.
    """

    DESTINATIONS = ("stderr", "file", "memory", "journald", "syslog")
    _NEEDS_DATA = ("file", "syslog")

    def __init__(self, priority: int, dest: str, data: "Optional[str]" = None) -> None:
        if priority not in PRIORITY_NAMES:
            raise InvalidArgumentError(f"output priority must be 1..4, got {priority}")
        if dest not in self.DESTINATIONS:
            raise InvalidArgumentError(f"unknown log output destination {dest!r}")
        if dest in self._NEEDS_DATA and not data:
            raise InvalidArgumentError(f"output destination {dest!r} requires data")
        if dest == "file" and data is not None and not data.startswith("/"):
            raise InvalidArgumentError(
                f"file output requires an absolute path, got {data!r}"
            )
        self.priority = priority
        self.dest = dest
        self.data = data
        self._records: List[str] = []  # memory/journald/syslog sink
        self._stream: "Optional[io.TextIOBase]" = None

    def format(self) -> str:
        if self.data is not None:
            return f"{self.priority}:{self.dest}:{self.data}"
        return f"{self.priority}:{self.dest}"

    @staticmethod
    def parse(text: str) -> "LogOutput":
        parts = text.split(":", 2)
        if len(parts) < 2:
            raise InvalidArgumentError(
                f"output {text!r} does not match 'level:dest[:data]' format"
            )
        if not parts[0].isdigit():
            raise InvalidArgumentError(f"output {text!r}: level must be numeric")
        priority = parse_priority(int(parts[0]))
        dest = parts[1]
        data = parts[2] if len(parts) == 3 else None
        return LogOutput(priority, dest, data)

    def emit(self, record: LogRecord) -> None:
        if record.priority < self.priority:
            return
        line = record.format()
        if self.dest == "stderr":
            print(line, file=sys.stderr)
        elif self.dest == "file":
            if self._stream is None:
                self._stream = open(self.data, "a", encoding="utf-8")  # noqa: SIM115
            self._stream.write(line + "\n")
            self._stream.flush()
        else:  # memory / journald / syslog sinks
            self._records.append(line)

    @property
    def records(self) -> List[str]:
        """Messages captured by memory-backed destinations."""
        return list(self._records)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


def parse_outputs(text: str) -> List[LogOutput]:
    """Parse a space-separated output list string."""
    return [LogOutput.parse(part) for part in text.split()]


def format_outputs(outputs: List[LogOutput]) -> str:
    """Inverse of :func:`parse_outputs`."""
    return " ".join(o.format() for o in outputs)


class _Settings:
    """Immutable snapshot of the logger configuration (RCU payload)."""

    __slots__ = ("level", "filters", "outputs")

    def __init__(self, level: int, filters: Tuple[LogFilter, ...], outputs: Tuple[LogOutput, ...]) -> None:
        self.level = level
        self.filters = filters
        self.outputs = outputs


class Logger:
    """The logging subsystem instance embedded in each daemon."""

    def __init__(
        self,
        level: int = LOG_ERROR,
        clock: "Optional[Callable[[], float]]" = None,
    ) -> None:
        default_output = LogOutput(LOG_DEBUG, "memory")
        self._settings = _Settings(parse_priority(level), (), (default_output,))
        self._emit_lock = threading.Lock()
        self._now = clock or (lambda: 0.0)
        self._counter = 0

    # -- configuration (RCU swap) ------------------------------------

    @property
    def level(self) -> int:
        return self._settings.level

    def set_level(self, level: "int | str") -> None:
        """Atomically replace the global level."""
        snap = self._settings
        self._settings = _Settings(parse_priority(level), snap.filters, snap.outputs)

    def get_filters(self) -> str:
        return format_filters(list(self._settings.filters))

    def set_filters(self, text: str) -> None:
        """Parse and atomically install a new filter set.

        Parsing happens against a private copy; only a fully valid set
        is ever published (the thesis's RCU fix for torn filter sets).
        """
        new_filters = tuple(parse_filters(text))
        snap = self._settings
        self._settings = _Settings(snap.level, new_filters, snap.outputs)

    def get_outputs(self) -> str:
        return format_outputs(list(self._settings.outputs))

    def set_outputs(self, text: str) -> None:
        """Parse and atomically install a new output set."""
        new_outputs = tuple(parse_outputs(text))
        if not new_outputs:
            raise InvalidArgumentError("at least one log output is required")
        snap = self._settings
        old_outputs = snap.outputs
        self._settings = _Settings(snap.level, snap.filters, new_outputs)
        for output in old_outputs:
            output.close()

    # -- emission ----------------------------------------------------

    def effective_priority(self, source: str) -> int:
        """Minimum priority that will be logged for ``source``."""
        snap = self._settings
        for filt in snap.filters:
            if filt.matches(source):
                return filt.priority
        return snap.level

    def log(self, priority: int, source: str, message: str) -> bool:
        """Emit a message; returns True if any output accepted it."""
        if priority not in PRIORITY_NAMES:
            raise InvalidArgumentError(f"log priority must be 1..4, got {priority}")
        snap = self._settings
        if priority < self.effective_priority(source):
            return False
        record = LogRecord(priority, source, message, self._now())
        emitted = False
        with self._emit_lock:
            self._counter += 1
            for output in snap.outputs:
                if priority >= output.priority:
                    output.emit(record)
                    emitted = True
        return emitted

    def structured(self, priority: int, source: str, event: str, **fields: object) -> bool:
        """Emit one ``event key=value ...`` line (machine-parsable).

        Values containing whitespace, ``=`` or quotes are double-quoted
        with backslash escaping; everything else is written bare.  The
        observability layer uses this to push metric samples and stats
        snapshots through the ordinary filter/output pipeline.
        """
        parts = [event]
        for key, value in fields.items():
            parts.append(f"{key}={format_structured_value(value)}")
        return self.log(priority, source, " ".join(parts))

    def debug(self, source: str, message: str) -> bool:
        return self.log(LOG_DEBUG, source, message)

    def info(self, source: str, message: str) -> bool:
        return self.log(LOG_INFO, source, message)

    def warn(self, source: str, message: str) -> bool:
        return self.log(LOG_WARN, source, message)

    def error(self, source: str, message: str) -> bool:
        return self.log(LOG_ERROR, source, message)

    @property
    def messages_emitted(self) -> int:
        """Total records accepted by at least one output (for tests)."""
        return self._counter

    def memory_records(self) -> List[str]:
        """All lines captured by memory-backed outputs, in order."""
        lines: List[str] = []
        for output in self._settings.outputs:
            if output.dest in ("memory", "journald", "syslog"):
                lines.extend(output.records)
        return lines


def format_structured_value(value: object) -> str:
    """Render one structured-log value (quote only when necessary)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        text = f"{value:.9f}".rstrip("0").rstrip(".")
        return text or "0"
    text = str(value)
    if text and not any(ch in text for ch in ' \t"=\n'):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{escaped}"'


def parse_structured_line(message: str) -> "Tuple[str, dict]":
    """Inverse of :meth:`Logger.structured`: ``(event, fields)``.

    Only splits the event token and ``key=value`` pairs; values come
    back as strings (callers coerce types as needed).
    """
    matches = __import__("re").findall(
        r'(\w+)=("(?:[^"\\]|\\.)*"|\S+)', message
    )
    event = message.split(" ", 1)[0] if message else ""
    fields = {}
    for key, raw in matches:
        if raw.startswith('"') and raw.endswith('"'):
            raw = (
                raw[1:-1]
                .replace("\\n", "\n")
                .replace('\\"', '"')
                .replace("\\\\", "\\")
            )
        fields[key] = raw
    return event, fields


#: domain tag used when loggers report their own errors
_LOG_DOMAIN = ErrorDomain.LOGGING
