"""Workerpool: the daemon's concurrent task execution substrate.

Mirrors libvirt's ``virThreadPool``:

* a dynamic set of *ordinary workers*, grown on demand between a
  minimum and a maximum, that execute any queued job;
* a constant set of *priority workers* that only execute jobs flagged
  high-priority — the guaranteed-finish lane, so a critical operation
  (e.g. destroying a hung domain) can always run even when every
  ordinary worker is blocked on an unresponsive hypervisor;
* runtime-adjustable limits: lowering the maximum terminates surplus
  workers cooperatively — each worker re-checks the limit after waking
  and after finishing a job (libvirt's ``virThreadPoolWorkerQuitHelper``
  design, which avoids the deadlock of queueing "poison" jobs while
  holding the pool lock).
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, InvalidStateError
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional

from repro.errors import InvalidArgumentError, InvalidOperationError, OperationAbortedError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.observability.metrics import MetricsRegistry


class _Job:
    __slots__ = ("func", "args", "kwargs", "priority", "future", "enqueued_at")

    def __init__(self, func: Callable[..., Any], args: tuple, kwargs: dict, priority: bool) -> None:
        self.func = func
        self.args = args
        self.kwargs = kwargs
        self.priority = priority
        self.future: "Future[Any]" = Future()
        #: modelled enqueue time, stamped by the pool when metrics are on
        self.enqueued_at = 0.0


class WorkerPool:
    """A bounded, dynamically sized pool with a priority lane."""

    def __init__(
        self,
        min_workers: int = 1,
        max_workers: int = 5,
        prio_workers: int = 0,
        name: str = "pool",
        metrics: "Optional[MetricsRegistry]" = None,
        now: "Optional[Callable[[], float]]" = None,
    ) -> None:
        _validate_limits(min_workers, max_workers, prio_workers)
        self.name = name
        self.metrics = metrics
        self._now = now or (metrics.now if metrics is not None else (lambda: 0.0))
        if metrics is not None:
            self._m_jobs = metrics.counter(
                "workerpool_jobs_total",
                "Jobs submitted, by pool and lane",
                ("pool", "lane"),
            )
            self._m_wait = metrics.histogram(
                "workerpool_job_wait_seconds",
                "Modelled time a job spent queued before a worker took it",
                ("pool",),
            )
            self._m_service = metrics.histogram(
                "workerpool_job_service_seconds",
                "Modelled time a worker spent executing a job",
                ("pool",),
            )
            # live-view gauges: evaluated at scrape time, never pushed
            depth = metrics.gauge(
                "workerpool_queue_depth", "Jobs waiting for a worker", ("pool",)
            )
            depth.labels(pool=name).set_function(
                lambda: len(self._queue) + len(self._prio_queue)
            )
            workers = metrics.gauge(
                "workerpool_workers", "Worker threads by kind", ("pool", "kind")
            )
            workers.labels(pool=name, kind="total").set_function(
                lambda: self._n_workers
            )
            workers.labels(pool=name, kind="free").set_function(
                lambda: self._free_workers
            )
            workers.labels(pool=name, kind="priority").set_function(
                lambda: self._n_prio_workers
            )
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: "Deque[_Job]" = deque()
        self._prio_queue: "Deque[_Job]" = deque()
        self._min_workers = min_workers
        self._max_workers = max_workers
        self._want_prio_workers = prio_workers
        self._n_workers = 0
        self._n_prio_workers = 0
        self._free_workers = 0
        self._quit = False
        self._threads: List[threading.Thread] = []
        self._jobs_completed = 0
        self._jobs_cancelled = 0
        with self._cond:
            for _ in range(min_workers):
                self._spawn_locked(priority=False)
            for _ in range(prio_workers):
                self._spawn_locked(priority=True)

    # -- public API ---------------------------------------------------

    def submit(
        self, func: Callable[..., Any], *args: Any, priority: bool = False, **kwargs: Any
    ) -> "Future[Any]":
        """Queue a job; returns a Future resolved by a worker.

        ``priority=True`` routes the job to the guaranteed lane: both
        ordinary and priority workers may execute it.  Ordinary jobs are
        only ever executed by ordinary workers.
        """
        job = _Job(func, args, kwargs, priority)
        if self.metrics is not None:
            job.enqueued_at = self._now()
        with self._cond:
            if self._quit:
                raise InvalidOperationError(f"workerpool {self.name!r} is shut down")
            if self.metrics is not None:
                self._m_jobs.labels(
                    pool=self.name, lane="priority" if priority else "normal"
                ).inc()
            if priority:
                self._prio_queue.append(job)
            else:
                self._queue.append(job)
            # grow on demand: pending work exceeds idle ordinary capacity
            pending = len(self._queue) + len(self._prio_queue)
            if pending > self._free_workers and self._n_workers < self._max_workers:
                self._spawn_locked(priority=False)
            self._cond.notify_all()
        return job.future

    def set_parameters(
        self,
        min_workers: "Optional[int]" = None,
        max_workers: "Optional[int]" = None,
        prio_workers: "Optional[int]" = None,
    ) -> None:
        """Adjust pool limits at runtime (the admin-API entry point)."""
        with self._cond:
            if self._quit:
                raise InvalidOperationError(f"workerpool {self.name!r} is shut down")
            new_min = self._min_workers if min_workers is None else min_workers
            new_max = self._max_workers if max_workers is None else max_workers
            new_prio = self._want_prio_workers if prio_workers is None else prio_workers
            _validate_limits(new_min, new_max, new_prio)
            self._min_workers = new_min
            self._max_workers = new_max
            self._want_prio_workers = new_prio
            while self._n_workers < self._min_workers:
                self._spawn_locked(priority=False)
            while self._n_prio_workers < self._want_prio_workers:
                self._spawn_locked(priority=True)
            # surplus workers notice the new limits via the quit helper
            self._cond.notify_all()

    def stats(self) -> Dict[str, int]:
        """Snapshot of the pool counters, keyed like ``srv-threadpool-info``."""
        with self._lock:
            return {
                "minWorkers": self._min_workers,
                "maxWorkers": self._max_workers,
                "nWorkers": self._n_workers,
                "freeWorkers": self._free_workers,
                "prioWorkers": self._n_prio_workers,
                "jobQueueDepth": len(self._queue) + len(self._prio_queue),
            }

    @property
    def jobs_completed(self) -> int:
        with self._lock:
            return self._jobs_completed

    @property
    def jobs_cancelled(self) -> int:
        with self._lock:
            return self._jobs_cancelled

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool.

        With ``wait=True`` queued jobs drain first; otherwise pending
        futures fail with :class:`OperationAbortedError`.
        """
        with self._cond:
            if self._quit:
                return
            self._quit = True
            if not wait:
                cancelled = list(self._queue) + list(self._prio_queue)
                self._queue.clear()
                self._prio_queue.clear()
            else:
                cancelled = []
            self._cond.notify_all()
        for job in cancelled:
            _deliver(
                job.future.set_exception,
                OperationAbortedError("workerpool shut down before job ran"),
            )
        # a worker may itself trigger shutdown (e.g. an admin handler
        # tearing the daemon down) — never join the current thread
        me = threading.current_thread()
        for thread in list(self._threads):
            if thread is not me:
                thread.join(timeout=10.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- worker machinery ----------------------------------------------

    def _spawn_locked(self, priority: bool) -> None:
        if priority:
            self._n_prio_workers += 1
        else:
            self._n_workers += 1
        thread = threading.Thread(
            target=self._worker_loop,
            args=(priority,),
            name=f"{self.name}-{'prio-' if priority else ''}worker",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def _should_quit_locked(self, priority: bool) -> bool:
        """The quit helper: has this worker become surplus?"""
        if priority:
            return self._n_prio_workers > self._want_prio_workers
        return self._n_workers > self._max_workers

    def _worker_loop(self, priority: bool) -> None:
        while True:
            with self._cond:
                job = self._take_job_locked(priority)
                if job is None:
                    # either surplus or pool quitting with drained queues
                    if priority:
                        self._n_prio_workers -= 1
                    else:
                        self._n_workers -= 1
                    self._cond.notify_all()
                    break
            # a Future cancelled while queued must not execute — and must
            # not kill this worker with InvalidStateError on delivery
            if not job.future.set_running_or_notify_cancel():
                with self._lock:
                    self._jobs_cancelled += 1
                continue
            started = 0.0
            if self.metrics is not None:
                started = self._now()
                self._m_wait.labels(pool=self.name).observe(
                    max(0.0, started - job.enqueued_at)
                )
            try:
                result = job.func(*job.args, **job.kwargs)
            except BaseException as exc:  # noqa: BLE001 - forwarded via the future
                _deliver(job.future.set_exception, exc)
            else:
                _deliver(job.future.set_result, result)
            if self.metrics is not None:
                self._m_service.labels(pool=self.name).observe(
                    max(0.0, self._now() - started)
                )
            with self._lock:
                self._jobs_completed += 1

    def _take_job_locked(self, priority: bool) -> "Optional[_Job]":
        """Wait for and dequeue a job; None means the worker must exit."""
        while True:
            if self._should_quit_locked(priority):
                return None
            if self._prio_queue:
                return self._prio_queue.popleft()
            if not priority and self._queue:
                return self._queue.popleft()
            if self._quit:
                return None
            if not priority:
                self._free_workers += 1
            try:
                self._cond.wait()
            finally:
                if not priority:
                    self._free_workers -= 1


def _deliver(setter: Callable[[Any], None], payload: Any) -> None:
    """Resolve a Future, tolerating one already cancelled/resolved —
    an InvalidStateError here used to kill the worker thread and leak
    its ``_n_workers`` slot."""
    try:
        setter(payload)
    except InvalidStateError:
        pass


def _validate_limits(min_workers: int, max_workers: int, prio_workers: int) -> None:
    for label, value in (
        ("min_workers", min_workers),
        ("max_workers", max_workers),
        ("prio_workers", prio_workers),
    ):
        if not isinstance(value, int) or value < 0:
            raise InvalidArgumentError(f"{label} must be a non-negative integer, got {value!r}")
    if max_workers < 1:
        raise InvalidArgumentError("max_workers must be at least 1")
    if min_workers > max_workers:
        raise InvalidArgumentError(
            f"min_workers ({min_workers}) must not exceed max_workers ({max_workers})"
        )
