"""A small deterministic timer/callback scheduler.

Used by the daemon for keepalive probes and by simulated backends for
deferred state transitions (e.g. a guest finishing its boot sequence).
The loop is driven explicitly — ``run_until(t)`` fires every timer due
by modelled time ``t`` — which keeps simulations deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import InvalidArgumentError


class _Timer:
    __slots__ = ("deadline", "interval", "callback", "timer_id", "cancelled")

    def __init__(self, deadline: float, interval: "Optional[float]", callback: Callable[[], Any], timer_id: int) -> None:
        self.deadline = deadline
        self.interval = interval
        self.callback = callback
        self.timer_id = timer_id
        self.cancelled = False


class EventLoop:
    """Priority-queue timer scheduler over an external time source."""

    def __init__(self, now: Callable[[], float]) -> None:
        self._now = now
        self._lock = threading.Lock()
        self._heap: List[Tuple[float, int, _Timer]] = []
        self._timers: Dict[int, _Timer] = {}
        self._ids = itertools.count(1)

    def add_timeout(self, delay: float, callback: Callable[[], Any]) -> int:
        """Schedule ``callback`` once, ``delay`` seconds from now."""
        return self._add(delay, None, callback)

    def add_interval(self, interval: float, callback: Callable[[], Any]) -> int:
        """Schedule ``callback`` repeatedly every ``interval`` seconds."""
        if interval <= 0:
            raise InvalidArgumentError("interval must be positive")
        return self._add(interval, interval, callback)

    def _add(self, delay: float, interval: "Optional[float]", callback: Callable[[], Any]) -> int:
        if delay < 0:
            raise InvalidArgumentError("delay must be non-negative")
        with self._lock:
            timer_id = next(self._ids)
            timer = _Timer(self._now() + delay, interval, callback, timer_id)
            self._timers[timer_id] = timer
            heapq.heappush(self._heap, (timer.deadline, timer_id, timer))
            return timer_id

    def cancel(self, timer_id: int) -> bool:
        """Cancel a pending timer; returns False if it no longer exists."""
        with self._lock:
            timer = self._timers.pop(timer_id, None)
            if timer is None:
                return False
            timer.cancelled = True
            return True

    def next_deadline(self) -> "Optional[float]":
        """Earliest pending deadline, or None when idle."""
        with self._lock:
            while self._heap and self._heap[0][2].cancelled:
                heapq.heappop(self._heap)
            return self._heap[0][0] if self._heap else None

    def run_due(self) -> int:
        """Fire every timer due at the current time; returns count fired."""
        return self.run_until(self._now())

    def run_until(self, deadline: float) -> int:
        """Fire, in order, every timer with deadline <= ``deadline``."""
        fired = 0
        while True:
            with self._lock:
                while self._heap and self._heap[0][2].cancelled:
                    heapq.heappop(self._heap)
                if not self._heap or self._heap[0][0] > deadline:
                    return fired
                _, _, timer = heapq.heappop(self._heap)
                if timer.interval is not None:
                    timer.deadline += timer.interval
                    heapq.heappush(self._heap, (timer.deadline, timer.timer_id, timer))
                else:
                    self._timers.pop(timer.timer_id, None)
            timer.callback()
            fired += 1

    def drive(self, clock: Any, until: float) -> int:
        """Advance a :class:`~repro.util.clock.VirtualClock` through every
        timer deadline up to modelled time ``until``, firing timers in
        order — the deterministic stand-in for "let the poll loop run
        for N seconds" that keeps soak tests off the wall clock.

        Timer callbacks may themselves advance the clock (a keepalive
        probe blocking on its ping deadline does); the loop re-reads
        ``clock.now()`` every iteration, so time never runs backwards.
        Returns the number of timers fired.
        """
        fired = 0
        while True:
            deadline = self.next_deadline()
            if deadline is None or deadline > until:
                break
            now = self._now()
            if deadline > now:
                clock.advance(deadline - now)
            fired += self.run_due()
        now = self._now()
        if until > now:
            clock.advance(until - now)
        return fired

    def pending(self) -> int:
        """Number of live timers."""
        with self._lock:
            return len(self._timers)
