"""Typed parameters — libvirt's ``virTypedParameter`` facility.

A typed parameter is a ``(field, type, value)`` triple; APIs that would
otherwise need their signatures to grow over time take lists of them.
The RPC layer serializes them with a tag byte per value, so both ends
agree on types without a protocol version bump.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Tuple, Union

from repro.errors import InvalidArgumentError

#: maximum length of a parameter field name (mirrors libvirt's limit)
FIELD_LENGTH = 80

Scalar = Union[int, float, bool, str]


class ParamType(enum.IntEnum):
    """Value type tags (``virTypedParameterType``)."""

    INT = 1
    UINT = 2
    LLONG = 3
    ULLONG = 4
    DOUBLE = 5
    BOOLEAN = 6
    STRING = 7


_INT_BOUNDS = {
    ParamType.INT: (-(2**31), 2**31 - 1),
    ParamType.UINT: (0, 2**32 - 1),
    ParamType.LLONG: (-(2**63), 2**63 - 1),
    ParamType.ULLONG: (0, 2**64 - 1),
}


class TypedParameter:
    """One named, typed scalar value."""

    __slots__ = ("field", "type", "value")

    def __init__(self, field: str, ptype: ParamType, value: Scalar) -> None:
        if not field or len(field) > FIELD_LENGTH:
            raise InvalidArgumentError(
                f"parameter field name must be 1..{FIELD_LENGTH} chars, got {field!r}"
            )
        ptype = ParamType(ptype)
        self.field = field
        self.type = ptype
        self.value = _check_value(field, ptype, value)

    def __repr__(self) -> str:
        return f"TypedParameter({self.field!r}, {self.type.name}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypedParameter):
            return NotImplemented
        return (
            self.field == other.field
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.field, self.type, self.value))


class TypedParamList(List[TypedParameter]):
    """A list that *is* a typed-parameter set, even when empty.

    The XDR value codec infers "typed params" from list contents, which
    is ambiguous for ``[]`` — a plain empty list and an empty parameter
    set encode identically and decode as a bare list, silently dropping
    the type.  APIs that return parameter sets wrap them in this class
    so the encoder emits the typed-params tag unconditionally and an
    empty set round-trips as an empty set.
    """

    __slots__ = ()


def _check_value(field: str, ptype: ParamType, value: Scalar) -> Scalar:
    """Validate and normalize ``value`` for ``ptype``."""
    if ptype == ParamType.BOOLEAN:
        if not isinstance(value, (bool, int)):
            raise InvalidArgumentError(f"{field}: boolean expected, got {value!r}")
        return bool(value)
    if ptype == ParamType.STRING:
        if not isinstance(value, str):
            raise InvalidArgumentError(f"{field}: string expected, got {value!r}")
        return value
    if ptype == ParamType.DOUBLE:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise InvalidArgumentError(f"{field}: number expected, got {value!r}")
        return float(value)
    # integral types
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidArgumentError(f"{field}: integer expected, got {value!r}")
    low, high = _INT_BOUNDS[ptype]
    if not low <= value <= high:
        raise InvalidArgumentError(
            f"{field}: value {value} out of range for {ptype.name}"
        )
    return value


def add_int(params: List[TypedParameter], field: str, value: int) -> None:
    """Append a signed 32-bit parameter (``virTypedParamsAddInt``)."""
    params.append(TypedParameter(field, ParamType.INT, value))


def add_uint(params: List[TypedParameter], field: str, value: int) -> None:
    """Append an unsigned 32-bit parameter."""
    params.append(TypedParameter(field, ParamType.UINT, value))


def add_llong(params: List[TypedParameter], field: str, value: int) -> None:
    """Append a signed 64-bit parameter."""
    params.append(TypedParameter(field, ParamType.LLONG, value))


def add_ullong(params: List[TypedParameter], field: str, value: int) -> None:
    """Append an unsigned 64-bit parameter."""
    params.append(TypedParameter(field, ParamType.ULLONG, value))


def add_double(params: List[TypedParameter], field: str, value: float) -> None:
    """Append a double parameter."""
    params.append(TypedParameter(field, ParamType.DOUBLE, value))


def add_boolean(params: List[TypedParameter], field: str, value: bool) -> None:
    """Append a boolean parameter."""
    params.append(TypedParameter(field, ParamType.BOOLEAN, value))


def add_string(params: List[TypedParameter], field: str, value: str) -> None:
    """Append a string parameter."""
    params.append(TypedParameter(field, ParamType.STRING, value))


def to_dict(params: Iterable[TypedParameter]) -> Dict[str, Scalar]:
    """Collapse a parameter list into ``{field: value}``.

    Duplicate fields are rejected, matching daemon-side validation.
    """
    result: Dict[str, Scalar] = {}
    for param in params:
        if param.field in result:
            raise InvalidArgumentError(f"duplicate parameter {param.field!r}")
        result[param.field] = param.value
    return result


def from_dict(values: Mapping[str, Scalar]) -> List[TypedParameter]:
    """Build a parameter list from plain values, inferring types.

    Inference: bool → BOOLEAN, int → LLONG if negative else ULLONG,
    float → DOUBLE, str → STRING.
    """
    params: List[TypedParameter] = []
    for field, value in values.items():
        params.append(TypedParameter(field, infer_type(value), value))
    return params


def infer_type(value: Scalar) -> ParamType:
    """Map a Python scalar to the widest matching :class:`ParamType`."""
    if isinstance(value, bool):
        return ParamType.BOOLEAN
    if isinstance(value, int):
        return ParamType.LLONG if value < 0 else ParamType.ULLONG
    if isinstance(value, float):
        return ParamType.DOUBLE
    if isinstance(value, str):
        return ParamType.STRING
    raise InvalidArgumentError(f"unsupported parameter value {value!r}")


def validate_fields(
    params: Iterable[TypedParameter],
    allowed: Mapping[str, ParamType],
    read_only: "Tuple[str, ...]" = (),
) -> None:
    """Daemon-side validation of a caller-supplied parameter list.

    Every field must be known, carry the declared type, appear at most
    once, and not be in the read-only set.
    """
    seen = set()
    for param in params:
        if param.field not in allowed:
            raise InvalidArgumentError(f"unknown parameter {param.field!r}")
        if param.field in read_only:
            raise InvalidArgumentError(f"parameter {param.field!r} is read-only")
        if param.type != allowed[param.field]:
            raise InvalidArgumentError(
                f"parameter {param.field!r} must be {allowed[param.field].name}, "
                f"got {param.type.name}"
            )
        if param.field in seen:
            raise InvalidArgumentError(f"duplicate parameter {param.field!r}")
        seen.add(param.field)
