"""Size-unit parsing and formatting.

Libvirt's canonical memory unit is KiB; pyvirt keeps bytes canonical
internally and provides KiB helpers where the XML layer needs them.
Both IEC binary units (KiB, MiB, ...) and their SI look-alikes (KB, MB,
interpreted decimally, as libvirt does) are accepted.
"""

from __future__ import annotations

import re

from repro.errors import InvalidArgumentError

_BINARY = 1024
_DECIMAL = 1000

#: multiplier in bytes for every accepted unit suffix (case-insensitive)
UNIT_MULTIPLIERS = {
    "b": 1,
    "bytes": 1,
    "k": _BINARY,
    "kib": _BINARY,
    "kb": _DECIMAL,
    "m": _BINARY**2,
    "mib": _BINARY**2,
    "mb": _DECIMAL**2,
    "g": _BINARY**3,
    "gib": _BINARY**3,
    "gb": _DECIMAL**3,
    "t": _BINARY**4,
    "tib": _BINARY**4,
    "tb": _DECIMAL**4,
    "p": _BINARY**5,
    "pib": _BINARY**5,
    "pb": _DECIMAL**5,
}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([A-Za-z]*)\s*$")


def parse_size(text: "str | int | float", default_unit: str = "b") -> int:
    """Parse a human size string (``"2 GiB"``, ``"512M"``) into bytes.

    Bare numbers are interpreted in ``default_unit``.  The result is
    always an integer number of bytes, rounded down.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise InvalidArgumentError(f"size must be non-negative, got {text}")
        return int(text * unit_multiplier(default_unit))
    match = _SIZE_RE.match(text)
    if not match:
        raise InvalidArgumentError(f"cannot parse size {text!r}")
    value = float(match.group(1))
    unit = match.group(2) or default_unit
    return int(value * unit_multiplier(unit))


def unit_multiplier(unit: str) -> int:
    """Return the byte multiplier for a unit suffix."""
    try:
        return UNIT_MULTIPLIERS[unit.lower()]
    except KeyError:
        raise InvalidArgumentError(f"unknown size unit {unit!r}") from None


def parse_size_kib(text: "str | int | float", default_unit: str = "kib") -> int:
    """Parse a size and return whole KiB (libvirt's memory unit)."""
    return parse_size(text, default_unit=default_unit) // _BINARY


def format_size(num_bytes: int, precision: int = 1) -> str:
    """Render a byte count with the largest IEC unit that keeps value >= 1."""
    if num_bytes < 0:
        raise InvalidArgumentError(f"size must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if value < _BINARY or suffix == "PiB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.{precision}f} {suffix}"
        value /= _BINARY
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Render a duration with an adaptive unit (us/ms/s)."""
    if seconds < 0:
        raise InvalidArgumentError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
