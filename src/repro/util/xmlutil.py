"""Thin helpers over ``xml.etree.ElementTree`` used by ``repro.xmlconfig``.

All parse failures surface as :class:`repro.errors.XMLError` so callers
never have to catch ElementTree internals.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.errors import XMLError


def parse_xml(text: str) -> ET.Element:
    """Parse an XML document, wrapping syntax errors in :class:`XMLError`."""
    try:
        return ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLError(f"malformed XML: {exc}") from exc


def element_to_string(root: ET.Element, pretty: bool = True) -> str:
    """Serialize an element tree, pretty-printed by default."""
    if pretty:
        ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def child_text(
    elem: ET.Element, tag: str, default: "Optional[str]" = None
) -> "Optional[str]":
    """Text content of the first ``tag`` child, or ``default``."""
    child = elem.find(tag)
    if child is None or child.text is None:
        return default
    return child.text.strip()


def require_child_text(elem: ET.Element, tag: str) -> str:
    """Text content of a mandatory child, raising :class:`XMLError` if absent."""
    text = child_text(elem, tag)
    if text is None or text == "":
        raise XMLError(f"missing required element <{tag}> under <{elem.tag}>")
    return text


def require_attr(elem: ET.Element, name: str) -> str:
    """A mandatory attribute value, raising :class:`XMLError` if absent."""
    value = elem.get(name)
    if value is None:
        raise XMLError(f"missing required attribute {name!r} on <{elem.tag}>")
    return value


def int_child_text(elem: ET.Element, tag: str, default: "Optional[int]" = None) -> "Optional[int]":
    """Integer content of a child element, or ``default``."""
    text = child_text(elem, tag)
    if text is None:
        return default
    try:
        return int(text)
    except ValueError as exc:
        raise XMLError(f"element <{tag}> must hold an integer, got {text!r}") from exc


def int_attr(elem: ET.Element, name: str, default: "Optional[int]" = None) -> "Optional[int]":
    """Integer attribute value, or ``default``."""
    value = elem.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError as exc:
        raise XMLError(
            f"attribute {name!r} on <{elem.tag}> must be an integer, got {value!r}"
        ) from exc


def sub_element(parent: ET.Element, tag: str, text: "Optional[str]" = None, **attrs: str) -> ET.Element:
    """Create a child element with optional text and attributes."""
    child = ET.SubElement(parent, tag, {k: str(v) for k, v in attrs.items()})
    if text is not None:
        child.text = str(text)
    return child
