"""UUID helpers with optional deterministic generation.

Simulated backends accept a seeded :class:`random.Random` so whole
scenario runs (examples, benchmarks) are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
import re
import uuid as _uuid

_UUID_RE = re.compile(
    r"^[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}$"
)


def generate_uuid(rng: "random.Random | None" = None) -> str:
    """Return a canonical lowercase UUID string.

    With ``rng`` given, the UUID is derived from the generator's stream
    (a valid version-4 UUID), making runs reproducible.
    """
    if rng is None:
        return str(_uuid.uuid4())
    raw = rng.getrandbits(128)
    return str(_uuid.UUID(int=raw, version=4))


def is_valid_uuid(text: str) -> bool:
    """True if ``text`` is a canonical-form UUID (any case)."""
    if not isinstance(text, str):
        return False
    return bool(_UUID_RE.match(text.lower()))


def normalize_uuid(text: str) -> str:
    """Lowercase and validate a UUID string, raising ``ValueError`` if bad."""
    candidate = text.strip().lower()
    if not _UUID_RE.match(candidate):
        raise ValueError(f"not a valid UUID: {text!r}")
    return candidate
