"""Command-line tools: the ``pyvirsh`` shell and the ``pyvirtd`` demo daemon."""
