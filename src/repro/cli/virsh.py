"""``pyvirsh`` — the virsh-like command-line client.

A thin, scriptable shell over the public API: the same commands work
against any connection URI, which is the uniform-management story in
its most visible form::

    pyvirsh -c test:///default list --all
    pyvirsh -c qemu:///system define guest.xml
    pyvirsh -c qemu+tcp://node7/system start web1
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, TextIO

import repro
from repro.core.states import DomainState, state_name
from repro.errors import VirtError
from repro.util.units import format_size
from repro.xmlconfig.storage import VolumeConfig

DEFAULT_URI = "test:///default"


def _print_table(out: TextIO, headers: Sequence[str], rows: Sequence[Sequence[str]]) -> None:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(header_line, file=out)
    print("-" * len(header_line), file=out)
    for row in rows:
        print("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)), file=out)


def _read_xml(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


# -- command implementations ------------------------------------------------


def cmd_list(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    if args.all:
        active: "Optional[bool]" = None
    elif args.inactive:
        active = False
    else:
        active = True
    rows = []
    for domain in conn.list_domains(active=active):
        dom_id = domain.id
        rows.append((dom_id if dom_id is not None else "-", domain.name, domain.state_text()))
    _print_table(out, ("Id", "Name", "State"), rows)
    return 0


def cmd_define(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    domain = conn.define_domain(_read_xml(args.file))
    print(f"Domain {domain.name} defined", file=out)
    return 0


def cmd_create(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    domain = conn.create_domain(_read_xml(args.file))
    print(f"Domain {domain.name} created (transient)", file=out)
    return 0


def _simple_domain_op(verb: str, method: str, message: str):
    def run(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
        domain = conn.lookup_domain(args.domain)
        getattr(domain, method)()
        print(message.format(name=args.domain), file=out)
        return 0

    run.__name__ = f"cmd_{verb}"
    return run


cmd_start = _simple_domain_op("start", "start", "Domain {name} started")
cmd_shutdown = _simple_domain_op("shutdown", "shutdown", "Domain {name} is being shutdown")
cmd_destroy = _simple_domain_op("destroy", "destroy", "Domain {name} destroyed")
cmd_suspend = _simple_domain_op("suspend", "suspend", "Domain {name} suspended")
cmd_resume = _simple_domain_op("resume", "resume", "Domain {name} resumed")
cmd_reboot = _simple_domain_op("reboot", "reboot", "Domain {name} is being rebooted")
cmd_undefine = _simple_domain_op("undefine", "undefine", "Domain {name} has been undefined")


def cmd_dominfo(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    domain = conn.lookup_domain(args.domain)
    info = domain.info()
    fields = [
        ("Name", domain.name),
        ("UUID", domain.uuid),
        ("Id", domain.id if domain.id is not None else "-"),
        ("State", state_name(info.state)),
        ("CPU(s)", info.vcpus),
        ("CPU time", f"{info.cpu_seconds:.1f}s"),
        ("Max memory", f"{info.max_memory_kib} KiB"),
        ("Used memory", f"{info.memory_kib} KiB"),
        ("Persistent", "yes" if domain.persistent else "no"),
        ("Autostart", "enable" if domain.autostart else "disable"),
    ]
    for label, value in fields:
        print(f"{label + ':':<16}{value}", file=out)
    return 0


def cmd_domstate(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    print(conn.lookup_domain(args.domain).state_text(), file=out)
    return 0


def cmd_dumpxml(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    print(conn.lookup_domain(args.domain).xml_desc(), file=out)
    return 0


def cmd_schedinfo(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    domain = conn.lookup_domain(args.domain)
    updates = {}
    for field in ("cpu_shares", "vcpu_period", "vcpu_quota"):
        value = getattr(args, field)
        if value is not None:
            updates[field] = value
    if updates:
        domain.set_scheduler_params(**updates)
    for field, value in domain.scheduler_params().items():
        print(f"{field + ':':<15}{value}", file=out)
    return 0


def cmd_domjobinfo(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    info = conn.lookup_domain(args.domain).job_info()
    if info.get("type") == "none":
        print("No job", file=out)
        return 0
    for key, value in info.items():
        print(f"{key + ':':<20}{value}", file=out)
    return 0


def cmd_setmem(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).set_memory(args.kib)
    print(f"Domain {args.domain} memory set to {args.kib} KiB", file=out)
    return 0


def cmd_setvcpus(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).set_vcpus(args.count)
    print(f"Domain {args.domain} vcpus set to {args.count}", file=out)
    return 0


def cmd_save(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).save(args.file)
    print(f"Domain {args.domain} saved to {args.file}", file=out)
    return 0


def cmd_restore(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    domain = conn.restore_domain(args.file)
    print(f"Domain {domain.name} restored from {args.file}", file=out)
    return 0


def cmd_autostart(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    domain = conn.lookup_domain(args.domain)
    domain.autostart = not args.disable
    verb = "unmarked as" if args.disable else "marked as"
    print(f"Domain {args.domain} {verb} autostarted", file=out)
    return 0


def cmd_migrate(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    domain = conn.lookup_domain(args.domain)
    if args.p2p:
        result = domain.migrate_to_uri(args.desturi, live=not args.offline)
        stats = result["stats"]
    else:
        dest = repro.open_connection(args.desturi)
        try:
            moved = domain.migrate(
                dest,
                live=not args.offline,
                auto_converge=args.auto_converge,
                post_copy=args.postcopy,
            )
            stats = moved.last_migration_stats
        finally:
            dest.close()
    mode = " via post-copy" if stats.get("post_copy") else ""
    print(
        f"Domain {args.domain} migrated to {args.desturi}{mode} "
        f"(total {stats['total_time_s']:.3f}s, "
        f"downtime {stats['downtime_s'] * 1000:.1f}ms, "
        f"{stats['rounds']} rounds)",
        file=out,
    )
    return 0


# -- fleet commands ----------------------------------------------------------


def _open_fleet(args: argparse.Namespace):
    from repro.fleet import FleetManager

    return FleetManager(args.hosts)


def cmd_fleet_status(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    with _open_fleet(args) as fleet:
        fleet.health_check()
        rows = []
        for row in fleet.fleet_status():
            if row["healthy"]:
                rows.append((
                    row["hostname"], "yes", row["domains"],
                    format_size(row["memory_kib"] * 1024),
                    format_size(row["free_memory_kib"] * 1024), row["uri"],
                ))
            else:
                rows.append((row["hostname"], "no", "-", "-", "-", row["uri"]))
        _print_table(
            out, ("Host", "Healthy", "Domains", "Memory", "Free", "URI"), rows
        )
    return 0


def cmd_fleet_drain(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    from repro.fleet import FleetOrchestrator

    with _open_fleet(args) as fleet:
        orchestrator = FleetOrchestrator(
            fleet,
            strategy=args.strategy,
            max_parallel=args.max_parallel,
            link_bandwidth_mib_s=args.bandwidth,
        )
        report = orchestrator.drain_host(args.host)
        rows = [
            (
                o.name,
                o.dest if o.ok else "-",
                "ok" if o.ok else f"FAILED: {o.error}",
                f"{o.total_time_s:.3f}s",
                o.rounds,
                "post-copy" if o.post_copy else "pre-copy",
            )
            for o in report.outcomes
        ]
        _print_table(out, ("Domain", "Destination", "Result", "Time", "Rounds", "Mode"), rows)
        for name in report.unplaced:
            print(f"unplaced: {name} (no destination has room)", file=out)
        print(
            f"Drained {report.migrated}/{len(report.outcomes)} domains off "
            f"{args.host} in {report.waves} waves "
            f"(makespan {report.makespan_s:.1f}s modelled, "
            f"{report.postcopy_count} via post-copy)",
            file=out,
        )
    return 0 if not report.failed else 1


def cmd_fleet_stats(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    """Fleet-wide observability rollup: health scores, federated metric
    aggregates, and per-procedure latency SLO compliance."""
    from repro.observability.fleet import FleetScraper

    with _open_fleet(args) as fleet:
        scraper = FleetScraper(fleet)
        scores = scraper.health_scores(rescrape=True)
        rollup = scraper.rollups(rescrape=False)
        _print_table(
            out,
            ("Host", "Score", "Healthy", "Freshness", "Connectivity", "Saturation"),
            [
                (
                    hostname,
                    f"{score.score:.2f}",
                    "yes" if score.healthy else "NO",
                    f"{score.components.get('freshness', 0.0):.2f}",
                    f"{score.components.get('connectivity', 0.0):.2f}",
                    f"{score.components.get('saturation', 0.0):.2f}",
                )
                for hostname, score in sorted(scores.items())
            ],
        )
        print(
            f"Fleet: {rollup['scraped']}/{rollup['hosts']} hosts scraped, "
            f"memory utilization {rollup['utilization'] * 100:.1f}%",
            file=out,
        )
        if args.slo:
            rows = scraper.slo_report(rescrape=False)
            _print_table(
                out,
                ("Procedure", "Calls", "Target", "Compliance", "Burn", "p99", "Met"),
                [
                    (
                        r["procedure"],
                        f"{r['calls']:.0f}",
                        f"{r['target_s'] * 1000:.0f}ms",
                        f"{r['compliance'] * 100:.2f}%",
                        f"{r['burn_rate']:.2f}",
                        f"{r['p99_s'] * 1000:.2f}ms",
                        "yes" if r["met"] else "NO",
                    )
                    for r in rows
                ],
            )
        if args.metric:
            for name in args.metric:
                agg = rollup["metrics"].get(name)
                if agg is None:
                    print(f"{name}: no samples fleet-wide", file=out)
                    continue
                parts = ", ".join(f"{k}={v:.6g}" for k, v in sorted(agg.items()))
                print(f"{name}: {parts}", file=out)
    return 0


def cmd_fleet_rebalance(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    from repro.fleet import FleetOrchestrator

    with _open_fleet(args) as fleet:
        orchestrator = FleetOrchestrator(fleet, strategy=args.strategy)
        report = orchestrator.rebalance(
            max_moves=args.max_moves, threshold=args.threshold
        )
        for move in report.moves:
            status = "ok" if move.ok else f"FAILED: {move.error}"
            print(f"{move.name}: {move.source} -> {move.dest} ({status})", file=out)
        print(
            f"Rebalanced with {len(report.moves)} moves "
            f"(spread {report.imbalance_before:.2f} -> {report.imbalance_after:.2f})",
            file=out,
        )
    return 0


_DOMSTATS_KEYS = (
    "name",
    "state",
    "cpu_seconds",
    "vcpus",
    "memory_kib",
    "max_memory_kib",
    "disk_read_bytes",
    "disk_write_bytes",
    "net_rx_bytes",
    "net_tx_bytes",
)


def cmd_domstats(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    if args.domain is not None:
        blocks = [conn.lookup_domain(args.domain).get_stats()]
    else:
        # no domain named: report every active domain (virsh domstats)
        blocks = conn.get_all_domain_stats()
    for index, stats in enumerate(blocks):
        if index:
            print(file=out)
        for key in _DOMSTATS_KEYS:
            print(f"{key + ':':<18}{stats[key]}", file=out)
    return 0


def cmd_snapshot_create(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).create_snapshot(args.name)
    print(f"Domain snapshot {args.name} created", file=out)
    return 0


def cmd_snapshot_list(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    names = conn.lookup_domain(args.domain).list_snapshots()
    _print_table(out, ("Name",), [(n,) for n in names])
    return 0


def cmd_snapshot_revert(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).revert_to_snapshot(args.name)
    print(f"Domain {args.domain} reverted to snapshot {args.name}", file=out)
    return 0


def cmd_snapshot_delete(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).delete_snapshot(args.name)
    print(f"Domain snapshot {args.name} deleted", file=out)
    return 0


def cmd_checkpoint_create(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).create_checkpoint(args.name)
    print(f"Domain checkpoint {args.name} created", file=out)
    return 0


def cmd_checkpoint_list(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    names = conn.lookup_domain(args.domain).list_checkpoints()
    _print_table(out, ("Name",), [(n,) for n in names])
    return 0


def cmd_checkpoint_delete(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).delete_checkpoint(args.name)
    print(f"Domain checkpoint {args.name} deleted", file=out)
    return 0


def cmd_checkpoint_dumpxml(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    print(conn.lookup_domain(args.domain).checkpoint_xml_desc(args.name), file=out)
    return 0


def cmd_backup_begin(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    domain = conn.lookup_domain(args.domain)
    if args.pull:
        # pull mode: the dirty blocks come to us over a stream instead
        # of being pushed into a pool volume by the daemon
        result = domain.backup_pull(incremental=args.incremental)
        blocks = sum(len(b) for b in result["disks"].values())
        mode = "incremental" if result.get("incremental") else "full"
        print(
            f"Backup pulled ({mode}): {blocks} blocks, "
            f"{result['total_bytes']} bytes from {len(result['disks'])} disk(s)",
            file=out,
        )
        if args.file:
            with open(args.file, "wb") as handle:
                handle.write(result["data"])
            print(f"Payload written to {args.file}", file=out)
        return 0
    if not args.pool:
        print("error: backup-begin requires --pool (or --pull)", file=sys.stderr)
        return 1
    job = domain.backup_begin(
        args.pool,
        incremental=args.incremental,
        checkpoint=args.checkpoint,
        volume=args.volume,
        bandwidth_mib_s=args.bandwidth,
    )
    print(f"Backup started (job {job['job_id']}, {job['operation']})", file=out)
    return 0


def cmd_domjobabort(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).abort_job()
    print(f"Domain {args.domain} job aborted", file=out)
    return 0


def cmd_managedsave(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).managed_save()
    print(f"Domain {args.domain} state saved by libvirt", file=out)
    return 0


def cmd_managedsave_remove(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_domain(args.domain).managed_save_remove()
    print(f"Removed managedsave image for domain {args.domain}", file=out)
    return 0


def cmd_event(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    """Stream pushed event records (``virsh event --loop``)."""
    import threading

    target = None if args.loop and args.count is None else (args.count or 1)
    state = {"seen": 0}
    done = threading.Event()

    def on_record(record: dict) -> None:
        if args.domain and record.get("domain") != args.domain:
            return
        state["seen"] += 1
        subject = record.get("domain") or record.get("detail") or "-"
        line = f"event '{record['kind']}/{record['event']}' for {subject}"
        detail = record.get("detail", "")
        if record.get("domain") and detail:
            line += f": {detail}"
        print(line, file=out)
        if target is not None and state["seen"] >= target:
            done.set()

    sub_id = conn.subscribe_events(on_record, kinds=args.kind or None)
    try:
        done.wait(args.timeout)
    finally:
        conn.unsubscribe_events(sub_id)
    print(f"events received: {state['seen']}", file=out)
    return 0


def cmd_hostname(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    print(conn.hostname(), file=out)
    return 0


def cmd_uri(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    print(conn.uri, file=out)
    return 0


def cmd_version(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    print("pyvirsh %s (library %s)" % (repro.__version__, ".".join(map(str, conn.version()))), file=out)
    return 0


def cmd_nodeinfo(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    info = conn.node_info()
    print(f"{'CPU(s):':<20}{info['cpus']}", file=out)
    print(f"{'CPU MHz:':<20}{info['mhz']}", file=out)
    print(f"{'Memory size:':<20}{info['memory_kib']} KiB", file=out)
    print(f"{'Free memory:':<20}{info['free_memory_kib']} KiB", file=out)
    print(f"{'Guests:':<20}{info['guests']}", file=out)
    return 0


def cmd_capabilities(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    print(conn.capabilities().to_xml(), file=out)
    return 0


def cmd_net_list(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    rows = [
        (n.name, "active" if n.is_active else "inactive", n.bridge)
        for n in conn.list_networks()
    ]
    _print_table(out, ("Name", "State", "Bridge"), rows)
    return 0


def cmd_net_define(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    net = conn.define_network(_read_xml(args.file))
    print(f"Network {net.name} defined", file=out)
    return 0


def _simple_net_op(verb: str, method: str, message: str):
    def run(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
        getattr(conn.lookup_network(args.network), method)()
        print(message.format(name=args.network), file=out)
        return 0

    run.__name__ = f"cmd_net_{verb}"
    return run


cmd_net_start = _simple_net_op("start", "start", "Network {name} started")
cmd_net_destroy = _simple_net_op("destroy", "destroy", "Network {name} destroyed")
cmd_net_undefine = _simple_net_op("undefine", "undefine", "Network {name} has been undefined")


def cmd_net_dumpxml(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    print(conn.lookup_network(args.network).xml_desc(), file=out)
    return 0


def cmd_net_dhcp_leases(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    leases = conn.lookup_network(args.network).dhcp_leases()
    rows = [(l["mac"], l["ip"], l["hostname"]) for l in leases]
    _print_table(out, ("MAC address", "IP address", "Hostname"), rows)
    return 0


def cmd_pool_list(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    rows = [
        (p.name, "active" if p.is_active else "inactive")
        for p in conn.list_storage_pools()
    ]
    _print_table(out, ("Name", "State"), rows)
    return 0


def cmd_pool_define(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    pool = conn.define_storage_pool(_read_xml(args.file))
    print(f"Pool {pool.name} defined", file=out)
    return 0


def _simple_pool_op(verb: str, method: str, message: str):
    def run(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
        getattr(conn.lookup_storage_pool(args.pool), method)()
        print(message.format(name=args.pool), file=out)
        return 0

    run.__name__ = f"cmd_pool_{verb}"
    return run


cmd_pool_start = _simple_pool_op("start", "start", "Pool {name} started")
cmd_pool_destroy = _simple_pool_op("destroy", "destroy", "Pool {name} destroyed")
cmd_pool_undefine = _simple_pool_op("undefine", "undefine", "Pool {name} has been undefined")


def cmd_pool_info(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    info = conn.lookup_storage_pool(args.pool).info()
    print(f"{'State:':<14}{'running' if info.active else 'inactive'}", file=out)
    print(f"{'Capacity:':<14}{format_size(info.capacity_bytes)}", file=out)
    print(f"{'Allocation:':<14}{format_size(info.allocation_bytes)}", file=out)
    print(f"{'Available:':<14}{format_size(info.available_bytes)}", file=out)
    return 0


def cmd_vol_list(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    pool = conn.lookup_storage_pool(args.pool)
    rows = [(v.name, v.info().path) for v in pool.list_volumes()]
    _print_table(out, ("Name", "Path"), rows)
    return 0


def cmd_vol_create_as(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    pool = conn.lookup_storage_pool(args.pool)
    from repro.util.units import parse_size

    config = VolumeConfig(args.name, parse_size(args.capacity), volume_format=args.format)
    pool.create_volume(config)
    print(f"Vol {args.name} created", file=out)
    return 0


def cmd_vol_delete(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    conn.lookup_storage_pool(args.pool).lookup_volume(args.name).delete()
    print(f"Vol {args.name} deleted", file=out)
    return 0


def cmd_vol_upload(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    """``virsh vol-upload``: stream a local file into a volume."""
    if args.file == "-":
        data = sys.stdin.buffer.read()
    else:
        with open(args.file, "rb") as handle:
            data = handle.read()
    volume = conn.lookup_storage_pool(args.pool).lookup_volume(args.name)
    info = volume.upload(data, offset=args.offset)
    print(
        f"Vol {args.name}: uploaded {len(data)} bytes at offset {args.offset} "
        f"(allocation now {format_size(info.allocation_bytes)})",
        file=out,
    )
    return 0


def cmd_vol_download(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    """``virsh vol-download``: stream a volume into a local file."""
    volume = conn.lookup_storage_pool(args.pool).lookup_volume(args.name)
    data = volume.download(offset=args.offset, length=args.length)
    if args.file == "-":
        sys.stdout.buffer.write(data)
    else:
        with open(args.file, "wb") as handle:
            handle.write(data)
    print(f"Vol {args.name}: downloaded {len(data)} bytes to {args.file}", file=out)
    return 0


def cmd_console(conn: repro.Connection, args: argparse.Namespace, out: TextIO) -> int:
    """``virsh console`` (non-interactive): print the banner, optionally
    send one line and print what the guest echoes back."""
    console = conn.lookup_domain(args.domain).open_console()
    try:
        banner = console.recv()
        if banner:
            out.write(banner.decode("utf-8", "replace"))
        if args.send is not None:
            console.send(args.send.encode("utf-8") + b"\n")
            while True:
                chunk = console.recv()
                if not chunk:
                    break
                out.write(chunk.decode("utf-8", "replace"))
    finally:
        console.close()
    return 0


# -- argument parsing ----------------------------------------------------------

CommandFn = Callable[[repro.Connection, argparse.Namespace, TextIO], int]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pyvirsh", description="virsh-like client for the pyvirt library"
    )
    parser.add_argument(
        "-c",
        "--connect",
        default=DEFAULT_URI,
        metavar="URI",
        help=f"connection URI (default {DEFAULT_URI})",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")

    def add(name: str, fn: CommandFn, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(fn=fn)
        return p

    p = add("list", cmd_list, "list domains")
    p.add_argument("--all", action="store_true")
    p.add_argument("--inactive", action="store_true")
    add("define", cmd_define, "define a domain from XML").add_argument("file")
    add("create", cmd_create, "create a transient domain from XML").add_argument("file")
    for name, fn in (
        ("start", cmd_start),
        ("shutdown", cmd_shutdown),
        ("destroy", cmd_destroy),
        ("suspend", cmd_suspend),
        ("resume", cmd_resume),
        ("reboot", cmd_reboot),
        ("undefine", cmd_undefine),
        ("dominfo", cmd_dominfo),
        ("domstate", cmd_domstate),
        ("dumpxml", cmd_dumpxml),
    ):
        add(name, fn, f"{name} a domain").add_argument("domain")
    p = add("domstats", cmd_domstats, "domain stats (all active domains by default)")
    p.add_argument("domain", nargs="?", default=None)
    p = add("schedinfo", cmd_schedinfo, "show/set scheduler parameters")
    p.add_argument("domain")
    p.add_argument("--cpu-shares", dest="cpu_shares", type=int)
    p.add_argument("--vcpu-period", dest="vcpu_period", type=int)
    p.add_argument("--vcpu-quota", dest="vcpu_quota", type=int)
    add("domjobinfo", cmd_domjobinfo, "show the domain's last job").add_argument("domain")
    p = add("setmem", cmd_setmem, "change domain memory")
    p.add_argument("domain")
    p.add_argument("kib", type=int)
    p = add("setvcpus", cmd_setvcpus, "change domain vcpu count")
    p.add_argument("domain")
    p.add_argument("count", type=int)
    p = add("save", cmd_save, "save domain state to a file")
    p.add_argument("domain")
    p.add_argument("file")
    add("restore", cmd_restore, "restore a domain from a state file").add_argument("file")
    p = add("autostart", cmd_autostart, "toggle domain autostart")
    p.add_argument("domain")
    p.add_argument("--disable", action="store_true")
    p = add("migrate", cmd_migrate, "migrate a domain to another host")
    p.add_argument("domain")
    p.add_argument("desturi")
    p.add_argument("--offline", action="store_true")
    p.add_argument("--p2p", action="store_true", help="peer-to-peer mode")
    p.add_argument("--auto-converge", action="store_true",
                   help="throttle the guest when copy rounds stall")
    p.add_argument("--postcopy", action="store_true",
                   help="switch to post-copy instead of blowing the downtime budget")

    def add_fleet(name: str, fn: CommandFn, help_text: str) -> argparse.ArgumentParser:
        p = add(name, fn, help_text)
        p.add_argument("--hosts", nargs="+", required=True, metavar="URI",
                       help="daemon URIs making up the fleet")
        return p

    add_fleet("fleet-status", cmd_fleet_status, "health and capacity of every fleet host")
    p = add_fleet("fleet-drain", cmd_fleet_drain, "live-migrate every guest off a host")
    p.add_argument("host")
    p.add_argument("--strategy", default="balanced")
    p.add_argument("--max-parallel", type=int, default=4)
    p.add_argument("--bandwidth", type=float, default=1024.0,
                   metavar="MIB_S", help="maintenance link bandwidth shared per wave")
    p = add_fleet("fleet-stats", cmd_fleet_stats,
                  "fleet-wide health scores, metric rollups and SLO compliance")
    p.add_argument("--slo", action="store_true",
                   help="show per-procedure latency SLO compliance")
    p.add_argument("--metric", action="append", metavar="NAME",
                   help="print the fleet-wide rollup of one metric family")
    p = add_fleet("fleet-rebalance", cmd_fleet_rebalance,
                  "migrate guests off overloaded hosts toward the fleet mean")
    p.add_argument("--strategy", default="balanced")
    p.add_argument("--max-moves", type=int, default=8)
    p.add_argument("--threshold", type=float, default=0.10)
    p = add("snapshot-create-as", cmd_snapshot_create, "create a named snapshot")
    p.add_argument("domain")
    p.add_argument("name")
    add("snapshot-list", cmd_snapshot_list, "list snapshots").add_argument("domain")
    p = add("snapshot-revert", cmd_snapshot_revert, "revert to a snapshot")
    p.add_argument("domain")
    p.add_argument("name")
    p = add("snapshot-delete", cmd_snapshot_delete, "delete a snapshot")
    p.add_argument("domain")
    p.add_argument("name")
    p = add("checkpoint-create", cmd_checkpoint_create, "create a domain checkpoint")
    p.add_argument("domain")
    p.add_argument("name")
    add("checkpoint-list", cmd_checkpoint_list, "list checkpoints").add_argument("domain")
    p = add("checkpoint-delete", cmd_checkpoint_delete, "delete a checkpoint")
    p.add_argument("domain")
    p.add_argument("name")
    p = add("checkpoint-dumpxml", cmd_checkpoint_dumpxml, "checkpoint XML description")
    p.add_argument("domain")
    p.add_argument("name")
    p = add("backup-begin", cmd_backup_begin, "start a domain backup job")
    p.add_argument("domain")
    p.add_argument("--pool", help="storage pool receiving the backup volume (push mode)")
    p.add_argument("--incremental", metavar="CHECKPOINT", help="copy only blocks dirtied since this checkpoint")
    p.add_argument("--checkpoint", metavar="NAME", help="also create a checkpoint as the backup starts")
    p.add_argument("--volume", help="name for the backup volume")
    p.add_argument("--bandwidth", type=float, help="transfer bandwidth cap in MiB/s")
    p.add_argument("--pull", action="store_true",
                   help="pull the dirty blocks over a stream instead of pushing to a pool")
    p.add_argument("--file", help="with --pull, write the block payload to this file")
    add("domjobabort", cmd_domjobabort, "abort the active domain job").add_argument("domain")
    p = add("event", cmd_event, "wait for and print pushed event records")
    p.add_argument("--domain", default=None, help="only events for this domain")
    p.add_argument("--kind", action="append", default=None, help="filter by record kind (repeatable)")
    p.add_argument("--loop", action="store_true", help="keep printing events instead of exiting after the first")
    p.add_argument("--count", type=int, default=None, help="exit after this many events")
    p.add_argument("--timeout", type=float, default=10.0, help="give up after SECONDS of wall-clock time")
    add("managedsave", cmd_managedsave, "save domain state to a managed location").add_argument("domain")
    add("managedsave-remove", cmd_managedsave_remove, "drop the managed save image").add_argument("domain")
    add("hostname", cmd_hostname, "print the node hostname")
    add("uri", cmd_uri, "print the connection URI")
    add("version", cmd_version, "print versions")
    add("nodeinfo", cmd_nodeinfo, "print node hardware info")
    add("capabilities", cmd_capabilities, "print the capabilities XML")
    add("net-list", cmd_net_list, "list networks")
    add("net-define", cmd_net_define, "define a network from XML").add_argument("file")
    for name, fn in (
        ("net-start", cmd_net_start),
        ("net-destroy", cmd_net_destroy),
        ("net-undefine", cmd_net_undefine),
        ("net-dumpxml", cmd_net_dumpxml),
        ("net-dhcp-leases", cmd_net_dhcp_leases),
    ):
        add(name, fn, f"{name}").add_argument("network")
    add("pool-list", cmd_pool_list, "list storage pools")
    add("pool-define", cmd_pool_define, "define a pool from XML").add_argument("file")
    for name, fn in (
        ("pool-start", cmd_pool_start),
        ("pool-destroy", cmd_pool_destroy),
        ("pool-undefine", cmd_pool_undefine),
        ("pool-info", cmd_pool_info),
    ):
        add(name, fn, f"{name}").add_argument("pool")
    add("vol-list", cmd_vol_list, "list volumes in a pool").add_argument("pool")
    p = add("vol-create-as", cmd_vol_create_as, "create a volume")
    p.add_argument("pool")
    p.add_argument("name")
    p.add_argument("capacity")
    p.add_argument("--format", default="qcow2")
    p = add("vol-delete", cmd_vol_delete, "delete a volume")
    p.add_argument("pool")
    p.add_argument("name")
    p = add("vol-upload", cmd_vol_upload, "stream a local file into a volume")
    p.add_argument("pool")
    p.add_argument("name")
    p.add_argument("file", help="local file to read ('-' for stdin)")
    p.add_argument("--offset", type=int, default=0, help="write offset in bytes")
    p = add("vol-download", cmd_vol_download, "stream a volume into a local file")
    p.add_argument("pool")
    p.add_argument("name")
    p.add_argument("file", help="local file to write ('-' for stdout)")
    p.add_argument("--offset", type=int, default=0, help="read offset in bytes")
    p.add_argument("--length", type=int, default=None, help="bytes to read (default: to end)")
    p = add("console", cmd_console, "connect to the domain console (non-interactive)")
    p.add_argument("domain")
    p.add_argument("--send", metavar="TEXT", default=None,
                   help="send one line and print the guest's echo")
    return parser


def main(argv: "Optional[List[str]]" = None, out: "Optional[TextIO]" = None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        conn = repro.open_connection(args.connect)
    except VirtError as exc:
        print(f"error: failed to connect to {args.connect}: {exc}", file=sys.stderr)
        return 1
    try:
        return args.fn(conn, args, out)
    except VirtError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        conn.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
