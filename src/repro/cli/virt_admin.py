"""``pyvirt-admin`` — the virt-admin-like administration shell.

Runtime management of a daemon: server workerpools, client limits and
connections, and the logging subsystem::

    pyvirt-admin -c nodeA srv-list
    pyvirt-admin -c nodeA srv-threadpool-set libvirtd --max-workers 40
    pyvirt-admin -c nodeA dmn-log-define --filters "3:util 4:rpc"
    pyvirt-admin -c nodeA client-disconnect 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, TextIO

from repro.admin import admin_open
from repro.errors import VirtError
from repro.observability.export import render_trace_tree


def cmd_srv_list(conn, args, out: TextIO) -> int:
    print(" Id   Name", file=out)
    print("-----------------", file=out)
    for index, server in enumerate(conn.list_servers()):
        print(f" {index:<4} {server.name}", file=out)
    return 0


def cmd_threadpool_info(conn, args, out: TextIO) -> int:
    info = conn.lookup_server(args.server).threadpool_info()
    for key in ("minWorkers", "maxWorkers", "nWorkers", "freeWorkers", "prioWorkers", "jobQueueDepth"):
        print(f"{key:<15}: {info[key]}", file=out)
    return 0


def cmd_threadpool_set(conn, args, out: TextIO) -> int:
    conn.lookup_server(args.server).set_threadpool(
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        prio_workers=args.prio_workers,
    )
    print(f"threadpool on {args.server} updated", file=out)
    return 0


def cmd_clients_info(conn, args, out: TextIO) -> int:
    info = conn.lookup_server(args.server).clients_info()
    print(f"{'nclients_max':<15}: {info['nclients_max']}", file=out)
    print(f"{'nclients':<15}: {info['nclients']}", file=out)
    return 0


def cmd_clients_set(conn, args, out: TextIO) -> int:
    conn.lookup_server(args.server).set_client_limits(max_clients=args.max_clients)
    print(f"client limits on {args.server} updated", file=out)
    return 0


def cmd_client_list(conn, args, out: TextIO) -> int:
    print(f" {'Id':<5} {'Transport':<12} Connected since", file=out)
    print("-" * 42, file=out)
    for client in conn.lookup_server(args.server).list_clients():
        print(
            f" {client.id:<5} {client.transport:<12} {client.connected_since:.3f}",
            file=out,
        )
    return 0


def cmd_client_info(conn, args, out: TextIO) -> int:
    client = conn.lookup_server(args.server).lookup_client(args.id)
    for key, value in sorted(client.info().items()):
        print(f"{key:<18}: {value}", file=out)
    return 0


def cmd_client_disconnect(conn, args, out: TextIO) -> int:
    conn.lookup_server(args.server).lookup_client(args.id).disconnect()
    print(f"client {args.id} disconnected from {args.server}", file=out)
    return 0


def cmd_log_info(conn, args, out: TextIO) -> int:
    info = conn.get_logging()
    print(f"Logging level: {info['level_name']}", file=out)
    print(f"Logging filters: {info['filters'] or '(none)'}", file=out)
    print(f"Logging outputs: {info['outputs']}", file=out)
    return 0


def cmd_log_define(conn, args, out: TextIO) -> int:
    if args.level is None and args.filters is None and args.outputs is None:
        print("error: nothing to define", file=sys.stderr)
        return 1
    if args.level is not None:
        conn.set_logging_level(args.level)
    if args.filters is not None:
        conn.set_logging_filters(args.filters)
    if args.outputs is not None:
        conn.set_logging_outputs(args.outputs)
    print("logging settings updated", file=out)
    return 0


def cmd_server_stats(conn, args, out: TextIO) -> int:
    stats = conn.server_stats(args.server)
    print(f"Server: {stats['server']} on {stats['hostname']}", file=out)
    print(f"Timestamp: {stats['timestamp']:.6f}", file=out)
    clients = stats["clients"]
    print(f"Clients: {clients['connected']}/{clients['max']}", file=out)
    pool = stats["workerpool"]
    print("Workerpool:", file=out)
    for key in ("minWorkers", "maxWorkers", "nWorkers", "freeWorkers",
                "prioWorkers", "jobQueueDepth"):
        print(f"  {key:<15}: {pool[key]}", file=out)
    print(f"  {'jobsCompleted':<15}: {stats['jobs_completed']}", file=out)
    rpc = stats["rpc"]
    print("RPC:", file=out)
    print(f"  {'callsServed':<15}: {rpc['calls_served']}", file=out)
    print(f"  {'callsFailed':<15}: {rpc['calls_failed']}", file=out)
    print(f"  {'pingsAnswered':<15}: {rpc['pings_answered']}", file=out)
    for procedure, row in sorted(rpc.get("procedures", {}).items()):
        print(
            f"    {procedure:<38} {row['count']:>6}  "
            f"mean {row['mean_seconds']:.6f}s  max {row['max_seconds']:.6f}s",
            file=out,
        )
    if stats["drivers"]:
        print("Drivers:", file=out)
        for driver, row in sorted(stats["drivers"].items()):
            print(
                f"  {driver:<10} ops={row['ops']} seconds={row['seconds']:.6f}",
                file=out,
            )
    tracing = stats["tracing"]
    line = (
        f"Tracing: started={tracing['spans_started']} "
        f"finished={tracing['spans_finished']} failed={tracing['spans_failed']}"
    )
    if "spans_propagated" in tracing:
        line += (
            f" propagated={tracing['spans_propagated']}"
            f" orphaned={tracing['spans_orphaned']}"
            f" open={tracing['spans_open']}"
        )
    print(line, file=out)
    return 0


def cmd_client_stats(conn, args, out: TextIO) -> int:
    rows = conn.client_stats(args.id)
    if args.id is not None:
        rows = [rows]
    print(
        f" {'Id':<5} {'Server':<10} {'Transport':<10} {'Calls':<7} "
        f"{'BytesIn':<9} {'BytesOut':<9} Last activity",
        file=out,
    )
    print("-" * 68, file=out)
    for row in rows:
        print(
            f" {row['id']:<5} {row['server']:<10} {row['transport']:<10} "
            f"{row['calls']:<7} {row['bytes_in']:<9} {row['bytes_out']:<9} "
            f"{row['last_activity']:.3f}",
            file=out,
        )
    return 0


def cmd_reset_stats(conn, args, out: TextIO) -> int:
    result = conn.reset_stats()
    print(
        f"stats reset: {result['families_reset']} metric families, "
        f"{result['spans_dropped']} spans dropped",
        file=out,
    )
    return 0


def cmd_metrics(conn, args, out: TextIO) -> int:
    out.write(conn.metrics_text())
    return 0


def cmd_trace_list(conn, args, out: TextIO) -> int:
    rows = conn.trace_list(args.limit)
    if args.json:
        json.dump(rows, out, indent=2)
        out.write("\n")
        return 0
    print(
        f" {'TraceId':<8} {'Root':<22} {'Spans':<6} {'Open':<5} "
        f"{'Errors':<7} {'Start':<12} Duration",
        file=out,
    )
    print("-" * 76, file=out)
    for row in rows:
        print(
            f" {row['trace_id']:<8} {row['root']:<22} {row['spans']:<6} "
            f"{row['open']:<5} {row['errors']:<7} {row['start']:<12.6f} "
            f"{row['duration']:.6f}s",
            file=out,
        )
    return 0


def cmd_daemon_shutdown(conn, args, out: TextIO) -> int:
    result = conn.daemon_shutdown(graceful=not args.crash)
    print(f"daemon shutdown initiated ({result['initiated']})", file=out)
    return 0


def cmd_trace_get(conn, args, out: TextIO) -> int:
    spans = conn.trace_get(args.trace_id)
    if args.json:
        json.dump(spans, out, indent=2)
        out.write("\n")
        return 0
    print(f"Trace {args.trace_id}: {len(spans)} spans", file=out)
    print(render_trace_tree(spans), file=out)
    return 0


def cmd_flight_dump(conn, args, out: TextIO) -> int:
    dump = conn.flight_dump()
    if args.json:
        json.dump(dump, out, indent=2)
        out.write("\n")
        return 0
    print(
        f"Flight recorder: {len(dump['records'])}/{dump['capacity']} records "
        f"(lifetime {dump['records_total']}, recovered {dump['recovered_records']}, "
        f"incarnation {dump['incarnation']}, "
        f"{'persistent' if dump['persistent'] else 'memory-only'})",
        file=out,
    )
    for record in dump["records"]:
        extra = " ".join(
            f"{k}={v}" for k, v in sorted(record.items())
            if k not in ("t", "kind", "life")
        )
        print(f" {record['t']:>12.6f} [{record['life']}] {record['kind']:<10} {extra}", file=out)
    return 0


def cmd_fleet_trace_get(conn, args, out: TextIO) -> int:
    """Stitch one trace together from every named daemon's span buffer.

    The primary connection (``-c``) contributes too, so the span the
    client opened and the dispatch spans the daemons adopted from it
    render as one tree.
    """
    from repro.observability.fleet import collect_fleet_spans

    spans = collect_fleet_spans(args.trace_id, hostnames=args.hosts or [])
    local = []
    try:
        local = conn.trace_get(args.trace_id)
    except VirtError:
        pass  # the -c daemon has no spans for this trace; fine
    if local:
        spans = collect_fleet_spans(
            args.trace_id, hostnames=args.hosts or [], extra_spans=local
        )
    if not spans:
        print(f"error: no spans found for trace {args.trace_id}", file=sys.stderr)
        return 1
    if args.json:
        json.dump(spans, out, indent=2)
        out.write("\n")
        return 0
    hosts = sorted(
        {s.get("attributes", {}).get("host") for s in spans} - {None}
    )
    print(
        f"Trace {args.trace_id}: {len(spans)} spans across "
        f"{len(hosts)} hosts ({', '.join(hosts)})",
        file=out,
    )
    print(render_trace_tree(spans), file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pyvirt-admin", description="daemon administration client"
    )
    parser.add_argument(
        "-c", "--connect", default="localhost", metavar="HOST",
        help="daemon hostname (default localhost)",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")

    def add(name, fn, help_text):
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(fn=fn)
        return p

    add("srv-list", cmd_srv_list, "list servers in the daemon")
    add("srv-threadpool-info", cmd_threadpool_info, "show a server's workerpool").add_argument("server")
    p = add("srv-threadpool-set", cmd_threadpool_set, "adjust a server's workerpool")
    p.add_argument("server")
    p.add_argument("--min-workers", type=int)
    p.add_argument("--max-workers", type=int)
    p.add_argument("--prio-workers", type=int)
    add("srv-clients-info", cmd_clients_info, "show client limits").add_argument("server")
    p = add("srv-clients-set", cmd_clients_set, "set client limits")
    p.add_argument("server")
    p.add_argument("--max-clients", type=int, required=True)
    add("client-list", cmd_client_list, "list connected clients").add_argument("server")
    p = add("client-info", cmd_client_info, "show one client's identity")
    p.add_argument("server")
    p.add_argument("id", type=int)
    p = add("client-disconnect", cmd_client_disconnect, "force-close a client")
    p.add_argument("server")
    p.add_argument("id", type=int)
    p = add("server-stats", cmd_server_stats, "live workerpool/RPC/driver metrics")
    p.add_argument("server", nargs="?", default="libvirtd")
    p = add("client-stats", cmd_client_stats, "per-client traffic counters")
    p.add_argument("id", type=int, nargs="?", default=None)
    add("reset-stats", cmd_reset_stats, "zero the daemon's metrics and spans")
    add("metrics", cmd_metrics, "dump the Prometheus exposition page")
    p = add("trace-list", cmd_trace_list, "list buffered traces")
    p.add_argument("--limit", type=int, default=None, help="show only the newest N traces")
    p.add_argument("--json", action="store_true", help="emit JSON rows")
    p = add("trace-get", cmd_trace_get, "show one trace as a span tree")
    p.add_argument("trace_id", type=int)
    p.add_argument("--json", action="store_true", help="emit raw span dicts as JSON")
    p = add("flight-dump", cmd_flight_dump, "dump the daemon's flight recorder")
    p.add_argument("--json", action="store_true", help="emit the raw dump as JSON")
    p = add("fleet-trace-get", cmd_fleet_trace_get,
            "stitch one trace from many daemons' span buffers")
    p.add_argument("trace_id", type=int)
    p.add_argument("--hosts", nargs="+", metavar="HOST", default=[],
                   help="daemon hostnames to collect spans from")
    p.add_argument("--json", action="store_true", help="emit raw span dicts as JSON")
    p = add("daemon-shutdown", cmd_daemon_shutdown, "ask the daemon to exit")
    p.add_argument(
        "--graceful", action="store_true", default=True,
        help="drain clients and flush state before exiting (default)",
    )
    p.add_argument(
        "--crash", action="store_true",
        help="simulate an abrupt kill -9 instead of draining",
    )
    add("dmn-log-info", cmd_log_info, "show daemon logging settings")
    p = add("dmn-log-define", cmd_log_define, "change daemon logging settings")
    p.add_argument("--level", type=int)
    p.add_argument("--filters")
    p.add_argument("--outputs")
    return parser


def main(argv: "Optional[List[str]]" = None, out: "Optional[TextIO]" = None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        conn = admin_open(args.connect)
    except VirtError as exc:
        print(f"error: failed to connect to {args.connect}: {exc}", file=sys.stderr)
        return 1
    try:
        return args.fn(conn, args, out)
    except VirtError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        conn.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
