"""``pyvirtd`` — run a simulated daemon and showcase remote management.

The real libvirtd stays resident; in the simulation every host lives in
one process, so this entry point runs a self-contained demonstration:
it boots a daemon, connects remotely over several transports, drives a
guest through its lifecycle, and prints the daemon's internal state.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, TextIO

import repro
from repro.daemon import Libvirtd
from repro.xmlconfig.domain import DomainConfig

GiB_KIB = 1024 * 1024


def main(argv: "Optional[List[str]]" = None, out: "Optional[TextIO]" = None) -> int:
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="pyvirtd", description="simulated libvirtd demonstration"
    )
    parser.add_argument("--hostname", default="demo-node")
    parser.add_argument("--max-workers", type=int, default=20)
    parser.add_argument("--max-clients", type=int, default=50)
    parser.add_argument(
        "--transports", default="unix,tcp,tls", help="comma-separated list"
    )
    args = parser.parse_args(argv)

    transports = [t.strip() for t in args.transports.split(",") if t.strip()]
    with Libvirtd(
        hostname=args.hostname,
        max_workers=args.max_workers,
        max_clients=args.max_clients,
    ) as daemon:
        for transport in transports:
            daemon.listen(transport)
            print(f"[pyvirtd] listening on {transport}", file=out)

        print(f"[pyvirtd] daemon up at {args.hostname!r}; running demo client", file=out)
        conn = repro.open_connection(f"qemu+{transports[0]}://{args.hostname}/system")
        config = DomainConfig(
            name="demo-guest", domain_type="kvm", memory_kib=GiB_KIB, vcpus=2
        )
        domain = conn.define_domain(config)
        domain.start()
        info = domain.info()
        print(
            f"[pyvirtd] demo-guest is {domain.state_text()} with "
            f"{info.vcpus} vCPUs / {info.memory_kib} KiB",
            file=out,
        )
        domain.shutdown()
        conn.close()

        stats = daemon.stats()
        print("[pyvirtd] daemon stats:", file=out)
        for key in ("nclients", "calls_served", "nWorkers", "maxWorkers"):
            print(f"    {key:<14} {stats[key]}", file=out)
    print("[pyvirtd] shut down cleanly", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
