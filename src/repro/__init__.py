"""pyvirt — a pure-Python reproduction of *Non-intrusive Virtualization
Management using Libvirt* (Bolte et al., DATE 2010).

Quickstart::

    import repro

    with repro.open_connection("test:///default") as conn:
        for domain in conn.list_domains():
            print(domain.name, domain.state_text())
"""

from repro.core import (
    Connection,
    ConnectionURI,
    Domain,
    DomainEvent,
    DomainInfo,
    DomainState,
    Network,
    StoragePool,
    Volume,
    open_connection,
)

# importing the drivers package wires every driver into the registry
import repro.drivers  # noqa: E402,F401  (registration side effect)
from repro import errors
from repro.xmlconfig import (
    Capabilities,
    DiskDevice,
    DomainConfig,
    GraphicsDevice,
    InterfaceDevice,
    NetworkConfig,
    OSConfig,
    StoragePoolConfig,
    VolumeConfig,
)

__version__ = "1.0.0"

__all__ = [
    "open_connection",
    "Connection",
    "ConnectionURI",
    "Domain",
    "DomainInfo",
    "DomainState",
    "DomainEvent",
    "Network",
    "StoragePool",
    "Volume",
    "DomainConfig",
    "OSConfig",
    "DiskDevice",
    "InterfaceDevice",
    "GraphicsDevice",
    "NetworkConfig",
    "StoragePoolConfig",
    "VolumeConfig",
    "Capabilities",
    "errors",
    "__version__",
]
