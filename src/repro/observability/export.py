"""Exporters: Prometheus text format and structured log emission.

``render_prometheus`` serializes a :class:`MetricsRegistry` into the
Prometheus exposition format (the ``/metrics`` page a scraper would
fetch); ``parse_prometheus`` is its inverse, used by the round-trip
tests and by anything that wants to consume an exported page without a
real Prometheus.  ``log_metrics`` pushes the same samples through the
daemon's :mod:`~repro.util.virtlog` subsystem as structured
``key=value`` lines, so existing log filters/outputs route them.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InvalidArgumentError
from repro.observability.metrics import HISTOGRAM, MetricsRegistry
from repro.util.virtlog import LOG_INFO, Logger

_ESCAPES = {"\\": "\\\\", "\n": "\\n", '"': '\\"'}


def _escape_label(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in str(value))


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as a Prometheus exposition-format page."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for labels, child in family.samples():
            if family.type == HISTOGRAM:
                cumulative = child.bucket_counts()
                for bound, count in cumulative:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{family.name}_bucket{_format_labels(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(labels)} {child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_format_labels(labels)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_labels(text: "Optional[str]") -> Dict[str, str]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_PAIR_RE.match(text, pos)
        if match is None:
            raise InvalidArgumentError(f"malformed label block {text!r}")
        labels[match.group("name")] = _unescape_label(match.group("value"))
        pos = match.end()
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise InvalidArgumentError(f"malformed sample value {text!r}") from None


class ParsedMetric:
    """One metric family recovered from an exposition page."""

    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.type: Optional[str] = None
        self.help: Optional[str] = None
        #: ``(sample_name, labels, value)`` — sample_name carries the
        #: ``_bucket``/``_sum``/``_count`` suffix for histogram series
        self.samples: List[Tuple[str, Dict[str, str], float]] = []


def parse_prometheus(text: str) -> Dict[str, ParsedMetric]:
    """Inverse of :func:`render_prometheus` (family name → metric)."""
    metrics: Dict[str, ParsedMetric] = {}

    def family_for(sample_name: str) -> ParsedMetric:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if trimmed and trimmed in metrics and metrics[trimmed].type == "histogram":
                base = trimmed
                break
        if base not in metrics:
            metrics[base] = ParsedMetric(base)
        return metrics[base]

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            metrics.setdefault(name, ParsedMetric(name)).help = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, mtype = rest.partition(" ")
            metrics.setdefault(name, ParsedMetric(name)).type = mtype.strip()
            continue
        if line.startswith("#"):
            continue  # arbitrary comments are legal
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise InvalidArgumentError(f"malformed exposition line {line!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        family_for(sample_name).samples.append((sample_name, labels, value))
    return metrics


def log_metrics(
    logger: Logger,
    registry: MetricsRegistry,
    source: str = "observability.metrics",
    priority: int = LOG_INFO,
) -> int:
    """Emit every sample as one structured log line; returns lines emitted.

    Histograms are condensed to ``count``/``sum``/``mean`` — the full
    bucket vector belongs on the exporter page, not in the log stream.
    """
    emitted = 0
    for family in registry.families():
        for labels, child in family.samples():
            fields: Dict[str, Any] = {"metric": family.name, **labels}
            if family.type == HISTOGRAM:
                summary = child.summary()
                fields.update(
                    count=summary["count"],
                    sum=round(summary["sum"], 9),
                    mean=round(summary["mean"], 9),
                )
            else:
                fields["value"] = child.value
            if logger.structured(priority, source, "metric", **fields):
                emitted += 1
    return emitted


def render_trace_tree(spans: List[Dict[str, Any]]) -> str:
    """Render one trace's exported span dicts as an indented text tree.

    Spans arrive as :meth:`repro.observability.tracing.Span.to_dict`
    payloads (finished or in-flight).  Children indent under their
    parent; a span whose parent is unknown (evicted from the ring
    buffer, or belonging to the remote half of the trace) renders as a
    root.  Durations print in modelled seconds; an unfinished span
    prints ``(in flight)``, a failed one appends ``!`` and its error.
    """
    by_id = {span["span_id"]: span for span in spans}
    children: Dict[Any, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def order(group: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return sorted(group, key=lambda s: (s["start"], s["span_id"]))

    lines: List[str] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        duration = span.get("duration")
        timing = f"{duration:.6f}s" if duration is not None else "(in flight)"
        attrs = span.get("attributes") or {}
        detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        line = f"{'  ' * depth}{span['name']}  [{span['span_id']}]  {timing}"
        if detail:
            line += f"  {detail}"
        if span.get("error"):
            line += f"  ! {span['error']}"
        lines.append(line)
        for child in order(children.get(span["span_id"], [])):
            walk(child, depth + 1)

    for root in order(roots):
        walk(root, 0)
    return "\n".join(lines)
