"""The daemon's flight recorder: a crash-surviving black box.

Every daemon keeps a bounded ring of the most recent control-plane
facts — RPC frame headers, event-bus records, journal appends, crash-
plan hits — each stamped with the virtual clock.  The ring answers the
question every post-mortem starts with: *what was the daemon doing
right before it died?*

Durability comes in two strengths, mirroring the PR-6 shutdown model:

* **Graceful shutdown** compacts the ring into one atomic file
  (``StateDir.write_atomic``), so a clean restart starts from a tidy
  snapshot.
* **``kill -9``** leaves whatever the incremental append path already
  wrote: every record is appended to the recorder file *as it is
  recorded*, one JSON line per record, and a crash never un-writes an
  append.  The last line may be torn; recovery tolerates it.

On restart the new incarnation reads the tail, seeds its ring with the
previous life's records (marked with the incarnation that wrote them),
and reports which RPC dispatches began but never ended — the raw
material the daemon uses to close dangling spans as
``status=interrupted`` (see ``Libvirtd._attach_persistence``).

The recorder follows the layer's non-intrusiveness rules: without a
:class:`~repro.state.statedir.StateDir` it is a pure in-memory ring
(no I/O at all), and all timestamps come from the owning daemon's
clock so recording perturbs nothing it measures.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.state.statedir import StateDir

#: the recorder's file inside the daemon's state directory
FLIGHT_FILE = "flightrec.log"

#: compact the append-only file once it holds this many times the ring
#: capacity — keeps the amortized per-record disk cost O(1)
COMPACT_FACTOR = 4

#: record kinds (the ``kind`` field of every record)
KIND_RPC_BEGIN = "rpc.begin"
KIND_RPC_END = "rpc.end"
KIND_EVENT = "event"
KIND_JOURNAL = "journal"
KIND_CRASH = "crash"
KIND_SHUTDOWN = "shutdown"
KIND_RECOVERY = "recovery"


def read_tail(statedir: StateDir) -> "List[Dict[str, Any]]":
    """Parse the recorder file a previous incarnation left behind.

    Tolerates a torn final line (a ``kill -9`` mid-append) and any
    line that fails to parse — a black box that refuses to open is
    worse than one missing its last word.
    """
    raw = statedir.read_bytes(FLIGHT_FILE)
    if not raw:
        return []
    records: "List[Dict[str, Any]]" = []
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue  # torn or corrupt line: keep what we can read
        if isinstance(record, dict):
            records.append(record)
    return records


def interrupted_dispatches(
    records: "List[Dict[str, Any]]",
) -> "List[Dict[str, Any]]":
    """``rpc.begin`` records with no matching ``rpc.end`` in the tail.

    These are the dispatches a crash cut short: the daemon recorded
    the frame header, started executing, and died before replying.
    Matched by ``(server, serial)`` — the dispatch identity on one
    daemon — scoped to the final incarnation in the tail.
    """
    begun: "Dict[Tuple[Any, Any], Dict[str, Any]]" = {}
    for record in records:
        key = (record.get("server"), record.get("serial"))
        if record.get("kind") == KIND_RPC_BEGIN:
            begun[key] = record
        elif record.get("kind") == KIND_RPC_END:
            begun.pop(key, None)
        elif record.get("kind") == KIND_RECOVERY:
            # anything dangling before an older recovery was already
            # closed by that incarnation — start over
            begun.clear()
    return list(begun.values())


class FlightRecorder:
    """Bounded in-memory ring with optional crash-durable persistence."""

    def __init__(
        self,
        now: Callable[[], float],
        capacity: int = 512,
        statedir: "Optional[StateDir]" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be at least 1")
        self._now = now
        self.capacity = capacity
        self._ring: "Deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.statedir = statedir
        #: records written over this recorder's lifetime (ring evictions
        #: included), and records inherited from previous incarnations
        self.records_total = 0
        self.recovered_records = 0
        self.compactions = 0
        #: which life of the daemon wrote a record; bumped by recover()
        self.incarnation = 0
        self._file_records = 0

    # -- recording ---------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one record (virtual-clock stamped) to the ring and,
        when a state directory is attached, to the durable tail."""
        record: Dict[str, Any] = {"t": self._now(), "kind": kind}
        record.update(fields)
        record["life"] = self.incarnation
        with self._lock:
            self._ring.append(record)
            self.records_total += 1
        if self.statedir is not None:
            self._persist(record)
        return record

    def _persist(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.statedir.append(FLIGHT_FILE, line.encode("utf-8") + b"\n")
        with self._lock:
            self._file_records += 1
            needs_compact = self._file_records > COMPACT_FACTOR * self.capacity
        if needs_compact:
            self.flush()

    # -- durability --------------------------------------------------------

    def flush(self) -> None:
        """Compact the durable tail to exactly the current ring (one
        atomic write).  Called on graceful shutdown and whenever the
        append-only file outgrows ``COMPACT_FACTOR`` times the ring."""
        if self.statedir is None:
            return
        with self._lock:
            records = list(self._ring)
            self._file_records = len(records)
            self.compactions += 1
        payload = b"".join(
            json.dumps(r, sort_keys=True, separators=(",", ":")).encode("utf-8")
            + b"\n"
            for r in records
        )
        self.statedir.write_atomic(FLIGHT_FILE, payload)

    def recover(self) -> "List[Dict[str, Any]]":
        """Load the previous incarnation's tail into the ring.

        Returns the recovered records (oldest first) so the caller can
        mine them — e.g. for dispatches to close as interrupted.  The
        recorder keeps them in the ring, so a post-restart
        ``flight-dump`` still shows the moments before the crash.
        """
        if self.statedir is None:
            return []
        tail = read_tail(self.statedir)
        with self._lock:
            for record in tail[-self.capacity :]:
                self._ring.append(record)
            self.recovered_records += len(tail)
            self._file_records = len(tail)
            self.incarnation = 1 + max(
                (int(r.get("life", 0)) for r in tail), default=-1
            )
        return tail

    # -- inspection --------------------------------------------------------

    def records(self, kind: "Optional[str]" = None) -> "List[Dict[str, Any]]":
        with self._lock:
            out = list(self._ring)
        if kind is not None:
            out = [r for r in out if r.get("kind") == kind]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def dump(self) -> Dict[str, Any]:
        """The ``flight-dump`` payload: the ring plus recorder stats."""
        with self._lock:
            records = list(self._ring)
            return {
                "capacity": self.capacity,
                "records": records,
                "records_total": self.records_total,
                "recovered_records": self.recovered_records,
                "incarnation": self.incarnation,
                "compactions": self.compactions,
                "persistent": self.statedir is not None,
            }
