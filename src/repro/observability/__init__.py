"""Unified observability layer: metrics, span tracing, exporters.

The measuring instruments the daemon and clients use to see inside
themselves — wired through the RPC stack, transports, workerpools,
drivers, and migration, and surfaced via ``virt-admin server-stats``,
the Prometheus text exporter, and structured log emission.
"""

from repro.observability.export import (
    ParsedMetric,
    log_metrics,
    parse_prometheus,
    render_prometheus,
    render_trace_tree,
)
from repro.observability.metrics import (
    COUNTER,
    DEFAULT_BUCKETS,
    GAUGE,
    HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Timer,
)
from repro.observability.tracing import Span, SpanContext, Tracer

__all__ = [
    "COUNTER",
    "DEFAULT_BUCKETS",
    "GAUGE",
    "HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "ParsedMetric",
    "Span",
    "SpanContext",
    "Timer",
    "Tracer",
    "log_metrics",
    "parse_prometheus",
    "render_prometheus",
    "render_trace_tree",
]
