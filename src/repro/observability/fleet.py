"""Fleet-wide observability: federation, health scoring, trace stitching.

PR 2 gave every daemon a ``/metrics`` page and PR 4 gave every call a
trace, but at fleet scale (100 daemons) the operator's questions are
cross-host: *is the fleet healthy, where is the latency budget going,
and what exactly did that drain do?*  This module answers them on the
client side, riding the :class:`~repro.fleet.manager.FleetManager`
pool — the daemons are unmodified, which is the paper's non-intrusive
thesis applied to monitoring.

Three pieces:

* :class:`FleetScraper` — pulls every daemon's Prometheus text page,
  relabels each sample with ``host=<hostname>`` and merges the pages
  into one federated blob (``federate``); computes fleet rollups
  (sum/max across hosts, merged-histogram p99, capacity-weighted
  utilization — ``rollups``) and per-procedure latency SLOs
  (target/compliance/burn-rate — ``slo_report``).
* **Health scoring** — ``health_scores`` folds scrape freshness,
  connection health, in-flight-window saturation, journal lag, and
  event-queue drops into one 0..1 score per host (weights in
  ``HEALTH_WEIGHTS``); ``install`` plugs the scorer into
  ``FleetManager.health_check`` so drain/rebalance placement prefers
  healthy destinations.
* **Trace stitching** — :func:`collect_fleet_spans` merges one trace's
  spans from the client-side tracer and every daemon's collector (the
  PR-4 global span-id space makes the union collision-free), so one
  drain renders as one tree: ``fleet.drain → drain.wave → fleet.migrate
  → {src,dst}: rpc.dispatch``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

from repro.errors import VirtError
from repro.observability.export import (
    ParsedMetric,
    _format_labels,
    _format_value,
    parse_prometheus,
    render_trace_tree,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.manager import FleetManager
    from repro.observability.tracing import Tracer

#: health-score component weights (must sum to 1.0)
HEALTH_WEIGHTS: Dict[str, float] = {
    "freshness": 0.30,
    "connectivity": 0.25,
    "saturation": 0.20,
    "journal": 0.15,
    "events": 0.10,
}

#: normalization knobs for the score components
DEFAULT_MAX_AGE_S = 60.0  # a scrape older than this is stale
DEFAULT_INFLIGHT_WINDOW = 5  # the PR-3 per-connection in-flight window
JOURNAL_LAG_LIMIT = 256.0  # tail records at which the journal score hits 0
EVENT_DROP_LIMIT = 100.0  # dropped bus records at which the event score hits 0

#: SLO defaults: fraction of dispatches that must finish under target
DEFAULT_SLO_GOAL = 0.99
DEFAULT_SLO_TARGET_S = 0.5


def _lookup_daemon(hostname: str):
    # imported lazily: repro.daemon pulls in the whole daemon stack,
    # which itself imports repro.observability submodules
    from repro.daemon.registry import lookup_daemon

    return lookup_daemon(hostname)


@dataclass
class HostScrape:
    """One host's most recent scrape attempt."""

    hostname: str
    ok: bool = False
    text: str = ""
    parsed: Dict[str, ParsedMetric] = field(default_factory=dict)
    at: float = 0.0
    error: "Optional[str]" = None


@dataclass
class HealthScore:
    """One host's composite health: 0 (dead) .. 1 (perfect)."""

    hostname: str
    score: float = 0.0
    healthy: bool = False
    components: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hostname": self.hostname,
            "score": round(self.score, 4),
            "healthy": self.healthy,
            "components": {k: round(v, 4) for k, v in self.components.items()},
        }


def relabel(parsed: Dict[str, ParsedMetric], host: str) -> Dict[str, ParsedMetric]:
    """A copy of a parsed page with ``host=<host>`` stamped on every
    sample — the federation relabeling rule.  An existing ``host``
    label is overwritten: the fleet's view of identity (the hostname
    the daemon answered ``add_host`` with) wins over self-reporting."""
    out: Dict[str, ParsedMetric] = {}
    for name, metric in parsed.items():
        copy = ParsedMetric(name)
        copy.type = metric.type
        copy.help = metric.help
        for sample_name, labels, value in metric.samples:
            relabelled = dict(labels)
            relabelled["host"] = host
            copy.samples.append((sample_name, relabelled, value))
        out[name] = copy
    return out


def merge_pages(pages: Dict[str, Dict[str, ParsedMetric]]) -> str:
    """Render per-host parsed pages as one federated exposition blob.

    Every sample is relabelled with its host first, so series that are
    duplicates across hosts (same name, same labels) stay distinct in
    the merged page.  HELP/TYPE metadata comes from the first host that
    declared it (they are identical across a homogeneous fleet).
    """
    merged: Dict[str, ParsedMetric] = {}
    for host in sorted(pages):
        for name, metric in relabel(pages[host], host).items():
            target = merged.get(name)
            if target is None:
                target = merged[name] = ParsedMetric(name)
            if target.type is None:
                target.type = metric.type
            if target.help is None:
                target.help = metric.help
            target.samples.extend(metric.samples)
    lines: List[str] = []
    for name in sorted(merged):
        metric = merged[name]
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        if metric.type:
            lines.append(f"# TYPE {name} {metric.type}")
        for sample_name, labels, value in metric.samples:
            lines.append(
                f"{sample_name}{_format_labels(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _merged_histogram(
    pages: Iterable[Dict[str, ParsedMetric]],
    name: str,
    label: "Optional[str]" = None,
) -> Dict[str, Dict[float, float]]:
    """Cross-host cumulative buckets for one histogram family,
    grouped by ``label`` (or lumped under ``""`` when None)."""
    grouped: Dict[str, Dict[float, float]] = {}
    for page in pages:
        metric = page.get(name)
        if metric is None:
            continue
        for sample_name, labels, value in metric.samples:
            if not sample_name.endswith("_bucket") or "le" not in labels:
                continue
            key = labels.get(label, "") if label else ""
            bounds = grouped.setdefault(key, {})
            le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
            bounds[le] = bounds.get(le, 0.0) + value
    return grouped


def quantile_from_buckets(bounds: Dict[float, float], q: float) -> float:
    """The smallest bucket bound covering quantile ``q`` of a merged
    cumulative-bucket vector (Prometheus-style upper-bound estimate)."""
    if not bounds:
        return 0.0
    total = bounds.get(math.inf, max(bounds.values()))
    if total <= 0:
        return 0.0
    for le in sorted(bounds):
        if bounds[le] >= q * total:
            return le
    return math.inf


class FleetScraper:
    """Scrape, federate, roll up, and health-score a whole fleet.

    Rides the fleet pool for membership and per-host connection health;
    the metrics themselves come from each daemon's exposition page (the
    same text ``pyvirt-admin metrics`` serves), parsed with the PR-2
    parser.  All timestamps are the daemons' virtual clock.
    """

    def __init__(
        self,
        fleet: "FleetManager",
        max_age_s: float = DEFAULT_MAX_AGE_S,
        inflight_window: int = DEFAULT_INFLIGHT_WINDOW,
        slo_targets: "Optional[Dict[str, float]]" = None,
        slo_default_target_s: float = DEFAULT_SLO_TARGET_S,
        slo_goal: float = DEFAULT_SLO_GOAL,
        healthy_threshold: float = 0.5,
    ) -> None:
        self.fleet = fleet
        self.max_age_s = max_age_s
        self.inflight_window = inflight_window
        self.slo_targets = dict(slo_targets or {})
        self.slo_default_target_s = slo_default_target_s
        if not 0.0 < slo_goal < 1.0:
            raise ValueError("slo_goal must be in (0, 1)")
        self.slo_goal = slo_goal
        self.healthy_threshold = healthy_threshold
        #: hostname → most recent scrape (kept across cycles so
        #: freshness decays instead of vanishing)
        self.last: Dict[str, HostScrape] = {}
        self._now = None
        metrics = getattr(fleet, "metrics", None)
        self._m_scrapes = (
            metrics.counter(
                "fleet_scrapes_total",
                "Per-host scrape attempts by outcome",
                ("outcome",),
            )
            if metrics is not None
            else None
        )

    # -- scraping ----------------------------------------------------------

    def now(self) -> float:
        return self._now() if self._now is not None else 0.0

    def scrape_host(self, hostname: str) -> HostScrape:
        """Pull one daemon's exposition page and parse it."""
        scrape = HostScrape(hostname=hostname)
        try:
            daemon = _lookup_daemon(hostname)
            text = daemon.metrics_text()
            # first contact late-binds the scraper to the fleet's clock
            if self._now is None:
                self._now = daemon.clock.now
            scrape.at = self.now()
            scrape.parsed = parse_prometheus(text)
            scrape.text = text
            scrape.ok = True
        except VirtError as exc:
            scrape.at = self.now()
            scrape.error = f"{type(exc).__name__}: {exc}"
        if self._m_scrapes is not None:
            self._m_scrapes.labels(outcome="ok" if scrape.ok else "error").inc()
        self.last[hostname] = scrape
        return scrape

    def scrape(self) -> Dict[str, HostScrape]:
        """One scrape cycle over every fleet member."""
        tracer = getattr(self.fleet, "tracer", None)
        if tracer is not None:
            with tracer.span("fleet.scrape", hosts=len(self.fleet)):
                return {h: self.scrape_host(h) for h in self.fleet.hostnames()}
        return {h: self.scrape_host(h) for h in self.fleet.hostnames()}

    def _pages(self) -> Dict[str, Dict[str, ParsedMetric]]:
        return {h: s.parsed for h, s in self.last.items() if s.ok}

    # -- federation --------------------------------------------------------

    def federate(self, rescrape: bool = True) -> str:
        """The fleet's ``/metrics`` page: every host's samples,
        relabelled with ``host=`` and merged."""
        if rescrape or not self.last:
            self.scrape()
        return merge_pages(self._pages())

    # -- rollups -----------------------------------------------------------

    def rollups(self, rescrape: bool = False) -> Dict[str, Any]:
        """Fleet-level aggregates: per-family sum/max across hosts,
        merged p99 for histograms, and capacity-weighted utilization."""
        if rescrape or not self.last:
            self.scrape()
        pages = self._pages()
        metrics: Dict[str, Dict[str, float]] = {}
        for page in pages.values():
            for name, metric in page.items():
                if metric.type == "histogram":
                    continue
                for sample_name, _labels, value in metric.samples:
                    if sample_name != name or math.isnan(value):
                        continue
                    agg = metrics.setdefault(
                        name, {"sum": 0.0, "max": -math.inf}
                    )
                    agg["sum"] += value
                    agg["max"] = max(agg["max"], value)
        for name in {
            n for page in pages.values()
            for n, m in page.items() if m.type == "histogram"
        }:
            merged = _merged_histogram(pages.values(), name)
            bounds = merged.get("", {})
            metrics[name] = {
                "count": bounds.get(math.inf, 0.0),
                "p99": quantile_from_buckets(bounds, 0.99),
            }
        # capacity-weighted utilization from the pool's capacity rows
        total_kib = used_kib = 0.0
        for row in self.fleet.fleet_status():
            if row.get("healthy") and "memory_kib" in row:
                total_kib += row["memory_kib"]
                used_kib += row["memory_kib"] - row["free_memory_kib"]
        return {
            "hosts": len(self.fleet),
            "scraped": len(pages),
            "utilization": used_kib / total_kib if total_kib else 0.0,
            "metrics": metrics,
        }

    # -- SLOs --------------------------------------------------------------

    def slo_report(self, rescrape: bool = False) -> List[Dict[str, Any]]:
        """Per-procedure latency SLOs from the fleet-merged
        ``rpc_server_dispatch_seconds`` histogram.

        Compliance is the fraction of dispatches at or under the
        target (conservatively read from the largest bucket bound not
        above it); the burn rate is the error budget spend —
        ``(1 - compliance) / (1 - goal)``, so 1.0 means burning exactly
        the budget and anything above it means the SLO will not hold.
        """
        if rescrape or not self.last:
            self.scrape()
        pages = self._pages()
        by_procedure = _merged_histogram(
            pages.values(), "rpc_server_dispatch_seconds", label="procedure"
        )
        rows: List[Dict[str, Any]] = []
        for procedure in sorted(by_procedure):
            bounds = by_procedure[procedure]
            total = bounds.get(math.inf, max(bounds.values(), default=0.0))
            if total <= 0:
                continue
            target = self.slo_targets.get(procedure, self.slo_default_target_s)
            eligible = [le for le in bounds if le <= target]
            compliant = bounds[max(eligible)] if eligible else 0.0
            compliance = compliant / total
            burn = (1.0 - compliance) / (1.0 - self.slo_goal)
            rows.append({
                "procedure": procedure,
                "target_s": target,
                "calls": total,
                "compliance": compliance,
                "burn_rate": burn,
                "p99_s": quantile_from_buckets(bounds, 0.99),
                "met": compliance >= self.slo_goal,
            })
        return rows

    # -- health scoring ----------------------------------------------------

    def _page_value(
        self,
        page: "Optional[Dict[str, ParsedMetric]]",
        name: str,
        **want_labels: str,
    ) -> "Optional[float]":
        if page is None or name not in page:
            return None
        total: "Optional[float]" = None
        for sample_name, labels, value in page[name].samples:
            if sample_name != name or math.isnan(value):
                continue
            if any(labels.get(k) != v for k, v in want_labels.items()):
                continue
            total = value if total is None else total + value
        return total

    def score_host(self, hostname: str, rescrape: bool = True) -> HealthScore:
        """Score one host from its latest scrape + pool entry state."""
        if rescrape or hostname not in self.last:
            self.scrape_host(hostname)
        scrape = self.last.get(hostname)
        page = scrape.parsed if scrape is not None and scrape.ok else None
        entry = self.fleet.entry(hostname)

        components: Dict[str, float] = {}
        fresh = (
            scrape is not None
            and scrape.ok
            and self.now() - scrape.at <= self.max_age_s
        )
        components["freshness"] = 1.0 if fresh else 0.0
        if entry.healthy and not entry.connection.closed:
            failure_ratio = entry.failures / entry.probes if entry.probes else 0.0
            components["connectivity"] = max(0.0, 1.0 - failure_ratio)
        else:
            components["connectivity"] = 0.0
        inflight = self._page_value(
            page, "rpc_server_inflight_calls", server="libvirtd"
        )
        components["saturation"] = (
            max(0.0, 1.0 - inflight / self.inflight_window)
            if inflight is not None and self.inflight_window > 0
            else (1.0 if page is not None else 0.0)
        )
        lag = self._page_value(page, "journal_tail_records")
        components["journal"] = (
            max(0.0, 1.0 - lag / JOURNAL_LAG_LIMIT)
            if lag is not None
            else (1.0 if page is not None else 0.0)
        )
        drops = self._page_value(page, "events_dropped_total")
        components["events"] = (
            max(0.0, 1.0 - drops / EVENT_DROP_LIMIT)
            if drops is not None
            else (1.0 if page is not None else 0.0)
        )
        score = sum(HEALTH_WEIGHTS[k] * components[k] for k in HEALTH_WEIGHTS)
        return HealthScore(
            hostname=hostname,
            score=score,
            healthy=score >= self.healthy_threshold,
            components=components,
        )

    def health_scores(self, rescrape: bool = True) -> Dict[str, HealthScore]:
        if rescrape:
            self.scrape()
        return {
            hostname: self.score_host(hostname, rescrape=False)
            for hostname in self.fleet.hostnames()
        }

    def install(self) -> None:
        """Plug this scorer into the fleet's health checks: from now on
        ``FleetManager.health_check`` (and therefore the orchestrator's
        destination set) also requires the composite score to clear the
        threshold, not just the probe to answer."""
        self.fleet.health_scorer = (
            lambda hostname: self.score_host(hostname).healthy
        )


# -- trace stitching -------------------------------------------------------


def collect_fleet_spans(
    trace_id: int,
    hostnames: "Iterable[str]" = (),
    local_tracer: "Optional[Tracer]" = None,
    extra_spans: "Optional[Iterable[Dict[str, Any]]]" = None,
) -> List[Dict[str, Any]]:
    """Merge one trace's spans from every collector that saw a piece.

    ``local_tracer`` contributes the client side (``fleet.drain``,
    ``rpc.call``...); each hostname's daemon contributes its dispatch
    spans; ``extra_spans`` lets callers feed spans fetched out of band
    (e.g. over admin connections).  The PR-4 process-global span-id
    space makes the union safe: equal ids are the same span, so
    duplicates collapse instead of colliding.  Daemon spans are tagged
    with ``host=<hostname>`` so the stitched tree shows which side of a
    migration each dispatch ran on.
    """
    spans: Dict[int, Dict[str, Any]] = {}
    if local_tracer is not None:
        for span in local_tracer.spans(trace_id=trace_id, include_open=True):
            spans[span.span_id] = span.to_dict()
    for hostname in hostnames:
        try:
            exported = _lookup_daemon(hostname).trace_get(trace_id)
        except VirtError:
            continue  # daemon gone, or it never saw this trace
        for span in exported:
            if span["span_id"] in spans:
                continue
            span = dict(span)
            attributes = dict(span.get("attributes") or {})
            attributes.setdefault("host", hostname)
            span["attributes"] = attributes
            spans[span["span_id"]] = span
    for span in extra_spans or ():
        spans.setdefault(span["span_id"], dict(span))
    out = list(spans.values())
    out.sort(key=lambda s: (s["start"], s["span_id"]))
    return out


def render_fleet_trace(spans: List[Dict[str, Any]]) -> str:
    """Render stitched spans as one tree (daemon-side spans whose
    parents live in another collector root correctly — the renderer
    treats unknown parents as roots)."""
    return render_trace_tree(spans)


__all__ = [
    "DEFAULT_SLO_GOAL",
    "DEFAULT_SLO_TARGET_S",
    "FleetScraper",
    "HEALTH_WEIGHTS",
    "HealthScore",
    "HostScrape",
    "collect_fleet_spans",
    "merge_pages",
    "quantile_from_buckets",
    "relabel",
    "render_fleet_trace",
]
