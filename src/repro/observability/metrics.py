"""Metrics primitives: counters, gauges, histograms, and the registry.

The daemon's inner life — workerpool depth, per-procedure dispatch
latency, bytes on the wire — is invisible from the outside unless the
management layer measures itself.  This module provides the measuring
instruments; :mod:`repro.observability.export` turns them into the
Prometheus text format and structured log lines, and the admin API
(``virt-admin server-stats``) serves them over the wire.

Design notes:

* every instrument is thread-safe (workerpool workers, the dispatcher,
  and admin scrapes all touch them concurrently);
* the registry is *clock-aware*: it stamps snapshots with the daemon's
  own clock (usually a :class:`~repro.util.clock.VirtualClock`), so
  metrics collected in a simulation carry modelled-time timestamps and
  stay deterministic;
* labelled metrics follow the Prometheus family/child model: a family
  (``rpc_server_calls_total``) fans out into children per label value
  (``{procedure="domain.create"}``), created lazily on first touch;
* instrumented code guards every emission with ``if metrics is not
  None`` — a component without a registry pays one attribute test and
  nothing else, preserving the paper's negligible-overhead claim.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidArgumentError

#: latency-oriented default bucket boundaries (seconds); +Inf is implicit
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise InvalidArgumentError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing value (calls made, bytes sent)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise InvalidArgumentError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that goes both ways (queue depth, free workers).

    ``set_function`` installs a callback evaluated at read time, so a
    gauge can mirror live state (e.g. the workerpool's queue length)
    without the pool pushing an update on every transition.
    """

    __slots__ = ("_value", "_fn", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        return float(fn())

    def reset(self) -> None:
        with self._lock:
            if self._fn is None:
                self._value = 0.0
            # callback gauges mirror live state; reset cannot zero them


class Histogram:
    """Cumulative-bucket distribution (Prometheus semantics).

    Tracks per-bucket counts (``le`` upper bounds), total count, sum,
    and the observed min/max for cheap summary display.
    """

    __slots__ = ("buckets", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise InvalidArgumentError("histogram needs at least one bucket bound")
        if any(b <= 0 and not math.isfinite(b) for b in bounds):
            raise InvalidArgumentError("bucket bounds must be finite")
        if len(set(bounds)) != len(bounds):
            raise InvalidArgumentError("bucket bounds must be distinct")
        self.buckets = bounds
        self._counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> "List[Tuple[float, int]]":
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, count)``."""
        with self._lock:
            pairs = list(zip(self.buckets, self._counts))
            pairs.append((math.inf, self._count))
            return pairs

    def summary(self) -> Dict[str, float]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min if self._min is not None else 0.0,
                "max": self._max if self._max is not None else 0.0,
            }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self.buckets)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None


_INSTRUMENTS = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricFamily:
    """One named metric, fanned out into children by label values."""

    def __init__(
        self,
        name: str,
        mtype: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = _validate_name(name)
        if mtype not in _INSTRUMENTS:
            raise InvalidArgumentError(f"unknown metric type {mtype!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise InvalidArgumentError(f"invalid label name {label!r}")
        self.type = mtype
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> Any:
        if self.type == HISTOGRAM and self._buckets is not None:
            return Histogram(self._buckets)
        return _INSTRUMENTS[self.type]()

    def labels(self, **labels: str) -> Any:
        """The child instrument for one label-value combination."""
        if set(labels) != set(self.labelnames):
            raise InvalidArgumentError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _unlabelled(self) -> Any:
        if self.labelnames:
            raise InvalidArgumentError(
                f"metric {self.name!r} is labelled; call .labels(...) first"
            )
        return self.labels()

    # -- unlabelled conveniences ------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._unlabelled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabelled().dec(amount)

    def set(self, value: float) -> None:
        self._unlabelled().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._unlabelled().set_function(fn)

    def observe(self, value: float) -> None:
        self._unlabelled().observe(value)

    @property
    def value(self) -> float:
        return self._unlabelled().value

    # -- enumeration -------------------------------------------------------

    def children(self) -> "List[Tuple[Tuple[str, ...], Any]]":
        with self._lock:
            return sorted(self._children.items())

    def samples(self) -> "List[Tuple[Dict[str, str], Any]]":
        """``(labels_dict, instrument)`` pairs for every child."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in self.children()
        ]

    def reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child.reset()


class MetricsRegistry:
    """The per-daemon (or per-client) collection of metric families.

    ``now`` supplies timestamps for snapshots and exports — pass the
    owning component's clock so simulated time flows through, keeping
    exports deterministic under the virtual clock.
    """

    def __init__(self, now: "Optional[Callable[[], float]]" = None) -> None:
        self._now = now or (lambda: 0.0)
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._now()

    def set_clock(self, now: Callable[[], float]) -> None:
        """Late-bind the time source (e.g. once a transport is dialled)."""
        self._now = now

    def _family(
        self,
        name: str,
        mtype: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, mtype, help_text, labelnames, buckets)
                self._families[name] = family
                return family
        if family.type != mtype:
            raise InvalidArgumentError(
                f"metric {name!r} already registered as {family.type}"
            )
        if family.labelnames != tuple(labelnames):
            raise InvalidArgumentError(
                f"metric {name!r} already registered with labels "
                f"{list(family.labelnames)}"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, COUNTER, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, GAUGE, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, HISTOGRAM, help_text, labelnames, buckets)

    def get(self, name: str) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
        if family is None:
            raise InvalidArgumentError(f"no metric named {name!r}")
        return family

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def families(self) -> "List[MetricFamily]":
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data dump of every family (admin API payload)."""
        out: Dict[str, Any] = {"timestamp": self.now(), "metrics": {}}
        for family in self.families():
            samples = []
            for labels, child in family.samples():
                if family.type == HISTOGRAM:
                    samples.append({"labels": labels, **child.summary()})
                else:
                    samples.append({"labels": labels, "value": child.value})
            out["metrics"][family.name] = {
                "type": family.type,
                "help": family.help,
                "samples": samples,
            }
        return out

    def reset(self) -> None:
        """Zero every counter and histogram; callback gauges are live
        views of component state and keep reporting it."""
        for family in self.families():
            family.reset()


class Timer:
    """Context manager observing an interval into a histogram child.

    Measures against the registry's clock (modelled seconds under a
    virtual clock)::

        with Timer(registry, histogram_child):
            do_work()
    """

    __slots__ = ("_now", "_instrument", "_start", "elapsed")

    def __init__(self, registry: MetricsRegistry, instrument: Histogram) -> None:
        self._now = registry.now
        self._instrument = instrument
        self._start = 0.0
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = self._now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = self._now() - self._start
        self._instrument.observe(self.elapsed)
