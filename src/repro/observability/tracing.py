"""Lightweight span tracing for the daemon's hot paths.

A :class:`Span` measures one named interval of (modelled) time with
attributes; spans nest per thread, so a dispatch span started by the
RPC layer becomes the parent of the driver-operation span the handler
opens, and a migration records one child span per handshake phase.

Finished spans land in a bounded ring buffer — tracing is a debugging
and measurement aid, never an unbounded memory leak.  There is no
cross-process propagation: the simulation is one process, so a trace
is simply the tree of spans sharing a root.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional


class Span:
    """One timed interval; finished when ``end`` is set."""

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id",
        "start", "end", "attributes", "error",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        trace_id: int,
        start: float,
        parent_id: "Optional[int]" = None,
        attributes: "Optional[Dict[str, Any]]" = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        #: set to the exception repr when the spanned block raised
        self.error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} has not finished")
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration if self.finished else None,
            "attributes": dict(self.attributes),
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state})"


class _SpanContext:
    """The context-manager half of ``Tracer.span``."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc is not None:
            self.span.error = repr(exc)
        self._tracer._finish(self.span)


class Tracer:
    """Per-daemon span factory with a bounded finished-span buffer."""

    def __init__(self, now: Callable[[], float], max_finished: int = 2048) -> None:
        self._now = now
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._finished: "Deque[Span]" = deque(maxlen=max_finished)
        self._lock = threading.Lock()
        self.spans_started = 0
        self.spans_failed = 0

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span nested under the thread's current span::

            with tracer.span("rpc.dispatch", procedure="domain.create"):
                ...
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = next(self._ids)
            self.spans_started += 1
        span = Span(
            name,
            span_id,
            trace_id=parent.trace_id if parent is not None else span_id,
            start=self._now(),
            parent_id=parent.span_id if parent is not None else None,
            attributes=attributes,
        )
        stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self._now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # out-of-order exit: drop down to it
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        with self._lock:
            if span.error is not None:
                self.spans_failed += 1
            self._finished.append(span)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- inspection --------------------------------------------------------

    @property
    def current(self) -> "Optional[Span]":
        stack = self._stack()
        return stack[-1] if stack else None

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    @property
    def spans_finished(self) -> int:
        with self._lock:
            return len(self._finished)

    def find(self, name: str) -> List[Span]:
        return [s for s in self.finished_spans() if s.name == name]

    def export(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.finished_spans()]

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
            self.spans_started = 0
            self.spans_failed = 0
