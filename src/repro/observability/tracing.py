"""Distributed span tracing for the management layer's hot paths.

A :class:`Span` measures one named interval of (modelled) time with
attributes.  Parentage is resolved in three steps: an explicit
:class:`SpanContext` passed by the caller (how a dispatcher adopts the
context a CALL frame carried across the wire), else the calling
thread's innermost open span, else the context :meth:`Tracer.attach`\\ ed
to the thread (how a workerpool job inherits the read-loop's context).
That explicit-context model is what lets one remote API call produce
**one** trace even though it hops threads on both sides of the RPC
boundary: client ``call_async`` → correlation table → reply delivery,
and server read-loop → in-flight window queue → workerpool job.

Spans started with :meth:`Tracer.span` nest on the thread stack (a
context manager); spans started with :meth:`Tracer.start_span` are
*detached* — never pushed on any stack, finished explicitly with
:meth:`Tracer.finish_span` from whichever thread collects the result.
The RPC client uses detached spans so pipelined calls on one thread
cannot accidentally nest under each other.

Finished spans land in a bounded ring buffer — tracing is a debugging
and measurement aid, never an unbounded memory leak.  Open spans are
tracked too, so an in-flight trace is queryable (``trace-get``) before
it completes and survives ``reset-stats`` uncorrupted.

Span and trace ids are allocated from one process-global counter, so
ids stay unique across every tracer in the simulation (client- and
daemon-side spans of one trace land in a shared buffer without
colliding), while remaining deterministic for a given run.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

#: one id space for every tracer in the process — span ids must not
#: collide when client and daemon spans join the same trace
_ID_LOCK = threading.Lock()
_IDS = itertools.count(1)


def _next_id() -> int:
    with _ID_LOCK:
        return next(_IDS)


class SpanContext:
    """The propagatable identity of a span: ``(trace_id, span_id)``.

    This is what crosses thread handoffs (:meth:`Tracer.attach` /
    :meth:`Tracer.detach`) and the RPC wire (the optional trace-context
    frame field, see ``docs/PROTOCOL.md``).
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"

    def to_wire(self) -> Dict[str, int]:
        """The plain-data form carried in the RPC frame."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_wire(obj: Any) -> "Optional[SpanContext]":
        """Rebuild a context from wire data; None for anything malformed
        (an old or foreign frame must degrade to 'no context', never
        fail dispatch)."""
        if not isinstance(obj, dict):
            return None
        trace_id = obj.get("trace_id")
        span_id = obj.get("span_id")
        if (
            isinstance(trace_id, int)
            and isinstance(span_id, int)
            and not isinstance(trace_id, bool)
            and not isinstance(span_id, bool)
            and trace_id > 0
            and span_id > 0
        ):
            return SpanContext(trace_id, span_id)
        return None


class Span:
    """One timed interval; finished when ``end`` is set."""

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id",
        "start", "end", "attributes", "error",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        trace_id: int,
        start: float,
        parent_id: "Optional[int]" = None,
        attributes: "Optional[Dict[str, Any]]" = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        #: set to the exception repr when the spanned block raised
        self.error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} has not finished")
        return self.end - self.start

    @property
    def context(self) -> SpanContext:
        """This span's propagatable identity."""
        return SpanContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration if self.finished else None,
            "attributes": dict(self.attributes),
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state})"


class _SpanContextManager:
    """The context-manager half of ``Tracer.span``."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc is not None and self.span.error is None:
            self.span.error = repr(exc)
        self._tracer._finish(self.span)


#: backward-compatible alias (the manager used to be ``_SpanContext``)
_SpanContext = _SpanContextManager


class _ThreadState:
    """Per-thread tracing state: the nesting stack + attached context."""

    __slots__ = ("stack", "context")

    def __init__(self) -> None:
        self.stack: List[Span] = []
        self.context: Optional[SpanContext] = None


class Tracer:
    """Span factory with a bounded finished-span buffer and an
    open-span table for querying in-flight traces.

    ``metrics`` is optional (non-intrusiveness rule): with a registry,
    every finished span observes ``span_seconds{name}`` and every span
    adopted from a wire-propagated context increments
    ``spans_propagated_total``; without one, nothing is emitted.
    """

    def __init__(
        self,
        now: Callable[[], float],
        max_finished: int = 2048,
        metrics: "Optional[Any]" = None,
    ) -> None:
        self._now = now
        self._local = threading.local()
        self._finished: "Deque[Span]" = deque(maxlen=max_finished)
        self._open: Dict[int, Span] = {}
        self._lock = threading.Lock()
        self.spans_started = 0
        self.spans_failed = 0
        #: spans force-finished because an enclosing span exited first
        self.spans_orphaned = 0
        #: spans whose parent context arrived over the wire
        self.spans_propagated = 0
        self.metrics = metrics
        if metrics is not None:
            self._m_span_seconds = metrics.histogram(
                "span_seconds",
                "Modelled span durations by span name",
                ("name",),
            )
            self._m_propagated = metrics.counter(
                "spans_propagated_total",
                "Spans created under a wire-propagated parent context",
            )

    # -- span lifecycle ----------------------------------------------------

    def span(
        self,
        name: str,
        parent: "Optional[SpanContext]" = None,
        **attributes: Any,
    ) -> _SpanContextManager:
        """Open a span on the calling thread's stack::

            with tracer.span("rpc.dispatch", procedure="domain.create"):
                ...

        ``parent`` overrides the ambient parent — pass the
        :class:`SpanContext` a frame carried to adopt a remote trace
        (counted in ``spans_propagated_total``).  Without it the parent
        is the thread's innermost open span, else the attached context.
        """
        span = self._make_span(name, parent, attributes)
        self._state().stack.append(span)
        return _SpanContextManager(self, span)

    def start_span(
        self,
        name: str,
        parent: "Optional[SpanContext]" = None,
        **attributes: Any,
    ) -> Span:
        """Open a *detached* span: parented like :meth:`span` but never
        pushed on the thread stack, so it survives thread handoffs and
        pipelined siblings stay siblings.  Finish it explicitly with
        :meth:`finish_span` from any thread."""
        return self._make_span(name, parent, attributes)

    def finish_span(self, span: Span, error: "Optional[str]" = None) -> None:
        """Finish a span started with :meth:`start_span` (idempotent)."""
        if span.finished:
            return
        if error is not None and span.error is None:
            span.error = error
        self._finish(span)

    def _make_span(
        self,
        name: str,
        parent: "Optional[SpanContext]",
        attributes: Dict[str, Any],
    ) -> Span:
        propagated = parent is not None
        if parent is None:
            parent = self.current_context()
        span_id = _next_id()
        span = Span(
            name,
            span_id,
            trace_id=parent.trace_id if parent is not None else span_id,
            start=self._now(),
            parent_id=parent.span_id if parent is not None else None,
            attributes=attributes,
        )
        with self._lock:
            self.spans_started += 1
            if propagated:
                self.spans_propagated += 1
            self._open[span_id] = span
        if propagated and self.metrics is not None:
            self._m_propagated.inc()
        return span

    def _finish(self, span: Span) -> None:
        if span.finished:
            return
        span.end = self._now()
        stack = self._state().stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            # out-of-order exit: spans opened after ``span`` on this
            # thread can never pop cleanly — finish them as orphans
            # (marked, counted, buffered) instead of silently dropping
            # them with spans_started forever exceeding finished
            while stack and stack[-1] is not span:
                orphan = stack.pop()
                self._finalize(orphan, orphaned_by=span.name)
            if stack:
                stack.pop()
        self._finalize(span)

    def _finalize(self, span: Span, orphaned_by: "Optional[str]" = None) -> None:
        if orphaned_by is not None:
            span.end = self._now()
            if span.error is None:
                span.error = f"orphaned: enclosing span {orphaned_by!r} exited first"
        with self._lock:
            self._open.pop(span.span_id, None)
            if span.error is not None:
                self.spans_failed += 1
            if orphaned_by is not None:
                self.spans_orphaned += 1
            self._finished.append(span)
        if self.metrics is not None:
            self._m_span_seconds.labels(name=span.name).observe(span.end - span.start)

    def record_interrupted(
        self,
        name: str,
        span_id: int,
        trace_id: int,
        start: float,
        parent_id: "Optional[int]" = None,
        **attributes: Any,
    ) -> Span:
        """Materialize a span another incarnation opened but never
        finished — a dispatch the daemon died inside, reconstructed
        from the flight-recorder tail on restart recovery.

        The span keeps its original identity (ids minted by the dead
        process stay valid: the id space is process-global and the
        counter only moves forward), ends *now*, and is marked
        ``status=interrupted`` so the stitched trace shows where the
        crash cut it short instead of dangling forever.
        """
        span = Span(
            name,
            span_id,
            trace_id=trace_id,
            start=start,
            parent_id=parent_id,
            attributes=attributes,
        )
        span.attributes["status"] = "interrupted"
        span.error = "interrupted: daemon died before the dispatch finished"
        span.end = self._now()
        with self._lock:
            self.spans_started += 1
            self.spans_failed += 1
            self._finished.append(span)
        if self.metrics is not None:
            self._m_span_seconds.labels(name=span.name).observe(span.end - span.start)
        return span

    # -- context propagation -----------------------------------------------

    def current_context(self) -> "Optional[SpanContext]":
        """The context a child span started *now* on this thread would
        inherit: innermost open span, else the attached context."""
        state = self._state()
        if state.stack:
            return state.stack[-1].context
        return state.context

    def attach(self, context: "Optional[SpanContext]") -> "Optional[SpanContext]":
        """Install ``context`` as this thread's ambient parent (a
        cross-thread handoff: the submitting side captures
        :meth:`current_context`, the executing side attaches it).
        Returns the previously attached context — pass it back to
        :meth:`detach` to restore."""
        state = self._state()
        previous = state.context
        state.context = context
        return previous

    def detach(self, token: "Optional[SpanContext]") -> None:
        """Restore the context that :meth:`attach` displaced."""
        self._state().context = token

    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ThreadState()
            self._local.state = state
        return state

    # -- inspection --------------------------------------------------------

    @property
    def current(self) -> "Optional[Span]":
        stack = self._state().stack
        return stack[-1] if stack else None

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    def open_spans(self) -> List[Span]:
        """Spans started but not yet finished (in-flight work)."""
        with self._lock:
            return list(self._open.values())

    @property
    def spans_finished(self) -> int:
        with self._lock:
            return len(self._finished)

    @property
    def spans_open(self) -> int:
        with self._lock:
            return len(self._open)

    def find(self, name: str) -> List[Span]:
        return [s for s in self.finished_spans() if s.name == name]

    def spans(
        self, trace_id: "Optional[int]" = None, include_open: bool = True
    ) -> List[Span]:
        """Finished (and, by default, in-flight) spans, optionally
        narrowed to one trace, in (start, span_id) order."""
        with self._lock:
            out = list(self._finished)
            if include_open:
                out.extend(self._open.values())
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        out.sort(key=lambda s: (s.start, s.span_id))
        return out

    def trace_summaries(self, limit: "Optional[int]" = None) -> List[Dict[str, Any]]:
        """One row per known trace (``trace-list``), oldest first:
        root span name, span/open/error counts, start, and duration so
        far (up to *now* while any span is still open)."""
        now = self._now()
        groups: Dict[int, List[Span]] = {}
        for span in self.spans(include_open=True):
            groups.setdefault(span.trace_id, []).append(span)
        rows = []
        for trace_id, spans in groups.items():
            span_ids = {s.span_id for s in spans}
            roots = [
                s for s in spans
                if s.parent_id is None or s.parent_id not in span_ids
            ]
            root = roots[0] if roots else spans[0]
            start = min(s.start for s in spans)
            open_count = sum(1 for s in spans if not s.finished)
            end = now if open_count else max(s.end for s in spans)
            rows.append({
                "trace_id": trace_id,
                "root": root.name,
                "spans": len(spans),
                "open": open_count,
                "errors": sum(1 for s in spans if s.error is not None),
                "start": start,
                "duration": end - start,
            })
        rows.sort(key=lambda r: (r["start"], r["trace_id"]))
        if limit is not None and limit >= 0:
            rows = rows[-limit:] if limit else []
        return rows

    def export(
        self, trace_id: "Optional[int]" = None, include_open: bool = False
    ) -> List[Dict[str, Any]]:
        """Plain-data span dump (JSON-exportable); in-flight spans have
        ``end``/``duration`` of None when included."""
        return [
            span.to_dict()
            for span in self.spans(trace_id=trace_id, include_open=include_open)
        ]

    def reset(self) -> None:
        """Drop finished spans and zero the counters.  Open spans are
        deliberately *kept*: an in-flight trace keeps accumulating and
        finishes intact after a ``reset-stats``."""
        with self._lock:
            self._finished.clear()
            self.spans_started = 0
            self.spans_failed = 0
            self.spans_orphaned = 0
            self.spans_propagated = 0
