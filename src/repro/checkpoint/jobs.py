"""Cancellable background jobs on the virtual clock.

Models libvirt's ``virDomainJob`` machinery: a driver starts at most
one job per domain (backups here; save/migration report through the
same ``domain_get_job_info`` surface), and callers observe or cancel
it with virDomainJobInfo-style stats.

The engine is deliberately thread-free.  A job's progress is a pure
function of the clock — ``processed = min(total, (now - started) *
bandwidth)`` — so it needs no worker thread, behaves identically over
RPC and in-process, and is exact on the :class:`VirtualClock`.  State
transitions happen lazily: every observation (``info`` / ``cancel`` /
``begin`` / ``fail_active``) first *finalizes* any job whose modelled
end time has passed, firing its completion callback at that point.
A severed transport therefore cannot wedge a job: the daemon fails it
cleanly via :meth:`JobEngine.fail_active`, and the cleanup callback
removes any partial backup volume.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from repro.errors import (
    DaemonCrashError,
    InvalidArgumentError,
    InvalidOperationError,
    ResourceBusyError,
)


class JobPhase:
    """Lifecycle phases of a background job."""

    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"

    TERMINAL = (COMPLETED, CANCELLED, FAILED)


class BackgroundJob:
    """One background job: progress derived from the clock, no thread."""

    __slots__ = (
        "job_id",
        "domain",
        "job_type",
        "operation",
        "phase",
        "started_at",
        "ended_at",
        "total_bytes",
        "bandwidth_bytes_s",
        "processed_bytes",
        "error",
        "extra",
        "on_complete",
        "on_cleanup",
        "on_final",
        "span",
    )

    def __init__(
        self,
        job_id: int,
        domain: str,
        job_type: str,
        operation: str,
        started_at: float,
        total_bytes: int,
        bandwidth_bytes_s: float,
        extra: Optional[Dict[str, Any]] = None,
        on_complete: Optional[Callable[[], None]] = None,
        on_cleanup: Optional[Callable[[], None]] = None,
        on_final: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.job_id = job_id
        self.domain = domain
        self.job_type = job_type
        self.operation = operation
        self.phase = JobPhase.RUNNING
        self.started_at = started_at
        self.ended_at: Optional[float] = None
        self.total_bytes = total_bytes
        self.bandwidth_bytes_s = bandwidth_bytes_s
        self.processed_bytes = 0
        self.error: Optional[str] = None
        self.extra = dict(extra or {})
        self.on_complete = on_complete
        self.on_cleanup = on_cleanup
        self.on_final = on_final
        self.span = None

    @property
    def eta(self) -> float:
        """Modelled completion time (absolute clock reading)."""
        return self.started_at + self.total_bytes / self.bandwidth_bytes_s

    def processed_at(self, now: float) -> int:
        if self.phase != JobPhase.RUNNING:
            return self.processed_bytes
        return min(self.total_bytes, int((now - self.started_at) * self.bandwidth_bytes_s))

    def info(self, now: float) -> Dict[str, Any]:
        """virDomainJobInfo-style stats (plain XDR-safe dict)."""
        processed = self.processed_at(now)
        end = self.ended_at if self.ended_at is not None else now
        info: Dict[str, Any] = {
            "type": self.job_type,
            "job_id": self.job_id,
            "domain": self.domain,
            "operation": self.operation,
            "phase": self.phase,
            "completed": self.phase == JobPhase.COMPLETED,
            "data_total": self.total_bytes,
            "data_processed": processed,
            "data_remaining": max(0, self.total_bytes - processed),
            "bandwidth_mib_s": self.bandwidth_bytes_s / (1024.0 * 1024.0),
            "time_elapsed_s": max(0.0, end - self.started_at),
            "started_at": self.started_at,
        }
        if self.ended_at is not None:
            info["ended_at"] = self.ended_at
        if self.error is not None:
            info["error"] = self.error
        info.update(self.extra)
        return info


class JobEngine:
    """Per-driver registry of background jobs (one active per domain)."""

    def __init__(
        self,
        clock,
        driver: str = "stateful",
        metrics: Optional[Callable[[], Any]] = None,
        tracer: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.clock = clock
        self.driver = driver
        self._metrics = metrics or (lambda: None)
        self._tracer = tracer or (lambda: None)
        self._lock = threading.RLock()
        self._next_id = 1
        self._active: Dict[str, BackgroundJob] = {}
        self._last: Dict[str, BackgroundJob] = {}

    # -- lifecycle -------------------------------------------------------

    def begin(
        self,
        domain: str,
        job_type: str,
        operation: str,
        total_bytes: int,
        bandwidth_bytes_s: float,
        extra: Optional[Dict[str, Any]] = None,
        on_complete: Optional[Callable[[], None]] = None,
        on_cleanup: Optional[Callable[[], None]] = None,
        on_final: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> BackgroundJob:
        if total_bytes < 0:
            raise InvalidArgumentError("job size must be non-negative")
        if bandwidth_bytes_s <= 0:
            raise InvalidArgumentError("job bandwidth must be positive")
        with self._lock:
            self._poll_locked(domain)
            if domain in self._active:
                raise ResourceBusyError(
                    f"domain {domain!r} already has an active "
                    f"{self._active[domain].job_type} job"
                )
            job = BackgroundJob(
                self._next_id,
                domain,
                job_type,
                operation,
                self.clock.now(),
                total_bytes,
                bandwidth_bytes_s,
                extra=extra,
                on_complete=on_complete,
                on_cleanup=on_cleanup,
                on_final=on_final,
            )
            self._next_id += 1
            self._active[domain] = job
        tracer = self._tracer()
        if tracer is not None:
            job.span = tracer.start_span(
                f"job.{job_type}",
                domain=domain,
                operation=operation,
                job_id=job.job_id,
            )
        self._count(job_type, "started")
        self._set_active_gauge()
        return job

    def info(self, domain: str) -> Optional[Dict[str, Any]]:
        """Stats for the active job, or the most recent finished one."""
        with self._lock:
            self._poll_locked(domain)
            job = self._active.get(domain) or self._last.get(domain)
            if job is None:
                return None
            return job.info(self.clock.now())

    def active(self, domain: str) -> Optional[BackgroundJob]:
        with self._lock:
            self._poll_locked(domain)
            return self._active.get(domain)

    def active_domains(self) -> "list[str]":
        """Domains with a job still running (after lazy finalization)."""
        with self._lock:
            for domain in list(self._active):
                self._poll_locked(domain)
            return sorted(self._active)

    def cancel(self, domain: str) -> Dict[str, Any]:
        """Abort the active job; its cleanup callback undoes partial work."""
        with self._lock:
            self._poll_locked(domain)
            job = self._active.get(domain)
            if job is None:
                raise InvalidOperationError(
                    f"domain {domain!r} has no active job to abort"
                )
            now = self.clock.now()
            job.processed_bytes = job.processed_at(now)
            self._finish_locked(job, JobPhase.CANCELLED, now, "cancelled by caller")
            return job.info(now)

    def fail_active(self, domain: str, reason: str) -> bool:
        """Fail the active job (domain stopped, client severed, ...)."""
        with self._lock:
            self._poll_locked(domain)
            job = self._active.get(domain)
            if job is None:
                return False
            now = self.clock.now()
            job.processed_bytes = job.processed_at(now)
            self._finish_locked(job, JobPhase.FAILED, now, reason)
            return True

    def wait(self, domain: str) -> Optional[Dict[str, Any]]:
        """Sleep (virtual time) until the active job finishes."""
        with self._lock:
            self._poll_locked(domain)
            job = self._active.get(domain)
            remaining = 0.0 if job is None else max(0.0, job.eta - self.clock.now())
        if remaining:
            self.clock.sleep(remaining)
        return self.info(domain)

    # -- internals -------------------------------------------------------

    def _poll_locked(self, domain: str) -> None:
        """Finalize the domain's job if its modelled end time passed."""
        job = self._active.get(domain)
        if job is None or job.phase != JobPhase.RUNNING:
            return
        now = self.clock.now()
        if now < job.eta:
            return
        job.processed_bytes = job.total_bytes
        try:
            if job.on_complete is not None:
                job.on_complete()
        except Exception as exc:  # completion failed -> job fails, not wedges
            self._finish_locked(job, JobPhase.FAILED, now, str(exc))
            return
        self._finish_locked(job, JobPhase.COMPLETED, job.eta, None)

    def _finish_locked(
        self, job: BackgroundJob, phase: str, ended_at: float, error: Optional[str]
    ) -> None:
        job.phase = phase
        job.ended_at = ended_at
        if error is not None and phase != JobPhase.COMPLETED:
            job.error = error
        if phase != JobPhase.COMPLETED and job.on_cleanup is not None:
            try:
                job.on_cleanup()
            except DaemonCrashError:
                raise  # an injected daemon crash must not be swallowed
            except Exception:
                pass  # cleanup is best-effort; the job outcome stands
        self._active.pop(job.domain, None)
        self._last[job.domain] = job
        tracer = self._tracer()
        if tracer is not None and job.span is not None:
            tracer.finish_span(job.span, error=job.error)
        self._count(job.job_type, phase)
        self._set_active_gauge()
        self._observe_terminal(job)
        if job.on_final is not None:
            try:
                job.on_final(job.info(ended_at))
            except DaemonCrashError:
                raise  # an injected daemon crash must not be swallowed
            except Exception:
                pass

    # -- observability ---------------------------------------------------

    def _count(self, job_type: str, outcome: str) -> None:
        registry = self._metrics()
        if registry is None:
            return
        registry.counter(
            "domain_jobs_total",
            "Background domain jobs by terminal outcome (or started).",
            ("driver", "type", "outcome"),
        ).labels(driver=self.driver, type=job_type, outcome=outcome).inc()

    def _set_active_gauge(self) -> None:
        registry = self._metrics()
        if registry is None:
            return
        registry.gauge(
            "domain_jobs_active",
            "Background domain jobs currently running.",
            ("driver",),
        ).labels(driver=self.driver).set(float(len(self._active)))

    def _observe_terminal(self, job: BackgroundJob) -> None:
        registry = self._metrics()
        if registry is None:
            return
        duration = max(0.0, (job.ended_at or job.started_at) - job.started_at)
        registry.histogram(
            "domain_job_seconds",
            "Modelled duration of background domain jobs.",
            ("driver", "type"),
        ).labels(driver=self.driver, type=job.job_type).observe(duration)
        registry.counter(
            "backup_bytes_transferred_total",
            "Bytes moved by backup jobs before reaching a terminal phase.",
            ("driver", "operation"),
        ).labels(driver=self.driver, operation=job.operation).inc(
            float(job.processed_bytes)
        )
