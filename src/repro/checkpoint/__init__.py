"""Checkpoint and incremental-backup subsystem.

Reproduces libvirt's ``virDomainCheckpoint`` / ``virDomainBackupBegin``
model: per-disk dirty-block bitmaps (maintained by
:class:`repro.hypervisors.diskimage.ImageStore`), a parent/child
checkpoint tree that freezes those bitmaps, and cancellable background
backup jobs with virDomainJobInfo-style progress on the virtual clock.
"""

from repro.checkpoint.jobs import BackgroundJob, JobEngine, JobPhase
from repro.checkpoint.tree import Checkpoint, CheckpointTree

__all__ = [
    "BackgroundJob",
    "Checkpoint",
    "CheckpointTree",
    "JobEngine",
    "JobPhase",
]
