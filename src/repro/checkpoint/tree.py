"""Domain checkpoint tree.

A checkpoint freezes, per disk, the set of blocks written since its
parent checkpoint (or since the beginning of time for a root).  The
checkpoints of one domain form a tree; the ``current`` pointer names
the leaf new checkpoints descend from, exactly like libvirt's
``virDomainCheckpointCreateXML`` redirecting the current checkpoint.

An incremental backup "since checkpoint X" must copy every block
written after X was taken: the union of the frozen bitmaps of all
checkpoints on the path from ``current`` up to (but excluding) X, plus
the still-active bitmap on each disk.  Deleting a checkpoint folds its
frozen blocks into its children (or into the active bitmap when the
deleted checkpoint was the current leaf) so that union is preserved.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.errors import (
    CheckpointExistsError,
    InvalidArgumentError,
    NoCheckpointError,
)


class Checkpoint:
    """One checkpoint: frozen per-disk bitmaps since the parent."""

    __slots__ = ("name", "parent", "creation_time", "state", "disks", "block_size")

    def __init__(
        self,
        name: str,
        parent: Optional[str],
        creation_time: float,
        state: str,
        disks: Dict[str, FrozenSet[int]],
        block_size: int,
    ) -> None:
        self.name = name
        self.parent = parent
        self.creation_time = creation_time
        self.state = state
        self.disks = dict(disks)
        self.block_size = block_size

    def dirty_bytes(self) -> int:
        return sum(len(blocks) for blocks in self.disks.values()) * self.block_size

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (frozensets become sorted lists)."""
        return {
            "name": self.name,
            "parent": self.parent,
            "creation_time": self.creation_time,
            "state": self.state,
            "disks": {path: sorted(blocks) for path, blocks in self.disks.items()},
            "block_size": self.block_size,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Checkpoint":
        return cls(
            str(data["name"]),
            data["parent"],  # type: ignore[arg-type]
            float(data["creation_time"]),  # type: ignore[arg-type]
            str(data["state"]),
            {
                path: frozenset(blocks)
                for path, blocks in data["disks"].items()  # type: ignore[union-attr]
            },
            int(data["block_size"]),  # type: ignore[arg-type]
        )


class CheckpointTree:
    """All checkpoints of one domain, plus the current-leaf pointer."""

    def __init__(self) -> None:
        self._checkpoints: Dict[str, Checkpoint] = {}
        self.current: Optional[str] = None

    def __len__(self) -> int:
        return len(self._checkpoints)

    def __contains__(self, name: str) -> bool:
        return name in self._checkpoints

    def get(self, name: str) -> Checkpoint:
        checkpoint = self._checkpoints.get(name)
        if checkpoint is None:
            raise NoCheckpointError(f"no checkpoint named {name!r}")
        return checkpoint

    def list_names(self) -> List[str]:
        """Checkpoint names in creation order."""
        return list(self._checkpoints)

    def create(
        self,
        name: str,
        creation_time: float,
        state: str,
        disks: Dict[str, FrozenSet[int]],
        block_size: int,
    ) -> Checkpoint:
        """Add a checkpoint as a child of ``current`` and make it current."""
        if not name or "/" in name:
            raise InvalidArgumentError(f"invalid checkpoint name {name!r}")
        if name in self._checkpoints:
            raise CheckpointExistsError(f"checkpoint {name!r} already exists")
        checkpoint = Checkpoint(
            name, self.current, creation_time, state, disks, block_size
        )
        self._checkpoints[name] = checkpoint
        self.current = name
        return checkpoint

    def children(self, name: str) -> List[Checkpoint]:
        return [c for c in self._checkpoints.values() if c.parent == name]

    def delete(self, name: str) -> Checkpoint:
        """Remove a checkpoint, merging its bitmaps into its children.

        Children are re-parented to the deleted checkpoint's parent and
        their bitmaps grow by the deleted bitmaps (per disk), keeping
        "blocks since X" answers unchanged for every surviving X.  When
        the deleted checkpoint is the current leaf the caller must merge
        the returned checkpoint's bitmaps into the active bitmaps — the
        tree cannot reach the :class:`ImageStore`.
        """
        checkpoint = self.get(name)
        for child in self.children(name):
            child.parent = checkpoint.parent
            for path, blocks in checkpoint.disks.items():
                merged: Set[int] = set(child.disks.get(path, frozenset()))
                merged.update(blocks)
                child.disks[path] = frozenset(merged)
        del self._checkpoints[name]
        if self.current == name:
            self.current = checkpoint.parent
        return checkpoint

    def ancestry(self) -> List[Checkpoint]:
        """The chain from the current leaf up to the root, leaf first."""
        chain: List[Checkpoint] = []
        cursor = self.current
        while cursor is not None:
            checkpoint = self.get(cursor)
            chain.append(checkpoint)
            cursor = checkpoint.parent
        return chain

    def blocks_since(
        self, name: str, disk_paths: Iterable[str]
    ) -> Dict[str, Set[int]]:
        """Frozen blocks written after checkpoint ``name``, per disk.

        Walks from the current leaf up to ``name`` (exclusive), unioning
        each traversed checkpoint's bitmaps.  The caller adds the active
        bitmaps on top.  Raises :class:`NoCheckpointError` if ``name``
        does not exist, :class:`InvalidArgumentError` if it is not an
        ancestor of the current leaf (its history has diverged).
        """
        self.get(name)
        union: Dict[str, Set[int]] = {path: set() for path in disk_paths}
        for checkpoint in self.ancestry():
            if checkpoint.name == name:
                return union
            for path, blocks in checkpoint.disks.items():
                union.setdefault(path, set()).update(blocks)
        raise InvalidArgumentError(
            f"checkpoint {name!r} is not an ancestor of the current checkpoint"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form: checkpoints in creation order plus ``current``."""
        return {
            "checkpoints": [c.to_dict() for c in self._checkpoints.values()],
            "current": self.current,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CheckpointTree":
        tree = cls()
        for entry in data.get("checkpoints", ()):  # type: ignore[union-attr]
            checkpoint = Checkpoint.from_dict(entry)
            tree._checkpoints[checkpoint.name] = checkpoint
        tree.current = data.get("current")  # type: ignore[assignment]
        return tree
