"""XML configuration documents.

Libvirt describes every managed object — domains, networks, storage
pools, volumes, host capabilities — as an XML document with a stable
schema, independent of the hypervisor that will realize it.  This
package implements parsers and formatters for the subset of those
schemas pyvirt supports; every config round-trips
(``parse(cfg.to_xml()) == cfg``).
"""

from repro.xmlconfig.capabilities import Capabilities, GuestCapability, HostCapability
from repro.xmlconfig.domain import (
    ConsoleDevice,
    DiskDevice,
    DomainConfig,
    GraphicsDevice,
    InterfaceDevice,
    OSConfig,
)
from repro.xmlconfig.checkpoint import CheckpointConfig, CheckpointDisk
from repro.xmlconfig.network import DHCPRange, IPConfig, NetworkConfig
from repro.xmlconfig.storage import StoragePoolConfig, VolumeConfig

__all__ = [
    "DomainConfig",
    "OSConfig",
    "DiskDevice",
    "InterfaceDevice",
    "GraphicsDevice",
    "ConsoleDevice",
    "NetworkConfig",
    "IPConfig",
    "DHCPRange",
    "StoragePoolConfig",
    "VolumeConfig",
    "CheckpointConfig",
    "CheckpointDisk",
    "Capabilities",
    "HostCapability",
    "GuestCapability",
]
