"""Host/guest capabilities XML (``<capabilities>`` documents).

Capabilities are how a management tool discovers — uniformly, before
creating anything — what a connection can do: the host's topology and
the guest types (os type × architecture × domain type) the hypervisor
can run.  The paper's feature-matrix table is generated from these.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional, Sequence

from repro.errors import XMLError
from repro.util.xmlutil import (
    child_text,
    element_to_string,
    int_child_text,
    parse_xml,
    require_attr,
    sub_element,
)


class HostCapability:
    """The ``<host>`` block: physical node identity and topology."""

    def __init__(
        self,
        uuid: str,
        arch: str = "x86_64",
        cpu_model: str = "sim-core",
        sockets: int = 1,
        cores: int = 4,
        threads: int = 1,
        memory_kib: int = 16 * 1024 * 1024,
        mhz: int = 2400,
        numa_cells: int = 1,
    ) -> None:
        if sockets < 1 or cores < 1 or threads < 1:
            raise XMLError("host topology counts must be at least 1")
        if memory_kib <= 0:
            raise XMLError("host memory must be positive")
        self.uuid = uuid
        self.arch = arch
        self.cpu_model = cpu_model
        self.sockets = sockets
        self.cores = cores
        self.threads = threads
        self.memory_kib = memory_kib
        self.mhz = mhz
        self.numa_cells = numa_cells

    @property
    def total_cpus(self) -> int:
        return self.sockets * self.cores * self.threads

    def to_element(self) -> ET.Element:
        host = ET.Element("host")
        sub_element(host, "uuid", text=self.uuid)
        cpu = sub_element(host, "cpu")
        sub_element(cpu, "arch", text=self.arch)
        sub_element(cpu, "model", text=self.cpu_model)
        sub_element(
            cpu,
            "topology",
            sockets=str(self.sockets),
            cores=str(self.cores),
            threads=str(self.threads),
        )
        sub_element(cpu, "mhz", text=str(self.mhz))
        sub_element(host, "memory", text=str(self.memory_kib), unit="KiB")
        topology = sub_element(host, "topology")
        cells = sub_element(topology, "cells", num=str(self.numa_cells))
        per_cell_kib = self.memory_kib // self.numa_cells
        for cell_id in range(self.numa_cells):
            cell = sub_element(cells, "cell", id=str(cell_id))
            sub_element(cell, "memory", text=str(per_cell_kib), unit="KiB")
        return host

    @staticmethod
    def from_element(host: ET.Element) -> "HostCapability":
        uuid = child_text(host, "uuid")
        if not uuid:
            raise XMLError("<host> lacks a <uuid>")
        cpu = host.find("cpu")
        if cpu is None:
            raise XMLError("<host> lacks a <cpu> block")
        topo = cpu.find("topology")
        if topo is None:
            raise XMLError("<cpu> lacks a <topology>")
        memory = int_child_text(host, "memory")
        if memory is None:
            raise XMLError("<host> lacks a <memory>")
        topology = host.find("topology")
        numa_cells = 1
        if topology is not None:
            cells = topology.find("cells")
            if cells is not None:
                numa_cells = int(cells.get("num", "1"))
        return HostCapability(
            uuid=uuid,
            arch=child_text(cpu, "arch", "x86_64"),
            cpu_model=child_text(cpu, "model", "sim-core"),
            sockets=int(require_attr(topo, "sockets")),
            cores=int(require_attr(topo, "cores")),
            threads=int(require_attr(topo, "threads")),
            memory_kib=memory,
            mhz=int_child_text(cpu, "mhz", 2400),
            numa_cells=numa_cells,
        )


class GuestCapability:
    """One ``<guest>`` block: a runnable (os type, arch, domain types)."""

    def __init__(
        self,
        os_type: str,
        arch: str,
        domain_types: Sequence[str],
        emulator: Optional[str] = None,
        max_vcpus: int = 64,
    ) -> None:
        if not domain_types:
            raise XMLError("guest capability needs at least one domain type")
        self.os_type = os_type
        self.arch = arch
        self.domain_types = list(domain_types)
        self.emulator = emulator
        self.max_vcpus = max_vcpus

    def to_element(self) -> ET.Element:
        guest = ET.Element("guest")
        sub_element(guest, "os_type", text=self.os_type)
        arch = sub_element(guest, "arch", name=self.arch)
        if self.emulator:
            sub_element(arch, "emulator", text=self.emulator)
        sub_element(arch, "vcpu", max=str(self.max_vcpus))
        for dtype in self.domain_types:
            sub_element(arch, "domain", type=dtype)
        return guest

    @staticmethod
    def from_element(guest: ET.Element) -> "GuestCapability":
        os_type = child_text(guest, "os_type")
        if not os_type:
            raise XMLError("<guest> lacks an <os_type>")
        arch = guest.find("arch")
        if arch is None:
            raise XMLError("<guest> lacks an <arch>")
        vcpu = arch.find("vcpu")
        return GuestCapability(
            os_type=os_type,
            arch=require_attr(arch, "name"),
            domain_types=[require_attr(d, "type") for d in arch.findall("domain")],
            emulator=child_text(arch, "emulator"),
            max_vcpus=int(vcpu.get("max", "64")) if vcpu is not None else 64,
        )


class Capabilities:
    """A complete ``<capabilities>`` document."""

    def __init__(self, host: HostCapability, guests: Optional[List[GuestCapability]] = None) -> None:
        self.host = host
        self.guests = list(guests or [])

    def supports(self, os_type: str, arch: str, domain_type: str) -> bool:
        """True if some guest block can run this (os, arch, type) triple."""
        return any(
            g.os_type == os_type and g.arch == arch and domain_type in g.domain_types
            for g in self.guests
        )

    def domain_types(self) -> List[str]:
        """Every domain type any guest block accepts, deduplicated."""
        seen: List[str] = []
        for guest in self.guests:
            for dtype in guest.domain_types:
                if dtype not in seen:
                    seen.append(dtype)
        return seen

    def to_xml(self, pretty: bool = True) -> str:
        root = ET.Element("capabilities")
        root.append(self.host.to_element())
        for guest in self.guests:
            root.append(guest.to_element())
        return element_to_string(root, pretty=pretty)

    @staticmethod
    def from_xml(text: str) -> "Capabilities":
        root = parse_xml(text)
        if root.tag != "capabilities":
            raise XMLError(f"expected <capabilities> root element, got <{root.tag}>")
        host_elem = root.find("host")
        if host_elem is None:
            raise XMLError("capabilities lack a <host> block")
        return Capabilities(
            host=HostCapability.from_element(host_elem),
            guests=[GuestCapability.from_element(g) for g in root.findall("guest")],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Capabilities):
            return NotImplemented
        return self.to_xml() == other.to_xml()
