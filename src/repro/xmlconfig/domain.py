"""Domain (virtual machine) XML configuration.

Implements the core of libvirt's ``<domain>`` schema: identity, memory
and vCPU sizing, the OS boot block, lifecycle-event actions, features,
and the device tree (disks, network interfaces, graphics, consoles).

The document is hypervisor-agnostic: the same config can be defined on
any driver whose capabilities accept its ``type`` and architecture —
that uniformity is the paper's central claim.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import List, Optional, Sequence

from repro.errors import XMLError
from repro.util import uuidutil
from repro.util.xmlutil import (
    child_text,
    element_to_string,
    int_attr,
    parse_xml,
    require_attr,
    sub_element,
)

#: domain/hypervisor types understood by the library
DOMAIN_TYPES = ("qemu", "kvm", "xen", "lxc", "esx", "test")

#: accepted values for lifecycle-event actions
LIFECYCLE_ACTIONS = ("destroy", "restart", "preserve", "rename-restart")

_NAME_RE = re.compile(r"^[A-Za-z0-9_.+:@-]+$")
_MAC_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$")


class DiskDevice:
    """A ``<disk>`` element: a block device attached to the guest."""

    TYPES = ("file", "block", "volume")
    DEVICES = ("disk", "cdrom", "floppy")
    FORMATS = ("raw", "qcow2", "vmdk")
    BUSES = ("virtio", "ide", "scsi", "sata", "xen")

    def __init__(
        self,
        source: str,
        target_dev: str,
        disk_type: str = "file",
        device: str = "disk",
        driver_format: str = "qcow2",
        target_bus: str = "virtio",
        readonly: bool = False,
        capacity_bytes: int = 0,
    ) -> None:
        if disk_type not in self.TYPES:
            raise XMLError(f"unknown disk type {disk_type!r}")
        if device not in self.DEVICES:
            raise XMLError(f"unknown disk device {device!r}")
        if driver_format not in self.FORMATS:
            raise XMLError(f"unknown disk format {driver_format!r}")
        if target_bus not in self.BUSES:
            raise XMLError(f"unknown disk bus {target_bus!r}")
        if not target_dev:
            raise XMLError("disk target device name must be non-empty")
        self.source = source
        self.target_dev = target_dev
        self.disk_type = disk_type
        self.device = device
        self.driver_format = driver_format
        self.target_bus = target_bus
        self.readonly = readonly
        self.capacity_bytes = capacity_bytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiskDevice):
            return NotImplemented
        return self._key() == other._key()

    def _key(self) -> tuple:
        return (
            self.source,
            self.target_dev,
            self.disk_type,
            self.device,
            self.driver_format,
            self.target_bus,
            self.readonly,
            self.capacity_bytes,
        )

    def to_element(self) -> ET.Element:
        elem = ET.Element("disk", {"type": self.disk_type, "device": self.device})
        sub_element(elem, "driver", name="sim", type=self.driver_format)
        source_attr = "file" if self.disk_type == "file" else (
            "dev" if self.disk_type == "block" else "volume"
        )
        sub_element(elem, "source", **{source_attr: self.source})
        sub_element(elem, "target", dev=self.target_dev, bus=self.target_bus)
        if self.capacity_bytes:
            sub_element(elem, "capacity", text=str(self.capacity_bytes), unit="bytes")
        if self.readonly:
            sub_element(elem, "readonly")
        return elem

    @staticmethod
    def from_element(elem: ET.Element) -> "DiskDevice":
        disk_type = elem.get("type", "file")
        device = elem.get("device", "disk")
        driver = elem.find("driver")
        driver_format = driver.get("type", "qcow2") if driver is not None else "qcow2"
        source_elem = elem.find("source")
        if source_elem is None:
            raise XMLError("disk element lacks <source>")
        source = (
            source_elem.get("file")
            or source_elem.get("dev")
            or source_elem.get("volume")
            or ""
        )
        target = elem.find("target")
        if target is None:
            raise XMLError("disk element lacks <target>")
        capacity_elem = elem.find("capacity")
        capacity = int(capacity_elem.text) if capacity_elem is not None else 0
        return DiskDevice(
            source=source,
            target_dev=require_attr(target, "dev"),
            disk_type=disk_type,
            device=device,
            driver_format=driver_format,
            target_bus=target.get("bus", "virtio"),
            readonly=elem.find("readonly") is not None,
            capacity_bytes=capacity,
        )


class InterfaceDevice:
    """An ``<interface>`` element: a guest network adapter."""

    TYPES = ("network", "bridge", "user")
    MODELS = ("virtio", "e1000", "rtl8139", "netfront")

    def __init__(
        self,
        interface_type: str = "network",
        source: str = "default",
        mac: Optional[str] = None,
        model: str = "virtio",
    ) -> None:
        if interface_type not in self.TYPES:
            raise XMLError(f"unknown interface type {interface_type!r}")
        if model not in self.MODELS:
            raise XMLError(f"unknown interface model {model!r}")
        if mac is not None and not _MAC_RE.match(mac.lower()):
            raise XMLError(f"malformed MAC address {mac!r}")
        self.interface_type = interface_type
        # user-mode networking has no source element; normalize so the
        # document round-trips
        self.source = "default" if interface_type == "user" else source
        self.mac = mac.lower() if mac else None
        self.model = model

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InterfaceDevice):
            return NotImplemented
        return (self.interface_type, self.source, self.mac, self.model) == (
            other.interface_type,
            other.source,
            other.mac,
            other.model,
        )

    def to_element(self) -> ET.Element:
        elem = ET.Element("interface", {"type": self.interface_type})
        if self.mac:
            sub_element(elem, "mac", address=self.mac)
        source_attr = "network" if self.interface_type == "network" else "bridge"
        if self.interface_type != "user":
            sub_element(elem, "source", **{source_attr: self.source})
        sub_element(elem, "model", type=self.model)
        return elem

    @staticmethod
    def from_element(elem: ET.Element) -> "InterfaceDevice":
        interface_type = elem.get("type", "network")
        mac_elem = elem.find("mac")
        mac = mac_elem.get("address") if mac_elem is not None else None
        source_elem = elem.find("source")
        if source_elem is not None:
            source = source_elem.get("network") or source_elem.get("bridge") or "default"
        else:
            source = "default"
        model_elem = elem.find("model")
        model = model_elem.get("type", "virtio") if model_elem is not None else "virtio"
        return InterfaceDevice(interface_type, source, mac, model)


class GraphicsDevice:
    """A ``<graphics>`` element (VNC/SPICE display)."""

    TYPES = ("vnc", "spice", "sdl")

    def __init__(self, graphics_type: str = "vnc", port: int = -1, autoport: bool = True) -> None:
        if graphics_type not in self.TYPES:
            raise XMLError(f"unknown graphics type {graphics_type!r}")
        self.graphics_type = graphics_type
        self.port = port
        self.autoport = autoport

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphicsDevice):
            return NotImplemented
        return (self.graphics_type, self.port, self.autoport) == (
            other.graphics_type,
            other.port,
            other.autoport,
        )

    def to_element(self) -> ET.Element:
        return ET.Element(
            "graphics",
            {
                "type": self.graphics_type,
                "port": str(self.port),
                "autoport": "yes" if self.autoport else "no",
            },
        )

    @staticmethod
    def from_element(elem: ET.Element) -> "GraphicsDevice":
        return GraphicsDevice(
            graphics_type=elem.get("type", "vnc"),
            port=int_attr(elem, "port", -1),
            autoport=elem.get("autoport", "yes") == "yes",
        )


class ConsoleDevice:
    """A ``<console>`` element (serial console endpoint)."""

    TYPES = ("pty", "file")

    def __init__(self, console_type: str = "pty", target_port: int = 0) -> None:
        if console_type not in self.TYPES:
            raise XMLError(f"unknown console type {console_type!r}")
        self.console_type = console_type
        self.target_port = target_port

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConsoleDevice):
            return NotImplemented
        return (self.console_type, self.target_port) == (
            other.console_type,
            other.target_port,
        )

    def to_element(self) -> ET.Element:
        elem = ET.Element("console", {"type": self.console_type})
        sub_element(elem, "target", port=str(self.target_port))
        return elem

    @staticmethod
    def from_element(elem: ET.Element) -> "ConsoleDevice":
        target = elem.find("target")
        port = int_attr(target, "port", 0) if target is not None else 0
        return ConsoleDevice(elem.get("type", "pty"), port)


class OSConfig:
    """The ``<os>`` boot block."""

    OS_TYPES = ("hvm", "xen", "exe")
    ARCHES = ("x86_64", "i686", "aarch64")
    BOOT_DEVICES = ("hd", "cdrom", "network", "fd")

    def __init__(
        self,
        os_type: str = "hvm",
        arch: str = "x86_64",
        boot: Sequence[str] = ("hd",),
        init: Optional[str] = None,
    ) -> None:
        if os_type not in self.OS_TYPES:
            raise XMLError(f"unknown os type {os_type!r}")
        if arch not in self.ARCHES:
            raise XMLError(f"unknown architecture {arch!r}")
        for dev in boot:
            if dev not in self.BOOT_DEVICES:
                raise XMLError(f"unknown boot device {dev!r}")
        self.os_type = os_type
        self.arch = arch
        self.boot = list(boot)
        self.init = init  # container init binary (os_type == "exe")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OSConfig):
            return NotImplemented
        return (self.os_type, self.arch, self.boot, self.init) == (
            other.os_type,
            other.arch,
            other.boot,
            other.init,
        )

    def to_element(self) -> ET.Element:
        elem = ET.Element("os")
        sub_element(elem, "type", text=self.os_type, arch=self.arch)
        for dev in self.boot:
            sub_element(elem, "boot", dev=dev)
        if self.init:
            sub_element(elem, "init", text=self.init)
        return elem

    @staticmethod
    def from_element(elem: ET.Element) -> "OSConfig":
        type_elem = elem.find("type")
        if type_elem is None or not type_elem.text:
            raise XMLError("<os> lacks a <type> element")
        boot = [require_attr(b, "dev") for b in elem.findall("boot")]
        return OSConfig(
            os_type=type_elem.text.strip(),
            arch=type_elem.get("arch", "x86_64"),
            boot=boot or ["hd"],
            init=child_text(elem, "init"),
        )


class DomainConfig:
    """A complete, validated ``<domain>`` document."""

    def __init__(
        self,
        name: str,
        domain_type: str = "test",
        uuid: Optional[str] = None,
        memory_kib: int = 1024 * 1024,
        current_memory_kib: Optional[int] = None,
        vcpus: int = 1,
        max_vcpus: Optional[int] = None,
        os: Optional[OSConfig] = None,
        disks: Optional[List[DiskDevice]] = None,
        interfaces: Optional[List[InterfaceDevice]] = None,
        graphics: Optional[List[GraphicsDevice]] = None,
        consoles: Optional[List[ConsoleDevice]] = None,
        features: Optional[List[str]] = None,
        on_poweroff: str = "destroy",
        on_reboot: str = "restart",
        on_crash: str = "destroy",
    ) -> None:
        self.name = name
        self.domain_type = domain_type
        self.uuid = uuidutil.normalize_uuid(uuid) if uuid else None
        self.memory_kib = memory_kib
        self.current_memory_kib = (
            current_memory_kib if current_memory_kib is not None else memory_kib
        )
        self.vcpus = vcpus
        self.max_vcpus = max_vcpus if max_vcpus is not None else vcpus
        self.os = os or OSConfig()
        self.disks = list(disks or [])
        self.interfaces = list(interfaces or [])
        self.graphics = list(graphics or [])
        self.consoles = list(consoles or [])
        self.features = list(features or [])
        self.on_poweroff = on_poweroff
        self.on_reboot = on_reboot
        self.on_crash = on_crash
        self.validate()

    # -- validation ---------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`XMLError` if the document is semantically invalid."""
        if not self.name or not _NAME_RE.match(self.name):
            raise XMLError(f"invalid domain name {self.name!r}")
        if self.domain_type not in DOMAIN_TYPES:
            raise XMLError(f"unknown domain type {self.domain_type!r}")
        if self.memory_kib <= 0:
            raise XMLError(f"domain memory must be positive, got {self.memory_kib}")
        if not 0 < self.current_memory_kib <= self.memory_kib:
            raise XMLError(
                f"current memory {self.current_memory_kib} out of range "
                f"(0, {self.memory_kib}]"
            )
        if self.vcpus < 1:
            raise XMLError(f"domain needs at least 1 vCPU, got {self.vcpus}")
        if self.max_vcpus < self.vcpus:
            raise XMLError(
                f"max vcpus {self.max_vcpus} below current vcpus {self.vcpus}"
            )
        for action in (self.on_poweroff, self.on_reboot, self.on_crash):
            if action not in LIFECYCLE_ACTIONS:
                raise XMLError(f"unknown lifecycle action {action!r}")
        targets = [d.target_dev for d in self.disks]
        if len(targets) != len(set(targets)):
            raise XMLError(f"duplicate disk target devices in {targets}")
        macs = [i.mac for i in self.interfaces if i.mac]
        if len(macs) != len(set(macs)):
            raise XMLError(f"duplicate interface MAC addresses in {macs}")
        if self.domain_type == "lxc" and self.os.os_type != "exe":
            raise XMLError("lxc domains require os type 'exe'")
        if self.domain_type in ("qemu", "kvm", "esx", "test") and self.os.os_type != "hvm":
            raise XMLError(f"{self.domain_type} domains require os type 'hvm'")

    # -- equality -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DomainConfig):
            return NotImplemented
        return self.to_xml() == other.to_xml()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DomainConfig(name={self.name!r}, type={self.domain_type!r})"

    # -- serialization --------------------------------------------------

    def to_xml(self, pretty: bool = True) -> str:
        """Format the config as a ``<domain>`` document."""
        root = ET.Element("domain", {"type": self.domain_type})
        sub_element(root, "name", text=self.name)
        if self.uuid:
            sub_element(root, "uuid", text=self.uuid)
        sub_element(root, "memory", text=str(self.memory_kib), unit="KiB")
        sub_element(
            root, "currentMemory", text=str(self.current_memory_kib), unit="KiB"
        )
        sub_element(root, "vcpu", text=str(self.max_vcpus), current=str(self.vcpus))
        root.append(self.os.to_element())
        if self.features:
            features = sub_element(root, "features")
            for feature in self.features:
                sub_element(features, feature)
        sub_element(root, "on_poweroff", text=self.on_poweroff)
        sub_element(root, "on_reboot", text=self.on_reboot)
        sub_element(root, "on_crash", text=self.on_crash)
        devices = sub_element(root, "devices")
        for disk in self.disks:
            devices.append(disk.to_element())
        for iface in self.interfaces:
            devices.append(iface.to_element())
        for gfx in self.graphics:
            devices.append(gfx.to_element())
        for console in self.consoles:
            devices.append(console.to_element())
        return element_to_string(root, pretty=pretty)

    @staticmethod
    def from_xml(text: str) -> "DomainConfig":
        """Parse and validate a ``<domain>`` document."""
        root = parse_xml(text)
        if root.tag != "domain":
            raise XMLError(f"expected <domain> root element, got <{root.tag}>")
        domain_type = require_attr(root, "type")
        name = child_text(root, "name")
        if not name:
            raise XMLError("domain lacks a <name>")
        memory = _parse_memory_element(root, "memory")
        if memory is None:
            raise XMLError("domain lacks a <memory> element")
        current = _parse_memory_element(root, "currentMemory")
        vcpu_elem = root.find("vcpu")
        if vcpu_elem is not None and vcpu_elem.text:
            max_vcpus = int(vcpu_elem.text)
            vcpus = int_attr(vcpu_elem, "current", max_vcpus)
        else:
            max_vcpus = vcpus = 1
        os_elem = root.find("os")
        os_config = OSConfig.from_element(os_elem) if os_elem is not None else OSConfig()
        features_elem = root.find("features")
        features = (
            [child.tag for child in features_elem] if features_elem is not None else []
        )
        devices_elem = root.find("devices")
        disks: List[DiskDevice] = []
        interfaces: List[InterfaceDevice] = []
        graphics: List[GraphicsDevice] = []
        consoles: List[ConsoleDevice] = []
        if devices_elem is not None:
            disks = [DiskDevice.from_element(e) for e in devices_elem.findall("disk")]
            interfaces = [
                InterfaceDevice.from_element(e)
                for e in devices_elem.findall("interface")
            ]
            graphics = [
                GraphicsDevice.from_element(e) for e in devices_elem.findall("graphics")
            ]
            consoles = [
                ConsoleDevice.from_element(e) for e in devices_elem.findall("console")
            ]
        return DomainConfig(
            name=name,
            domain_type=domain_type,
            uuid=child_text(root, "uuid"),
            memory_kib=memory,
            current_memory_kib=current,
            vcpus=vcpus,
            max_vcpus=max_vcpus,
            os=os_config,
            disks=disks,
            interfaces=interfaces,
            graphics=graphics,
            consoles=consoles,
            features=features,
            on_poweroff=child_text(root, "on_poweroff", "destroy"),
            on_reboot=child_text(root, "on_reboot", "restart"),
            on_crash=child_text(root, "on_crash", "destroy"),
        )

    def copy(self, **overrides: object) -> "DomainConfig":
        """A modified copy (used by migration/rename paths)."""
        config = DomainConfig.from_xml(self.to_xml())
        for key, value in overrides.items():
            if not hasattr(config, key):
                raise XMLError(f"unknown domain config field {key!r}")
            setattr(config, key, value)
        config.validate()
        return config


_MEMORY_UNIT_KIB = {
    "b": 1.0 / 1024,
    "bytes": 1.0 / 1024,
    "kib": 1,
    "k": 1,
    "mib": 1024,
    "m": 1024,
    "gib": 1024**2,
    "g": 1024**2,
    "tib": 1024**3,
    "t": 1024**3,
}


def _parse_memory_element(root: ET.Element, tag: str) -> Optional[int]:
    """Read a ``<memory unit=...>`` style element into KiB."""
    elem = root.find(tag)
    if elem is None or not elem.text:
        return None
    unit = elem.get("unit", "KiB").lower()
    if unit not in _MEMORY_UNIT_KIB:
        raise XMLError(f"unknown memory unit {unit!r} on <{tag}>")
    try:
        value = int(elem.text.strip())
    except ValueError as exc:
        raise XMLError(f"<{tag}> must hold an integer, got {elem.text!r}") from exc
    return int(value * _MEMORY_UNIT_KIB[unit])
