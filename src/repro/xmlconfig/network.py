"""Virtual network XML configuration (``<network>`` documents)."""

from __future__ import annotations

import ipaddress
import re
import xml.etree.ElementTree as ET
from typing import Optional

from repro.errors import XMLError
from repro.util import uuidutil
from repro.util.xmlutil import (
    child_text,
    element_to_string,
    parse_xml,
    require_attr,
    sub_element,
)

_NAME_RE = re.compile(r"^[A-Za-z0-9_.+:@-]+$")

FORWARD_MODES = ("nat", "route", "bridge", "isolated")


def _check_ip(text: str, what: str) -> str:
    try:
        return str(ipaddress.ip_address(text))
    except ValueError as exc:
        raise XMLError(f"invalid {what} address {text!r}") from exc


class DHCPRange:
    """A DHCP lease range inside a network's IP block."""

    def __init__(self, start: str, end: str) -> None:
        self.start = _check_ip(start, "dhcp range start")
        self.end = _check_ip(end, "dhcp range end")
        if ipaddress.ip_address(self.start) > ipaddress.ip_address(self.end):
            raise XMLError(f"dhcp range start {start} above end {end}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DHCPRange):
            return NotImplemented
        return (self.start, self.end) == (other.start, other.end)

    def size(self) -> int:
        """Number of addresses in the range (inclusive)."""
        return (
            int(ipaddress.ip_address(self.end))
            - int(ipaddress.ip_address(self.start))
            + 1
        )


class IPConfig:
    """The ``<ip>`` element: the host-side address plus optional DHCP."""

    def __init__(self, address: str, netmask: str, dhcp: Optional[DHCPRange] = None) -> None:
        self.address = _check_ip(address, "network")
        self.netmask = _check_ip(netmask, "netmask")
        try:
            self.interface = ipaddress.ip_interface(f"{self.address}/{self.netmask}")
        except ValueError as exc:
            raise XMLError(f"invalid netmask {netmask!r}") from exc
        self.dhcp = dhcp
        if dhcp is not None:
            network = self.interface.network
            for bound in (dhcp.start, dhcp.end):
                if ipaddress.ip_address(bound) not in network:
                    raise XMLError(
                        f"dhcp bound {bound} outside network {network.with_prefixlen}"
                    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPConfig):
            return NotImplemented
        return (self.address, self.netmask, self.dhcp) == (
            other.address,
            other.netmask,
            other.dhcp,
        )


class NetworkConfig:
    """A complete, validated ``<network>`` document."""

    def __init__(
        self,
        name: str,
        uuid: Optional[str] = None,
        bridge: Optional[str] = None,
        forward_mode: str = "nat",
        ip: Optional[IPConfig] = None,
    ) -> None:
        if not name or not _NAME_RE.match(name):
            raise XMLError(f"invalid network name {name!r}")
        if forward_mode not in FORWARD_MODES:
            raise XMLError(f"unknown forward mode {forward_mode!r}")
        self.name = name
        self.uuid = uuidutil.normalize_uuid(uuid) if uuid else None
        self.bridge = bridge or f"virbr-{name}"
        self.forward_mode = forward_mode
        self.ip = ip

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkConfig):
            return NotImplemented
        return self.to_xml() == other.to_xml()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkConfig(name={self.name!r}, mode={self.forward_mode!r})"

    def to_xml(self, pretty: bool = True) -> str:
        root = ET.Element("network")
        sub_element(root, "name", text=self.name)
        if self.uuid:
            sub_element(root, "uuid", text=self.uuid)
        if self.forward_mode != "isolated":
            sub_element(root, "forward", mode=self.forward_mode)
        sub_element(root, "bridge", name=self.bridge)
        if self.ip is not None:
            ip_elem = sub_element(
                root, "ip", address=self.ip.address, netmask=self.ip.netmask
            )
            if self.ip.dhcp is not None:
                dhcp_elem = sub_element(ip_elem, "dhcp")
                sub_element(
                    dhcp_elem, "range", start=self.ip.dhcp.start, end=self.ip.dhcp.end
                )
        return element_to_string(root, pretty=pretty)

    @staticmethod
    def from_xml(text: str) -> "NetworkConfig":
        root = parse_xml(text)
        if root.tag != "network":
            raise XMLError(f"expected <network> root element, got <{root.tag}>")
        name = child_text(root, "name")
        if not name:
            raise XMLError("network lacks a <name>")
        forward = root.find("forward")
        forward_mode = forward.get("mode", "nat") if forward is not None else "isolated"
        bridge_elem = root.find("bridge")
        bridge = bridge_elem.get("name") if bridge_elem is not None else None
        ip_elem = root.find("ip")
        ip = None
        if ip_elem is not None:
            dhcp = None
            dhcp_elem = ip_elem.find("dhcp")
            if dhcp_elem is not None:
                range_elem = dhcp_elem.find("range")
                if range_elem is None:
                    raise XMLError("<dhcp> lacks a <range>")
                dhcp = DHCPRange(
                    require_attr(range_elem, "start"), require_attr(range_elem, "end")
                )
            ip = IPConfig(
                require_attr(ip_elem, "address"),
                require_attr(ip_elem, "netmask"),
                dhcp,
            )
        return NetworkConfig(
            name=name,
            uuid=child_text(root, "uuid"),
            bridge=bridge,
            forward_mode=forward_mode,
            ip=ip,
        )
