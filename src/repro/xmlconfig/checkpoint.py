"""Domain checkpoint XML configuration.

Mirrors libvirt's ``<domaincheckpoint>`` document: the checkpoint
name, its parent, creation time, and one ``<disk>`` element per disk
recording the frozen bitmap's statistics.  Drivers emit this shape
from ``checkpoint_get_xml_desc``; :meth:`CheckpointConfig.from_xml`
round-trips it for tooling and tests.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import List, Optional

from repro.errors import XMLError
from repro.util.xmlutil import (
    child_text,
    element_to_string,
    parse_xml,
    require_attr,
    sub_element,
)

_NAME_RE = re.compile(r"^[A-Za-z0-9_.+:@-]+$")


class CheckpointDisk:
    """One ``<disk>`` row: which image, and how much its bitmap froze."""

    def __init__(
        self,
        name: str,
        bitmap: str,
        dirty_blocks: int = 0,
        block_size: int = 0,
    ) -> None:
        if not name:
            raise XMLError("checkpoint disk needs a name")
        self.name = name
        self.bitmap = bitmap
        self.dirty_blocks = dirty_blocks
        self.block_size = block_size

    def to_element(self) -> ET.Element:
        return ET.Element(
            "disk",
            {
                "name": self.name,
                "checkpoint": "bitmap",
                "bitmap": self.bitmap,
                "dirty-blocks": str(self.dirty_blocks),
                "block-size": str(self.block_size),
            },
        )

    @staticmethod
    def from_element(elem: ET.Element) -> "CheckpointDisk":
        return CheckpointDisk(
            require_attr(elem, "name"),
            elem.get("bitmap", ""),
            int(elem.get("dirty-blocks", "0")),
            int(elem.get("block-size", "0")),
        )


class CheckpointConfig:
    """A ``<domaincheckpoint>`` document."""

    def __init__(
        self,
        name: str,
        parent: Optional[str] = None,
        creation_time: float = 0.0,
        state: str = "running",
        disks: Optional[List[CheckpointDisk]] = None,
        domain: Optional[str] = None,
    ) -> None:
        if not name or not _NAME_RE.match(name):
            raise XMLError(f"invalid checkpoint name {name!r}")
        self.name = name
        self.parent = parent
        self.creation_time = creation_time
        self.state = state
        self.disks = list(disks or [])
        self.domain = domain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointConfig(name={self.name!r}, parent={self.parent!r})"

    def to_xml(self, pretty: bool = True) -> str:
        root = ET.Element("domaincheckpoint")
        sub_element(root, "name", text=self.name)
        if self.parent:
            parent = sub_element(root, "parent")
            sub_element(parent, "name", text=self.parent)
        sub_element(root, "creationTime", text=str(int(self.creation_time)))
        sub_element(root, "state", text=self.state)
        if self.domain:
            sub_element(root, "domain", text=self.domain)
        disks = sub_element(root, "disks")
        for disk in self.disks:
            disks.append(disk.to_element())
        return element_to_string(root, pretty=pretty)

    @staticmethod
    def from_xml(text: str) -> "CheckpointConfig":
        root = parse_xml(text)
        if root.tag != "domaincheckpoint":
            raise XMLError(f"expected <domaincheckpoint>, got <{root.tag}>")
        name = child_text(root, "name")
        if not name:
            raise XMLError("<domaincheckpoint> needs a <name>")
        parent = None
        parent_elem = root.find("parent")
        if parent_elem is not None:
            parent = child_text(parent_elem, "name")
        creation = float(child_text(root, "creationTime") or 0)
        state = child_text(root, "state") or "running"
        domain = child_text(root, "domain")
        disks = [
            CheckpointDisk.from_element(elem) for elem in root.findall("./disks/disk")
        ]
        return CheckpointConfig(name, parent, creation, state, disks, domain)

    @staticmethod
    def from_tree_checkpoint(checkpoint, domain: Optional[str] = None) -> "CheckpointConfig":
        """Build the XML view of a :class:`repro.checkpoint.Checkpoint`."""
        disks = [
            CheckpointDisk(
                path,
                bitmap=checkpoint.name,
                dirty_blocks=len(blocks),
                block_size=checkpoint.block_size,
            )
            for path, blocks in sorted(checkpoint.disks.items())
        ]
        return CheckpointConfig(
            checkpoint.name,
            checkpoint.parent,
            checkpoint.creation_time,
            checkpoint.state,
            disks,
            domain,
        )
