"""Storage pool and volume XML configuration."""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Optional

from repro.errors import XMLError
from repro.util import uuidutil
from repro.util.xmlutil import (
    child_text,
    element_to_string,
    parse_xml,
    require_attr,
    sub_element,
)

_NAME_RE = re.compile(r"^[A-Za-z0-9_.+:@-]+$")

POOL_TYPES = ("dir", "fs", "logical", "netfs")
VOLUME_FORMATS = ("raw", "qcow2", "vmdk")


class StoragePoolConfig:
    """A ``<pool>`` document: a container for storage volumes."""

    def __init__(
        self,
        name: str,
        pool_type: str = "dir",
        uuid: Optional[str] = None,
        target_path: Optional[str] = None,
        capacity_bytes: int = 100 * 1024**3,
    ) -> None:
        if not name or not _NAME_RE.match(name):
            raise XMLError(f"invalid pool name {name!r}")
        if pool_type not in POOL_TYPES:
            raise XMLError(f"unknown pool type {pool_type!r}")
        if capacity_bytes <= 0:
            raise XMLError(f"pool capacity must be positive, got {capacity_bytes}")
        self.name = name
        self.pool_type = pool_type
        self.uuid = uuidutil.normalize_uuid(uuid) if uuid else None
        self.target_path = target_path or f"/var/lib/pyvirt/images/{name}"
        if not self.target_path.startswith("/"):
            raise XMLError(f"pool target path must be absolute, got {target_path!r}")
        self.capacity_bytes = capacity_bytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StoragePoolConfig):
            return NotImplemented
        return self.to_xml() == other.to_xml()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoragePoolConfig(name={self.name!r}, type={self.pool_type!r})"

    def to_xml(self, pretty: bool = True) -> str:
        root = ET.Element("pool", {"type": self.pool_type})
        sub_element(root, "name", text=self.name)
        if self.uuid:
            sub_element(root, "uuid", text=self.uuid)
        sub_element(root, "capacity", text=str(self.capacity_bytes), unit="bytes")
        target = sub_element(root, "target")
        sub_element(target, "path", text=self.target_path)
        return element_to_string(root, pretty=pretty)

    @staticmethod
    def from_xml(text: str) -> "StoragePoolConfig":
        root = parse_xml(text)
        if root.tag != "pool":
            raise XMLError(f"expected <pool> root element, got <{root.tag}>")
        name = child_text(root, "name")
        if not name:
            raise XMLError("pool lacks a <name>")
        capacity_text = child_text(root, "capacity", str(100 * 1024**3))
        target = root.find("target")
        target_path = child_text(target, "path") if target is not None else None
        return StoragePoolConfig(
            name=name,
            pool_type=require_attr(root, "type"),
            uuid=child_text(root, "uuid"),
            target_path=target_path,
            capacity_bytes=int(capacity_text),
        )


class VolumeConfig:
    """A ``<volume>`` document: one image inside a pool."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        allocation_bytes: Optional[int] = None,
        volume_format: str = "qcow2",
        backing_store: Optional[str] = None,
    ) -> None:
        if not name or "/" in name:
            raise XMLError(f"invalid volume name {name!r}")
        if capacity_bytes <= 0:
            raise XMLError(f"volume capacity must be positive, got {capacity_bytes}")
        if volume_format not in VOLUME_FORMATS:
            raise XMLError(f"unknown volume format {volume_format!r}")
        allocation = allocation_bytes if allocation_bytes is not None else (
            0 if volume_format == "qcow2" else capacity_bytes
        )
        if not 0 <= allocation <= capacity_bytes:
            raise XMLError(
                f"volume allocation {allocation} out of range [0, {capacity_bytes}]"
            )
        if backing_store is not None and volume_format == "raw":
            raise XMLError("raw volumes cannot have a backing store")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.allocation_bytes = allocation
        self.volume_format = volume_format
        self.backing_store = backing_store

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VolumeConfig):
            return NotImplemented
        return self.to_xml() == other.to_xml()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VolumeConfig(name={self.name!r}, format={self.volume_format!r})"

    def to_xml(self, pretty: bool = True) -> str:
        root = ET.Element("volume")
        sub_element(root, "name", text=self.name)
        sub_element(root, "capacity", text=str(self.capacity_bytes), unit="bytes")
        sub_element(root, "allocation", text=str(self.allocation_bytes), unit="bytes")
        target = sub_element(root, "target")
        sub_element(target, "format", type=self.volume_format)
        if self.backing_store:
            backing = sub_element(root, "backingStore")
            sub_element(backing, "path", text=self.backing_store)
        return element_to_string(root, pretty=pretty)

    @staticmethod
    def from_xml(text: str) -> "VolumeConfig":
        root = parse_xml(text)
        if root.tag != "volume":
            raise XMLError(f"expected <volume> root element, got <{root.tag}>")
        name = child_text(root, "name")
        if not name:
            raise XMLError("volume lacks a <name>")
        capacity = child_text(root, "capacity")
        if capacity is None:
            raise XMLError("volume lacks a <capacity>")
        allocation = child_text(root, "allocation")
        target = root.find("target")
        volume_format = "qcow2"
        if target is not None:
            format_elem = target.find("format")
            if format_elem is not None:
                volume_format = format_elem.get("type", "qcow2")
        backing_elem = root.find("backingStore")
        backing = child_text(backing_elem, "path") if backing_elem is not None else None
        return VolumeConfig(
            name=name,
            capacity_bytes=int(capacity),
            allocation_bytes=int(allocation) if allocation is not None else None,
            volume_format=volume_format,
            backing_store=backing,
        )
