"""Simulated QEMU/KVM backend with a QMP-style monitor protocol.

The native control interface is modelled after QMP: a JSON
command/response protocol to each emulator process, with the mandatory
capability negotiation handshake.  The libvirt qemu driver drives
guests exclusively through this monitor — exactly what the real one
does — so the "native vs uniform API" comparison exercises the same
code path the paper's overhead measurement did.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, List, Optional

from repro.errors import NoDomainError
from repro.hypervisors.base import KIB_PER_GIB, Backend, GuestRuntime, RunState
from repro.util import uuidutil
from repro.xmlconfig.domain import DomainConfig


class QmpError(Exception):
    """A QMP-level error reply (``{"error": ...}``), raised client-side."""

    def __init__(self, error_class: str, desc: str) -> None:
        super().__init__(f"{error_class}: {desc}")
        self.error_class = error_class
        self.desc = desc


class QmpMonitor:
    """The monitor socket of one emulator process.

    ``execute`` serializes the command to its JSON wire form (really —
    the bytes are produced and parsed, so message size effects are
    honest), charges the native-call latency, and dispatches into the
    process.
    """

    def __init__(self, process: "SimQemuProcess") -> None:
        self._process = process
        self._negotiated = False
        self.bytes_sent = 0
        self.bytes_received = 0

    def greeting(self) -> Dict[str, Any]:
        """The banner QMP emits on connect."""
        return {"QMP": {"version": {"qemu": {"major": 0, "minor": 12}}, "capabilities": []}}

    def execute(self, command: str, **arguments: Any) -> Any:
        """Run one QMP command; returns the ``return`` payload.

        Raises :class:`QmpError` when the process answers with an error
        object, mirroring how a real QMP client surfaces failures.
        """
        wire = json.dumps({"execute": command, "arguments": arguments})
        self.bytes_sent += len(wire)
        backend = self._process.backend
        backend._charge("native_call")
        if not self._negotiated and command != "qmp_capabilities":
            reply: Dict[str, Any] = {
                "error": {
                    "class": "CommandNotFound",
                    "desc": "capability negotiation not complete",
                }
            }
        else:
            request = json.loads(wire)
            reply = self._process.handle_qmp(
                request["execute"], request.get("arguments", {})
            )
            if command == "qmp_capabilities" and "error" not in reply:
                self._negotiated = True
        raw_reply = json.dumps(reply)
        self.bytes_received += len(raw_reply)
        parsed = json.loads(raw_reply)
        if "error" in parsed:
            raise QmpError(parsed["error"]["class"], parsed["error"]["desc"])
        return parsed.get("return")


class SimQemuProcess:
    """One emulator process: pid, command line, guest runtime, monitor."""

    def __init__(self, backend: "QemuBackend", config: DomainConfig, pid: int) -> None:
        self.backend = backend
        self.config = config
        self.pid = pid
        self.alive = True
        uuid = config.uuid or uuidutil.generate_uuid(backend.rng)
        self.runtime = GuestRuntime(
            name=config.name,
            uuid=uuid,
            vcpus=config.vcpus,
            memory_kib=config.current_memory_kib,
            clock=backend.clock,
            utilization=backend._new_utilization(),
        )
        self.monitor = QmpMonitor(self)

    def command_line(self) -> List[str]:
        """The argv a real libvirt would exec (introspection/debugging)."""
        argv = [
            "/usr/bin/sim-qemu",
            "-name",
            self.config.name,
            "-m",
            str(self.config.current_memory_kib // 1024),
            "-smp",
            str(self.config.vcpus),
            "-uuid",
            self.runtime.uuid,
        ]
        if self.backend.kind == "kvm":
            argv.append("-enable-kvm")
        for disk in self.config.disks:
            argv += ["-drive", f"file={disk.source},if={disk.target_bus}"]
        for iface in self.config.interfaces:
            argv += ["-net", f"nic,model={iface.model}"]
        argv += ["-qmp", f"unix:/var/run/sim-qemu/{self.config.name}.sock"]
        return argv

    # -- QMP command dispatch -------------------------------------------

    def handle_qmp(self, command: str, arguments: Dict[str, Any]) -> Dict[str, Any]:
        if not self.alive:
            return _qmp_error("GenericError", "emulator process has exited")
        handler = getattr(self, f"_cmd_{command.replace('-', '_')}", None)
        if handler is None:
            return _qmp_error("CommandNotFound", f"command {command!r} not found")
        try:
            return {"return": handler(arguments)}
        except _QmpFault as fault:
            return _qmp_error(fault.error_class, fault.desc)

    def _cmd_qmp_capabilities(self, _args: Dict[str, Any]) -> Dict[str, Any]:
        return {}

    def _cmd_query_status(self, _args: Dict[str, Any]) -> Dict[str, Any]:
        self.backend._charge("query")
        status = {
            RunState.RUNNING: "running",
            RunState.PAUSED: "paused",
            RunState.SHUTOFF: "shutdown",
            RunState.CRASHED: "internal-error",
        }[self.runtime.state]
        return {"status": status, "running": self.runtime.state == RunState.RUNNING}

    def _cmd_stop(self, _args: Dict[str, Any]) -> Dict[str, Any]:
        self.backend._check_injected_failure(self.config.name)
        if self.runtime.state == RunState.PAUSED:
            return {}
        self._require(RunState.RUNNING)
        self.backend._charge("suspend")
        self.runtime.transition(RunState.PAUSED)
        return {}

    def _cmd_cont(self, _args: Dict[str, Any]) -> Dict[str, Any]:
        self.backend._check_injected_failure(self.config.name)
        if self.runtime.state == RunState.RUNNING:
            return {}
        self._require(RunState.PAUSED)
        self.backend._charge("resume")
        self.runtime.transition(RunState.RUNNING)
        return {}

    def _cmd_system_powerdown(self, _args: Dict[str, Any]) -> Dict[str, Any]:
        self.backend._check_injected_failure(self.config.name)
        self._require(RunState.RUNNING)
        # guest-cooperative ACPI shutdown: charge the full powerdown time
        self.backend._charge("shutdown")
        self._exit()
        return {}

    def _cmd_system_reset(self, _args: Dict[str, Any]) -> Dict[str, Any]:
        self._require(RunState.RUNNING, RunState.PAUSED)
        self.backend._charge("reboot")
        self.runtime.transition(RunState.RUNNING)
        return {}

    def _cmd_quit(self, _args: Dict[str, Any]) -> Dict[str, Any]:
        self.backend._charge("destroy")
        self._exit()
        return {}

    def _cmd_balloon(self, args: Dict[str, Any]) -> Dict[str, Any]:
        value = args.get("value")
        if not isinstance(value, int) or value <= 0:
            raise _QmpFault("GenericError", f"bad balloon value {value!r}")
        new_kib = value // 1024
        if new_kib > self.runtime.max_memory_kib:
            raise _QmpFault(
                "GenericError",
                f"balloon target {new_kib} KiB above maximum "
                f"{self.runtime.max_memory_kib} KiB",
            )
        self.backend._charge("set_memory")
        self.backend.host.resize(self.config.name, memory_kib=new_kib)
        self.runtime.memory_kib = new_kib
        return {}

    def _cmd_query_balloon(self, _args: Dict[str, Any]) -> Dict[str, Any]:
        self.backend._charge("query")
        return {"actual": self.runtime.memory_kib * 1024}

    def _cmd_query_cpus(self, _args: Dict[str, Any]) -> List[Dict[str, Any]]:
        self.backend._charge("query")
        return [
            {"CPU": i, "current": i == 0, "halted": self.runtime.state != RunState.RUNNING}
            for i in range(self.runtime.vcpus)
        ]

    def _cmd_cpu_set(self, args: Dict[str, Any]) -> Dict[str, Any]:
        count = args.get("count")
        if not isinstance(count, int) or count < 1:
            raise _QmpFault("GenericError", f"bad vcpu count {count!r}")
        self.backend._charge("set_vcpus")
        self.backend.host.resize(self.config.name, vcpus=count)
        self.runtime.vcpus = count
        return {}

    def _cmd_device_add(self, args: Dict[str, Any]) -> Dict[str, Any]:
        path = args.get("drive")
        if not path:
            raise _QmpFault("GenericError", "device_add requires a drive path")
        self.backend._charge("attach_device")
        self.backend.images.attach(path, self.config.name)
        self.runtime.disk_paths.append(path)
        return {}

    def _cmd_device_del(self, args: Dict[str, Any]) -> Dict[str, Any]:
        path = args.get("drive")
        if path not in self.runtime.disk_paths:
            raise _QmpFault("DeviceNotFound", f"no attached drive {path!r}")
        self.backend._charge("detach_device")
        self.backend.images.detach(path, self.config.name)
        self.runtime.disk_paths.remove(path)
        return {}

    # -- helpers ---------------------------------------------------------

    def _require(self, *states: RunState) -> None:
        if self.runtime.state not in states:
            raise _QmpFault(
                "GenericError",
                f"guest is {self.runtime.state.value}; operation needs "
                + "/".join(s.value for s in states),
            )

    def _exit(self) -> None:
        self.runtime.transition(RunState.SHUTOFF)
        self.alive = False
        self.backend._teardown(self.runtime)
        self.backend._processes.pop(self.config.name, None)


class _QmpFault(Exception):
    def __init__(self, error_class: str, desc: str) -> None:
        super().__init__(desc)
        self.error_class = error_class
        self.desc = desc


def _qmp_error(error_class: str, desc: str) -> Dict[str, Any]:
    return {"error": {"class": error_class, "desc": desc}}


class QemuBackend(Backend):
    """The host-side emulator manager (``kvm=True`` for the KVM variant)."""

    def __init__(self, *args: Any, kvm: bool = True, **kwargs: Any) -> None:
        self.kind = "kvm" if kvm else "qemu"
        super().__init__(*args, **kwargs)
        self._processes: Dict[str, SimQemuProcess] = {}
        self._pids = itertools.count(1000)
        self._saved_state: Dict[str, Dict[str, Any]] = {}

    # -- process lifecycle (what libvirt's qemu driver does itself) ------

    def launch(self, config: DomainConfig, paused: bool = False) -> SimQemuProcess:
        """Fork+exec an emulator and boot the guest.

        Auto-creates any disk image the config references but that does
        not exist yet (the real driver pre-creates them via storage
        APIs; examples may skip that step).
        """
        self._check_injected_failure(config.name)
        with self._lock:
            if config.name in self._processes:
                from repro.errors import DomainExistsError

                raise DomainExistsError(f"guest {config.name!r} already active")
        self.host.allocate(config.name, config.vcpus, config.current_memory_kib)
        try:
            self._charge("create")
            process = SimQemuProcess(self, config, next(self._pids))
            for disk in config.disks:
                if not self.images.exists(disk.source):
                    self.images.create(
                        disk.source,
                        disk.capacity_bytes or 1024**3,
                        disk.driver_format,
                    )
                self.images.attach(disk.source, config.name)
                process.runtime.disk_paths.append(disk.source)
            self._charge("start", process.runtime.memory_gib)
        except Exception:
            self.host.release(config.name)
            self.images.detach_all(config.name)
            raise
        if paused:
            process.runtime.transition(RunState.PAUSED)
        with self._lock:
            self._processes[config.name] = process
        self._register(process.runtime)
        monitor = process.monitor
        monitor.greeting()
        monitor.execute("qmp_capabilities")
        return process

    def process(self, name: str) -> SimQemuProcess:
        with self._lock:
            process = self._processes.get(name)
        if process is None:
            raise NoDomainError(f"no active emulator process for {name!r}")
        return process

    def monitor(self, name: str) -> QmpMonitor:
        """The negotiated QMP monitor of a running guest."""
        return self.process(name).monitor

    def kill(self, name: str) -> None:
        """SIGKILL the emulator — the hard-destroy path."""
        process = self.process(name)
        self._charge("destroy")
        process._exit()

    # -- save/restore (managed save) --------------------------------------

    def save_to_file(self, name: str, path: str) -> Dict[str, Any]:
        """Serialize guest RAM to a state file and stop the emulator."""
        process = self.process(name)
        process.runtime.require_state(RunState.RUNNING, RunState.PAUSED)
        self._charge("save", process.runtime.memory_gib)
        blob = {
            "path": path,
            "uuid": process.runtime.uuid,
            "memory_kib": process.runtime.memory_kib,
            "vcpus": process.runtime.vcpus,
            "cpu_seconds": process.runtime.cpu_seconds,
        }
        self._saved_state[path] = blob
        process._exit()
        return blob

    def restore_from_file(self, config: DomainConfig, path: str) -> SimQemuProcess:
        """Recreate a guest from a state file produced by save_to_file."""
        blob = self._saved_state.get(path)
        if blob is None:
            raise NoDomainError(f"no saved state at {path!r}")
        process = self.launch(config, paused=True)
        self._charge("restore", process.runtime.memory_gib)
        process.runtime._cpu_seconds = blob["cpu_seconds"]
        process.runtime.uuid = blob["uuid"]
        process.monitor.execute("cont")
        del self._saved_state[path]
        return process

    def has_saved_state(self, path: str) -> bool:
        return path in self._saved_state
