"""Per-backend operation latency model.

Every simulated backend charges a modelled latency for each control
operation against its clock.  The constants below are calibrated to the
published magnitudes for the respective hypervisors circa the paper's
era (DATE 2010): KVM lifecycle operations ride a fast ioctl path, Xen
adds hypercall/Domain0 round trips, containers start an order of
magnitude faster than full VMs, and every ESX call pays a WAN-ish
round-trip to the remote management endpoint.  Absolute values are
approximate by construction; only the *ordering and ratios* matter for
the reproduced figures.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import InvalidArgumentError
from repro.util.clock import Clock

#: operations a cost model must price
OPERATIONS = (
    "define",
    "undefine",
    "create",  # instantiate backend object (process / domain record / container)
    "start",
    "shutdown",  # graceful
    "destroy",  # hard stop
    "suspend",
    "resume",
    "reboot",
    "query",  # state/info poll
    "set_memory",
    "set_vcpus",
    "save",
    "restore",
    "snapshot",
    "attach_device",
    "detach_device",
    "native_call",  # fixed per-message cost of the native control interface
)

#: operations whose cost also scales with guest memory (per GiB component)
MEMORY_SCALED = ("start", "save", "restore", "snapshot")


class CostModel:
    """Latency table: fixed seconds per op plus per-GiB components."""

    def __init__(
        self,
        fixed: Mapping[str, float],
        per_gib: Optional[Mapping[str, float]] = None,
        bandwidth_gib_s: float = 1.0,
    ) -> None:
        unknown = set(fixed) - set(OPERATIONS)
        if unknown:
            raise InvalidArgumentError(f"unknown operations in cost table: {unknown}")
        self._fixed: Dict[str, float] = {op: 0.0 for op in OPERATIONS}
        self._fixed.update(fixed)
        self._per_gib: Dict[str, float] = {op: 0.0 for op in MEMORY_SCALED}
        if per_gib:
            unknown = set(per_gib) - set(MEMORY_SCALED)
            if unknown:
                raise InvalidArgumentError(
                    f"per-GiB cost only valid for {MEMORY_SCALED}, got {unknown}"
                )
            self._per_gib.update(per_gib)
        if bandwidth_gib_s <= 0:
            raise InvalidArgumentError("bandwidth must be positive")
        #: memory copy bandwidth (GiB/s) used by save/restore/migration
        self.bandwidth_gib_s = bandwidth_gib_s

    def cost(self, op: str, memory_gib: float = 0.0) -> float:
        """Modelled latency of ``op`` on a guest with ``memory_gib`` RAM."""
        if op not in self._fixed:
            raise InvalidArgumentError(f"unknown operation {op!r}")
        return self._fixed[op] + self._per_gib.get(op, 0.0) * memory_gib

    def charge(self, clock: Clock, op: str, memory_gib: float = 0.0) -> float:
        """Sleep the modelled latency on ``clock``; returns the charge."""
        latency = self.cost(op, memory_gib)
        clock.sleep(latency)
        return latency

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every latency multiplied by ``factor`` (ablations)."""
        if factor <= 0:
            raise InvalidArgumentError("scale factor must be positive")
        return CostModel(
            {op: value * factor for op, value in self._fixed.items()},
            {op: value * factor for op, value in self._per_gib.items()},
            self.bandwidth_gib_s,
        )


#: KVM: ioctl-path control, fast lifecycle, ~GiB/s state copy to disk
_KVM = CostModel(
    fixed={
        "define": 0.004,
        "undefine": 0.002,
        "create": 0.120,  # fork+exec of the emulator process
        "start": 0.900,  # BIOS + kernel boot to login
        "shutdown": 1.500,  # guest-cooperative ACPI powerdown
        "destroy": 0.040,
        "suspend": 0.025,
        "resume": 0.020,
        "reboot": 1.800,
        "query": 0.0008,
        "set_memory": 0.015,  # balloon inflate/deflate round trip
        "set_vcpus": 0.030,
        "save": 0.100,
        "restore": 0.200,
        "snapshot": 0.080,
        "attach_device": 0.045,
        "detach_device": 0.040,
        "native_call": 0.0004,  # QMP over local UNIX socket
    },
    per_gib={"start": 0.150, "save": 1.050, "restore": 0.950, "snapshot": 0.550},
    bandwidth_gib_s=1.0,
)

#: plain QEMU (TCG emulation): same control path, slower guest progress
_QEMU = CostModel(
    fixed={
        "define": 0.004,
        "undefine": 0.002,
        "create": 0.140,
        "start": 4.500,  # emulated boot is ~5x slower than KVM
        "shutdown": 3.000,
        "destroy": 0.040,
        "suspend": 0.025,
        "resume": 0.020,
        "reboot": 7.000,
        "query": 0.0008,
        "set_memory": 0.015,
        "set_vcpus": 0.030,
        "save": 0.100,
        "restore": 0.200,
        "snapshot": 0.080,
        "attach_device": 0.045,
        "detach_device": 0.040,
        "native_call": 0.0004,
    },
    per_gib={"start": 0.600, "save": 1.050, "restore": 0.950, "snapshot": 0.550},
    bandwidth_gib_s=1.0,
)

#: Xen: every control op crosses Domain0 + a hypercall; paravirt boot is quick
_XEN = CostModel(
    fixed={
        "define": 0.006,
        "undefine": 0.003,
        "create": 0.300,  # domain builder in Domain0
        "start": 1.400,
        "shutdown": 1.800,
        "destroy": 0.090,
        "suspend": 0.060,
        "resume": 0.050,
        "reboot": 2.600,
        "query": 0.0015,
        "set_memory": 0.035,
        "set_vcpus": 0.055,
        "save": 0.180,
        "restore": 0.320,
        "snapshot": 0.150,
        "attach_device": 0.080,
        "detach_device": 0.070,
        "native_call": 0.0009,  # xenstore/hypercall round trip
    },
    per_gib={"start": 0.180, "save": 1.200, "restore": 1.100, "snapshot": 0.700},
    bandwidth_gib_s=0.85,
)

#: containers: no device model, no kernel boot — an order of magnitude faster
_LXC = CostModel(
    fixed={
        "define": 0.003,
        "undefine": 0.002,
        "create": 0.020,  # clone(2) + cgroup setup
        "start": 0.110,  # init process exec
        "shutdown": 0.350,
        "destroy": 0.015,
        "suspend": 0.008,  # cgroup freezer
        "resume": 0.006,
        "reboot": 0.450,
        "query": 0.0004,
        "set_memory": 0.004,  # cgroup limit write
        "set_vcpus": 0.004,
        "save": 0.050,
        "restore": 0.080,
        "snapshot": 0.060,
        "attach_device": 0.010,
        "detach_device": 0.010,
        "native_call": 0.0002,
    },
    per_gib={"start": 0.004, "save": 0.900, "restore": 0.800, "snapshot": 0.400},
    bandwidth_gib_s=1.2,
)

#: ESX: management travels over the remote SOAP endpoint — RTT per call
_ESX = CostModel(
    fixed={
        "define": 0.250,
        "undefine": 0.180,
        "create": 0.400,
        "start": 2.600,
        "shutdown": 2.400,
        "destroy": 0.300,
        "suspend": 0.450,
        "resume": 0.380,
        "reboot": 4.200,
        "query": 0.120,  # a full remote API round trip even for a poll
        "set_memory": 0.300,
        "set_vcpus": 0.350,
        "save": 0.500,
        "restore": 0.700,
        "snapshot": 0.600,
        "attach_device": 0.400,
        "detach_device": 0.380,
        "native_call": 0.1200,  # HTTPS/SOAP round trip to the hypervisor host
    },
    per_gib={"start": 0.200, "save": 1.400, "restore": 1.300, "snapshot": 0.800},
    bandwidth_gib_s=0.7,
)

#: test driver: effectively free — isolates pure management-layer cost
_TEST = CostModel(
    fixed={op: 0.0 for op in OPERATIONS},
    per_gib={op: 0.0 for op in MEMORY_SCALED},
    bandwidth_gib_s=1000.0,
)

DEFAULT_COST_MODELS: Dict[str, CostModel] = {
    "kvm": _KVM,
    "qemu": _QEMU,
    "xen": _XEN,
    "lxc": _LXC,
    "esx": _ESX,
    "test": _TEST,
}


def model_for(kind: str) -> CostModel:
    """The default cost model for a backend kind."""
    try:
        return DEFAULT_COST_MODELS[kind]
    except KeyError:
        raise InvalidArgumentError(f"no cost model for backend kind {kind!r}") from None
