"""Simulated hypervisor substrates.

The paper's testbed ran real Xen, QEMU/KVM, VMware ESX and container
hosts.  Those are a hardware/privilege gate, so this package replaces
each with a simulated backend that keeps the *management-relevant*
behaviour: a native control protocol distinct per hypervisor, a guest
lifecycle state machine, host resource accounting, and a calibrated
latency cost model charged against a pluggable clock.
"""

from repro.hypervisors.base import Backend, GuestRuntime, RunState
from repro.hypervisors.container_backend import ContainerBackend
from repro.hypervisors.diskimage import ImageStore
from repro.hypervisors.esx_backend import EsxBackend
from repro.hypervisors.host import SimHost
from repro.hypervisors.qemu_backend import QemuBackend
from repro.hypervisors.timing import DEFAULT_COST_MODELS, CostModel
from repro.hypervisors.xen_backend import XenBackend

__all__ = [
    "SimHost",
    "CostModel",
    "DEFAULT_COST_MODELS",
    "Backend",
    "GuestRuntime",
    "RunState",
    "ImageStore",
    "QemuBackend",
    "XenBackend",
    "ContainerBackend",
    "EsxBackend",
]
