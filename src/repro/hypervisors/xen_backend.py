"""Simulated Xen backend: hypercall interface, Domain0, xenstore.

The native control interface mirrors Xen's: every operation is a
``domctl``/``sysctl`` hypercall issued from the privileged Domain0,
addressing guests by numeric domain id, with name→domid resolution
through the xenstore hierarchy.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.errors import (
    DomainExistsError,
    InvalidArgumentError,
    InvalidOperationError,
    NoDomainError,
)
from repro.hypervisors.base import Backend, GuestRuntime, RunState
from repro.util import uuidutil
from repro.xmlconfig.domain import DomainConfig


class XenBackend(Backend):
    """One Xen host: hypervisor + Domain0 + xenstore."""

    kind = "xen"

    #: shutdown reason codes understood by the hypervisor
    SHUTDOWN_REASONS = ("poweroff", "reboot", "suspend", "crash")

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._domids = itertools.count(1)  # 0 is Domain0
        self._domid_by_name: Dict[str, int] = {}
        self._name_by_domid: Dict[int, str] = {}
        self._saved_state: Dict[str, Dict[str, Any]] = {}
        #: the xenstore tree, flattened to path → value
        self.xenstore: Dict[str, str] = {
            "/local/domain/0/name": "Domain-0",
            "/local/domain/0/domid": "0",
        }
        self.hypercall_count = 0

    # -- the native hypercall interface -----------------------------------

    def hypercall(self, op: str, **args: Any) -> Dict[str, Any]:
        """Issue one hypercall from Domain0.

        Supported ops (subset of domctl/sysctl):

        * ``domctl.createdomain`` — build and unpause a new domain
        * ``domctl.destroydomain`` — hard-kill a domain
        * ``domctl.pausedomain`` / ``domctl.unpausedomain``
        * ``domctl.shutdown`` — signal the guest (reason: poweroff/reboot)
        * ``domctl.getdomaininfo`` — state/resources of one domain
        * ``domctl.max_mem`` / ``domctl.max_vcpus`` — resize
        * ``sysctl.getdomaininfolist`` — enumerate all domains
        * ``domctl.save`` / ``domctl.restore`` — state file save/restore
        """
        self.hypercall_count += 1
        self._charge("native_call")
        handler = getattr(self, "_hc_" + op.replace(".", "_"), None)
        if handler is None:
            raise InvalidArgumentError(f"unknown hypercall {op!r}")
        return handler(**args)

    # -- name/domid resolution (xenstore) ---------------------------------

    def domid_of(self, name: str) -> int:
        """Resolve a domain name through the xenstore tree."""
        self._charge("native_call")
        domid = self._domid_by_name.get(name)
        if domid is None:
            raise NoDomainError(f"no Xen domain named {name!r}")
        return domid

    def name_of(self, domid: int) -> str:
        name = self._name_by_domid.get(domid)
        if name is None:
            raise NoDomainError(f"no Xen domain with id {domid}")
        return name

    def _runtime_by_domid(self, domid: int) -> GuestRuntime:
        if domid == 0:
            raise InvalidOperationError("operation not permitted on Domain-0")
        return self._get(self.name_of(domid))

    # -- hypercall handlers -----------------------------------------------

    def _hc_domctl_createdomain(self, config: DomainConfig, paused: bool = False) -> Dict[str, Any]:
        name = config.name
        self._check_injected_failure(name)
        if name in self._domid_by_name or name == "Domain-0":
            raise DomainExistsError(f"Xen domain {name!r} already exists")
        self.host.allocate(name, config.vcpus, config.current_memory_kib)
        try:
            self._charge("create")  # domain builder in Domain0
            runtime = GuestRuntime(
                name=name,
                uuid=config.uuid or uuidutil.generate_uuid(self.rng),
                vcpus=config.vcpus,
                memory_kib=config.current_memory_kib,
                clock=self.clock,
                utilization=self._new_utilization(),
            )
            for disk in config.disks:
                if not self.images.exists(disk.source):
                    self.images.create(
                        disk.source, disk.capacity_bytes or 1024**3, disk.driver_format
                    )
                self.images.attach(disk.source, name)
                runtime.disk_paths.append(disk.source)
            self._charge("start", runtime.memory_gib)
        except Exception:
            self.host.release(name)
            self.images.detach_all(name)
            raise
        domid = next(self._domids)
        self._domid_by_name[name] = domid
        self._name_by_domid[domid] = name
        self.xenstore[f"/local/domain/{domid}/name"] = name
        self.xenstore[f"/local/domain/{domid}/domid"] = str(domid)
        self.xenstore[f"/local/domain/{domid}/uuid"] = runtime.uuid
        if paused:
            runtime.transition(RunState.PAUSED)
        self._register(runtime)
        return {"domid": domid}

    def _hc_domctl_destroydomain(self, domid: int) -> Dict[str, Any]:
        runtime = self._runtime_by_domid(domid)
        self._check_injected_failure(runtime.name)
        self._charge("destroy")
        self._drop_domain(runtime)
        return {}

    def _hc_domctl_pausedomain(self, domid: int) -> Dict[str, Any]:
        runtime = self._runtime_by_domid(domid)
        self._check_injected_failure(runtime.name)
        runtime.require_state(RunState.RUNNING)
        self._charge("suspend")
        runtime.transition(RunState.PAUSED)
        return {}

    def _hc_domctl_unpausedomain(self, domid: int) -> Dict[str, Any]:
        runtime = self._runtime_by_domid(domid)
        runtime.require_state(RunState.PAUSED)
        self._charge("resume")
        runtime.transition(RunState.RUNNING)
        return {}

    def _hc_domctl_shutdown(self, domid: int, reason: str = "poweroff") -> Dict[str, Any]:
        if reason not in self.SHUTDOWN_REASONS:
            raise InvalidArgumentError(f"unknown shutdown reason {reason!r}")
        runtime = self._runtime_by_domid(domid)
        self._check_injected_failure(runtime.name)
        runtime.require_state(RunState.RUNNING)
        if reason == "poweroff":
            self._charge("shutdown")
            self._drop_domain(runtime)
        elif reason == "reboot":
            self._charge("reboot")
            runtime.transition(RunState.RUNNING)
        elif reason == "crash":
            runtime.transition(RunState.CRASHED)
        else:  # suspend: guest quiesces, stays resident
            self._charge("suspend")
            runtime.transition(RunState.PAUSED)
        return {}

    def _hc_domctl_getdomaininfo(self, domid: int) -> Dict[str, Any]:
        self._charge("query")
        if domid == 0:
            return {
                "domid": 0,
                "name": "Domain-0",
                "state": "running",
                "vcpus": self.host.cpus,
                "memory_kib": self.host.reserved_kib,
                "cpu_seconds": self.clock.now(),
            }
        runtime = self._runtime_by_domid(domid)
        return {
            "domid": domid,
            "name": runtime.name,
            "state": runtime.state.value,
            "vcpus": runtime.vcpus,
            "memory_kib": runtime.memory_kib,
            "cpu_seconds": runtime.cpu_seconds,
        }

    def _hc_sysctl_getdomaininfolist(self) -> List[Dict[str, Any]]:
        self._charge("query")
        infos = [self._hc_domctl_getdomaininfo(domid=0)]
        for domid in sorted(self._name_by_domid):
            infos.append(self._hc_domctl_getdomaininfo(domid=domid))
        return infos

    def _hc_domctl_max_mem(self, domid: int, memory_kib: int) -> Dict[str, Any]:
        runtime = self._runtime_by_domid(domid)
        if memory_kib <= 0:
            raise InvalidArgumentError("memory target must be positive")
        if memory_kib > runtime.max_memory_kib:
            raise InvalidOperationError(
                f"target {memory_kib} KiB above domain maximum {runtime.max_memory_kib} KiB"
            )
        self._charge("set_memory")
        self.host.resize(runtime.name, memory_kib=memory_kib)
        runtime.memory_kib = memory_kib
        return {}

    def _hc_domctl_max_vcpus(self, domid: int, vcpus: int) -> Dict[str, Any]:
        runtime = self._runtime_by_domid(domid)
        if vcpus < 1:
            raise InvalidArgumentError("vcpu count must be at least 1")
        self._charge("set_vcpus")
        self.host.resize(runtime.name, vcpus=vcpus)
        runtime.vcpus = vcpus
        return {}

    def _hc_domctl_save(self, domid: int, path: str) -> Dict[str, Any]:
        runtime = self._runtime_by_domid(domid)
        runtime.require_state(RunState.RUNNING, RunState.PAUSED)
        self._charge("save", runtime.memory_gib)
        self._saved_state[path] = {
            "uuid": runtime.uuid,
            "memory_kib": runtime.memory_kib,
            "vcpus": runtime.vcpus,
            "cpu_seconds": runtime.cpu_seconds,
        }
        self._drop_domain(runtime)
        return {}

    def _hc_domctl_restore(self, config: DomainConfig, path: str) -> Dict[str, Any]:
        blob = self._saved_state.get(path)
        if blob is None:
            raise NoDomainError(f"no saved Xen state at {path!r}")
        result = self._hc_domctl_createdomain(config=config, paused=True)
        domid = result["domid"]
        runtime = self._runtime_by_domid(domid)
        self._charge("restore", runtime.memory_gib)
        runtime._cpu_seconds = blob["cpu_seconds"]
        runtime.uuid = blob["uuid"]
        self._hc_domctl_unpausedomain(domid=domid)
        del self._saved_state[path]
        return {"domid": domid}

    def has_saved_state(self, path: str) -> bool:
        return path in self._saved_state

    # -- teardown ----------------------------------------------------------

    def _drop_domain(self, runtime: GuestRuntime) -> None:
        domid = self._domid_by_name.pop(runtime.name, None)
        if domid is not None:
            self._name_by_domid.pop(domid, None)
            for key in list(self.xenstore):
                if key.startswith(f"/local/domain/{domid}/"):
                    del self.xenstore[key]
        runtime.transition(RunState.SHUTOFF)
        self._teardown(runtime)
