"""Physical host model with a strict resource ledger.

A :class:`SimHost` stands in for one physical machine: CPU topology,
memory, and the accounting of what running guests have claimed.  Memory
is never overcommitted (allocation fails hard); vCPUs may be
overcommitted up to a configurable factor, mirroring common hypervisor
defaults.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Optional

from repro.errors import InsufficientResourcesError, InvalidArgumentError
from repro.util import uuidutil
from repro.util.clock import Clock, VirtualClock
from repro.xmlconfig.capabilities import Capabilities, GuestCapability, HostCapability

KIB_PER_GIB = 1024 * 1024


class _Claim:
    __slots__ = ("vcpus", "memory_kib")

    def __init__(self, vcpus: int, memory_kib: int) -> None:
        self.vcpus = vcpus
        self.memory_kib = memory_kib


class SimHost:
    """One simulated physical node."""

    def __init__(
        self,
        hostname: str = "node1",
        cpus: int = 8,
        memory_kib: int = 16 * KIB_PER_GIB,
        arch: str = "x86_64",
        mhz: int = 2600,
        cpu_overcommit: float = 4.0,
        clock: Optional[Clock] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if cpus < 1:
            raise InvalidArgumentError("host needs at least 1 CPU")
        if memory_kib <= 0:
            raise InvalidArgumentError("host memory must be positive")
        if cpu_overcommit < 1.0:
            raise InvalidArgumentError("cpu_overcommit must be >= 1.0")
        self.hostname = hostname
        self.cpus = cpus
        self.memory_kib = memory_kib
        self.arch = arch
        self.mhz = mhz
        self.cpu_overcommit = cpu_overcommit
        self.clock = clock or VirtualClock()
        self.rng = rng or random.Random(0xC0FFEE)
        self.uuid = uuidutil.generate_uuid(self.rng)
        self._lock = threading.Lock()
        self._claims: Dict[str, _Claim] = {}
        #: host memory reserved for the hypervisor/OS itself
        self.reserved_kib = min(512 * 1024, memory_kib // 8)

    # -- resource ledger ------------------------------------------------

    @property
    def allocatable_kib(self) -> int:
        return self.memory_kib - self.reserved_kib

    @property
    def used_memory_kib(self) -> int:
        with self._lock:
            return sum(c.memory_kib for c in self._claims.values())

    @property
    def free_memory_kib(self) -> int:
        return self.allocatable_kib - self.used_memory_kib

    @property
    def used_vcpus(self) -> int:
        with self._lock:
            return sum(c.vcpus for c in self._claims.values())

    @property
    def vcpu_budget(self) -> int:
        return int(self.cpus * self.cpu_overcommit)

    def allocate(self, owner: str, vcpus: int, memory_kib: int) -> None:
        """Claim resources for a guest; raises if the host cannot fit it."""
        if vcpus < 1 or memory_kib <= 0:
            raise InvalidArgumentError(
                f"allocation must be positive (vcpus={vcpus}, memory={memory_kib})"
            )
        with self._lock:
            if owner in self._claims:
                raise InvalidArgumentError(f"guest {owner!r} already holds a claim")
            used_mem = sum(c.memory_kib for c in self._claims.values())
            if used_mem + memory_kib > self.allocatable_kib:
                raise InsufficientResourcesError(
                    f"host {self.hostname}: cannot allocate {memory_kib} KiB "
                    f"({self.allocatable_kib - used_mem} KiB free)"
                )
            used_cpus = sum(c.vcpus for c in self._claims.values())
            if used_cpus + vcpus > self.vcpu_budget:
                raise InsufficientResourcesError(
                    f"host {self.hostname}: vCPU budget exhausted "
                    f"({used_cpus}/{self.vcpu_budget} in use, {vcpus} requested)"
                )
            self._claims[owner] = _Claim(vcpus, memory_kib)

    def resize(self, owner: str, vcpus: Optional[int] = None, memory_kib: Optional[int] = None) -> None:
        """Adjust an existing claim (balloon / vCPU hotplug)."""
        with self._lock:
            claim = self._claims.get(owner)
            if claim is None:
                raise InvalidArgumentError(f"guest {owner!r} holds no claim")
            new_vcpus = claim.vcpus if vcpus is None else vcpus
            new_mem = claim.memory_kib if memory_kib is None else memory_kib
            if new_vcpus < 1 or new_mem <= 0:
                raise InvalidArgumentError("resized allocation must stay positive")
            other_mem = sum(
                c.memory_kib for name, c in self._claims.items() if name != owner
            )
            if other_mem + new_mem > self.allocatable_kib:
                raise InsufficientResourcesError(
                    f"host {self.hostname}: cannot grow {owner!r} to {new_mem} KiB"
                )
            other_cpus = sum(
                c.vcpus for name, c in self._claims.items() if name != owner
            )
            if other_cpus + new_vcpus > self.vcpu_budget:
                raise InsufficientResourcesError(
                    f"host {self.hostname}: cannot grow {owner!r} to {new_vcpus} vCPUs"
                )
            claim.vcpus = new_vcpus
            claim.memory_kib = new_mem

    def release(self, owner: str) -> None:
        """Return a guest's resources to the pool (idempotent)."""
        with self._lock:
            self._claims.pop(owner, None)

    def holds_claim(self, owner: str) -> bool:
        with self._lock:
            return owner in self._claims

    @property
    def guest_count(self) -> int:
        with self._lock:
            return len(self._claims)

    # -- introspection --------------------------------------------------

    def node_info(self) -> Dict[str, int]:
        """The ``virNodeGetInfo`` style summary."""
        return {
            "cpus": self.cpus,
            "mhz": self.mhz,
            "memory_kib": self.memory_kib,
            "free_memory_kib": self.free_memory_kib,
            "guests": self.guest_count,
        }

    def capabilities(self, guests: "Optional[list[GuestCapability]]" = None) -> Capabilities:
        """Host block of a ``<capabilities>`` document."""
        host = HostCapability(
            uuid=self.uuid,
            arch=self.arch,
            cpu_model="sim-core",
            sockets=1,
            cores=self.cpus,
            threads=1,
            memory_kib=self.memory_kib,
            mhz=self.mhz,
        )
        return Capabilities(host, guests or [])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimHost({self.hostname!r}, cpus={self.cpus}, "
            f"mem={self.memory_kib // KIB_PER_GIB} GiB, guests={self.guest_count})"
        )
