"""Shared machinery for simulated hypervisor backends.

A backend owns the *active* guest instances on one host (defined-but-
inactive configurations live in the driver, exactly as in libvirt's
stateful drivers).  Each concrete backend exposes its own native
control protocol — QMP monitor, hypercalls, container engine verbs,
remote SOAP calls — and this module provides the guest runtime state
machine and resource plumbing they all share.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional

import enum

from repro.errors import (
    InvalidOperationError,
    NoDomainError,
)
from repro.hypervisors.diskimage import ImageStore
from repro.hypervisors.host import SimHost
from repro.hypervisors.timing import CostModel, model_for
from repro.util.clock import Clock

KIB_PER_GIB = 1024 * 1024


class RunState(enum.Enum):
    """Backend-level guest state (drivers map this to the public enum)."""

    RUNNING = "running"
    PAUSED = "paused"
    SHUTOFF = "shutoff"
    CRASHED = "crashed"


class GuestRuntime:
    """One active guest instance on a backend."""

    def __init__(
        self,
        name: str,
        uuid: str,
        vcpus: int,
        memory_kib: int,
        clock: Clock,
        utilization: float = 0.4,
    ) -> None:
        self.name = name
        self.uuid = uuid
        self.vcpus = vcpus
        self.memory_kib = memory_kib
        self.max_memory_kib = memory_kib
        self.clock = clock
        self.utilization = utilization
        self.state = RunState.RUNNING
        self.started_at = clock.now()
        self._cpu_seconds = 0.0
        self._last_account = clock.now()
        #: memory write rate while running, MiB/s (drives migration precopy)
        self.dirty_rate_mib_s = 64.0
        self.disk_paths: List[str] = []
        #: modelled I/O rates while running (bytes/s), derived from the
        #: guest's utilization so busier guests do more I/O
        self.disk_read_rate = int(8e6 * utilization)
        self.disk_write_rate = int(4e6 * utilization)
        self.net_rx_rate = int(2e6 * utilization)
        self.net_tx_rate = int(1e6 * utilization)
        self._disk_read_bytes = 0.0
        self._disk_write_bytes = 0.0
        self._net_rx_bytes = 0.0
        self._net_tx_bytes = 0.0

    # -- CPU time and I/O accounting -------------------------------------

    def _account(self) -> None:
        now = self.clock.now()
        if self.state == RunState.RUNNING:
            elapsed = now - self._last_account
            self._cpu_seconds += elapsed * self.vcpus * self.utilization
            self._disk_read_bytes += elapsed * self.disk_read_rate
            self._disk_write_bytes += elapsed * self.disk_write_rate
            self._net_rx_bytes += elapsed * self.net_rx_rate
            self._net_tx_bytes += elapsed * self.net_tx_rate
        self._last_account = now

    @property
    def cpu_seconds(self) -> float:
        self._account()
        return self._cpu_seconds

    def io_stats(self) -> Dict[str, int]:
        """Cumulative modelled I/O counters."""
        self._account()
        return {
            "disk_read_bytes": int(self._disk_read_bytes),
            "disk_write_bytes": int(self._disk_write_bytes),
            "net_rx_bytes": int(self._net_rx_bytes),
            "net_tx_bytes": int(self._net_tx_bytes),
        }

    @property
    def memory_gib(self) -> float:
        return self.memory_kib / KIB_PER_GIB

    # -- state transitions -----------------------------------------------

    def require_state(self, *allowed: RunState) -> None:
        if self.state not in allowed:
            names = "/".join(s.value for s in allowed)
            raise InvalidOperationError(
                f"guest {self.name!r} is {self.state.value}, needs {names}"
            )

    def transition(self, new_state: RunState) -> None:
        self._account()
        self.state = new_state


class Backend:
    """Base class for the four simulated hypervisor backends."""

    #: backend kind key; also selects the default cost model
    kind = "test"

    def __init__(
        self,
        host: Optional[SimHost] = None,
        clock: Optional[Clock] = None,
        cost_model: Optional[CostModel] = None,
        images: Optional[ImageStore] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host or SimHost()
        self.clock = clock or self.host.clock
        self.cost = cost_model or model_for(self.kind)
        self.images = images or ImageStore()
        self.rng = rng or random.Random(0x5EED)
        self._guests: Dict[str, GuestRuntime] = {}
        self._lock = threading.RLock()
        #: guests whose next lifecycle op should fail (failure injection)
        self._fail_next: Dict[str, str] = {}
        #: per-operation charge counters (native-interface call accounting)
        self.ops_charged: Dict[str, int] = {}

    # -- shared helpers --------------------------------------------------

    def _charge(self, op: str, memory_gib: float = 0.0) -> float:
        """Charge the modelled latency of a native operation."""
        with self._lock:
            self.ops_charged[op] = self.ops_charged.get(op, 0) + 1
        return self.cost.charge(self.clock, op, memory_gib)

    @property
    def total_ops_charged(self) -> int:
        with self._lock:
            return sum(self.ops_charged.values())

    def _get(self, name: str) -> GuestRuntime:
        with self._lock:
            guest = self._guests.get(name)
        if guest is None:
            raise NoDomainError(f"no active guest {name!r} on {self.kind} backend")
        return guest

    def has_guest(self, name: str) -> bool:
        with self._lock:
            return name in self._guests

    def list_guests(self) -> List[str]:
        """Names of active guests, sorted."""
        with self._lock:
            return sorted(self._guests)

    def guest_state(self, name: str) -> RunState:
        return self._get(name).state

    def guest_info(self, name: str) -> Dict[str, float]:
        """The state/resources snapshot behind ``virDomainGetInfo``."""
        self._charge("query")
        guest = self._get(name)
        return {
            "state": guest.state.value,
            "vcpus": guest.vcpus,
            "memory_kib": guest.memory_kib,
            "max_memory_kib": guest.max_memory_kib,
            "cpu_seconds": guest.cpu_seconds,
        }

    def _register(self, guest: GuestRuntime) -> None:
        with self._lock:
            self._guests[guest.name] = guest

    def _unregister(self, name: str) -> Optional[GuestRuntime]:
        with self._lock:
            return self._guests.pop(name, None)

    def _teardown(self, guest: GuestRuntime) -> None:
        """Release every host resource an instance held."""
        self.host.release(guest.name)
        self.images.detach_all(guest.name)
        self._unregister(guest.name)

    # -- failure injection ------------------------------------------------

    def inject_crash(self, name: str) -> None:
        """Simulate a guest kernel panic: instance stays, state = CRASHED."""
        guest = self._get(name)
        guest.require_state(RunState.RUNNING, RunState.PAUSED)
        guest.transition(RunState.CRASHED)

    def fail_next(self, name: str, reason: str = "injected backend failure") -> None:
        """Arm a one-shot failure for the next lifecycle op on ``name``."""
        with self._lock:
            self._fail_next[name] = reason

    def _check_injected_failure(self, name: str) -> None:
        with self._lock:
            reason = self._fail_next.pop(name, None)
        if reason is not None:
            from repro.errors import OperationFailedError

            raise OperationFailedError(f"{self.kind}: {reason}")

    def _new_utilization(self) -> float:
        """Per-guest CPU utilization factor, deterministic per rng."""
        return 0.25 + self.rng.random() * 0.5
