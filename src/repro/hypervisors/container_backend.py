"""Simulated container engine: namespaces + cgroup controllers.

The native control interface mimics OS-level container tooling: a
container is a process tree in a private set of namespaces with its
resources bounded by cgroup controller files.  Suspend/resume is the
cgroup freezer; memory/CPU resizing is a cgroup limit write — which is
why those operations are an order of magnitude cheaper than on full
virtual machines (a ratio the benchmarks reproduce).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.errors import (
    DomainExistsError,
    InvalidArgumentError,
    InvalidOperationError,
    NoDomainError,
)
from repro.hypervisors.base import Backend, GuestRuntime, RunState
from repro.util import uuidutil
from repro.xmlconfig.domain import DomainConfig

#: namespaces every container gets
DEFAULT_NAMESPACES = ("pid", "net", "mnt", "uts", "ipc")

#: cgroup controller files the engine exposes
CGROUP_KEYS = (
    "memory.limit_in_bytes",
    "cpuset.cpus",
    "cpu.shares",
    "freezer.state",
)


class Container:
    """One container: init process, namespaces, cgroup."""

    def __init__(self, runtime: GuestRuntime, init: str, pid: int) -> None:
        self.runtime = runtime
        self.init = init
        self.init_pid = pid
        self.namespaces = set(DEFAULT_NAMESPACES)
        self.cgroup: Dict[str, str] = {
            "memory.limit_in_bytes": str(runtime.memory_kib * 1024),
            "cpuset.cpus": "0-" + str(runtime.vcpus - 1) if runtime.vcpus > 1 else "0",
            "cpu.shares": "1024",
            "freezer.state": "THAWED",
        }


class ContainerBackend(Backend):
    """The container engine on one host."""

    kind = "lxc"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._containers: Dict[str, Container] = {}
        self._pids = itertools.count(2000)

    # -- engine verbs -------------------------------------------------------

    def start_container(self, config: DomainConfig) -> Container:
        """clone(2) the init process into fresh namespaces and cgroup."""
        name = config.name
        self._check_injected_failure(name)
        if config.os.os_type != "exe" or not config.os.init:
            raise InvalidArgumentError(
                f"container {name!r} needs os type 'exe' with an <init> binary"
            )
        with self._lock:
            if name in self._containers:
                raise DomainExistsError(f"container {name!r} already running")
        self.host.allocate(name, config.vcpus, config.current_memory_kib)
        try:
            self._charge("create")
            runtime = GuestRuntime(
                name=name,
                uuid=config.uuid or uuidutil.generate_uuid(self.rng),
                vcpus=config.vcpus,
                memory_kib=config.current_memory_kib,
                clock=self.clock,
                utilization=self._new_utilization(),
            )
            self._charge("start", runtime.memory_gib)
        except Exception:
            self.host.release(name)
            raise
        container = Container(runtime, config.os.init, next(self._pids))
        with self._lock:
            self._containers[name] = container
        self._register(runtime)
        return container

    def container(self, name: str) -> Container:
        with self._lock:
            container = self._containers.get(name)
        if container is None:
            raise NoDomainError(f"no running container {name!r}")
        return container

    def stop_container(self, name: str) -> None:
        """SIGTERM to init and wait — the graceful path."""
        container = self.container(name)
        self._check_injected_failure(name)
        container.runtime.require_state(RunState.RUNNING)
        self._charge("shutdown")
        self._drop(container)

    def kill_container(self, name: str) -> None:
        """SIGKILL the whole process tree — the destroy path."""
        container = self.container(name)
        self._check_injected_failure(name)
        self._charge("destroy")
        self._drop(container)

    def reboot_container(self, name: str) -> None:
        """Restart init inside the existing namespaces."""
        container = self.container(name)
        container.runtime.require_state(RunState.RUNNING)
        self._charge("reboot")
        container.init_pid = next(self._pids)

    # -- cgroup interface -----------------------------------------------------

    def write_cgroup(self, name: str, key: str, value: str) -> None:
        """Write one cgroup controller file — the native resize/freeze path."""
        container = self.container(name)
        if key not in CGROUP_KEYS:
            raise InvalidArgumentError(f"unknown cgroup key {key!r}")
        self._charge("native_call")
        runtime = container.runtime
        if key == "freezer.state":
            self._apply_freezer(container, value)
        elif key == "memory.limit_in_bytes":
            new_kib = int(value) // 1024
            if new_kib <= 0:
                raise InvalidArgumentError("memory limit must be positive")
            self._charge("set_memory")
            self.host.resize(name, memory_kib=new_kib)
            runtime.memory_kib = new_kib
        elif key == "cpuset.cpus":
            vcpus = _cpuset_size(value)
            self._charge("set_vcpus")
            self.host.resize(name, vcpus=vcpus)
            runtime.vcpus = vcpus
        container.cgroup[key] = value

    def read_cgroup(self, name: str, key: str) -> str:
        container = self.container(name)
        if key not in CGROUP_KEYS:
            raise InvalidArgumentError(f"unknown cgroup key {key!r}")
        self._charge("native_call")
        return container.cgroup[key]

    def _apply_freezer(self, container: Container, value: str) -> None:
        runtime = container.runtime
        if value == "FROZEN":
            runtime.require_state(RunState.RUNNING)
            self._charge("suspend")
            runtime.transition(RunState.PAUSED)
        elif value == "THAWED":
            if runtime.state == RunState.PAUSED:
                self._charge("resume")
                runtime.transition(RunState.RUNNING)
        else:
            raise InvalidArgumentError(f"bad freezer state {value!r}")

    # -- introspection ----------------------------------------------------------

    def container_stats(self, name: str) -> Dict[str, Any]:
        container = self.container(name)
        self._charge("query")
        runtime = container.runtime
        return {
            "state": runtime.state.value,
            "init_pid": container.init_pid,
            "namespaces": sorted(container.namespaces),
            "memory_kib": runtime.memory_kib,
            "vcpus": runtime.vcpus,
            "cpu_seconds": runtime.cpu_seconds,
        }

    def list_containers(self) -> List[str]:
        with self._lock:
            return sorted(self._containers)

    def _drop(self, container: Container) -> None:
        container.runtime.transition(RunState.SHUTOFF)
        with self._lock:
            self._containers.pop(container.runtime.name, None)
        self._teardown(container.runtime)


def _cpuset_size(spec: str) -> int:
    """Number of CPUs in a cpuset string like ``0-3,6``."""
    total = 0
    for part in spec.split(","):
        part = part.strip()
        if not part:
            raise InvalidArgumentError(f"bad cpuset spec {spec!r}")
        if "-" in part:
            low_s, _, high_s = part.partition("-")
            try:
                low, high = int(low_s), int(high_s)
            except ValueError:
                raise InvalidArgumentError(f"bad cpuset spec {spec!r}") from None
            if high < low:
                raise InvalidArgumentError(f"bad cpuset range {part!r}")
            total += high - low + 1
        else:
            try:
                int(part)
            except ValueError:
                raise InvalidArgumentError(f"bad cpuset spec {spec!r}") from None
            total += 1
    return total
