"""Simulated disk image store with copy-on-write chains.

Stands in for the image files a real host would keep under
``/var/lib/libvirt/images``: creation, deletion, cloning, backing-file
chains, per-image allocation accounting and dirty-block bitmaps (the
qcow2 bitmap analogue that checkpoints and incremental backups build
on), all in memory.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.errors import (
    InvalidArgumentError,
    InvalidOperationError,
    NoStorageVolumeError,
    ResourceBusyError,
    StorageVolumeExistsError,
)


class DiskImage:
    """One image file: format, capacity, allocation, optional backing."""

    __slots__ = ("path", "capacity_bytes", "allocation_bytes", "image_format", "backing_path", "in_use_by")

    def __init__(
        self,
        path: str,
        capacity_bytes: int,
        image_format: str = "qcow2",
        backing_path: Optional[str] = None,
        allocation_bytes: Optional[int] = None,
    ) -> None:
        self.path = path
        self.capacity_bytes = capacity_bytes
        self.image_format = image_format
        self.backing_path = backing_path
        if allocation_bytes is None:
            allocation_bytes = capacity_bytes if image_format == "raw" else 0
        self.allocation_bytes = allocation_bytes
        self.in_use_by: Optional[str] = None


class ImageStore:
    """The host-wide registry of disk images."""

    #: granularity of the dirty-block bitmaps (qcow2's default cluster size)
    DEFAULT_BLOCK_SIZE = 64 * 1024

    def __init__(
        self,
        capacity_bytes: int = 500 * 1024**3,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if capacity_bytes <= 0:
            raise InvalidArgumentError("image store capacity must be positive")
        if block_size <= 0:
            raise InvalidArgumentError("image store block size must be positive")
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self._images: Dict[str, DiskImage] = {}
        #: per-image dirty-block bitmap: block indices written since the
        #: last ``reset_dirty`` (i.e. since the most recent checkpoint)
        self._dirty: Dict[str, Set[int]] = {}
        #: per-image byte contents, grown lazily by ``write_bytes`` —
        #: only images touched by the bulk-data plane carry any
        self._content: Dict[str, bytearray] = {}
        #: per-image write cursor — ``write()`` has no offset, so writes
        #: advance a cursor and wrap modulo capacity, like a log device
        self._cursor: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- creation/deletion ---------------------------------------------

    def create(
        self,
        path: str,
        capacity_bytes: int,
        image_format: str = "qcow2",
        backing_path: Optional[str] = None,
    ) -> DiskImage:
        """Create an image; qcow2 images start thin (zero allocation)."""
        if not path.startswith("/"):
            raise InvalidArgumentError(f"image path must be absolute, got {path!r}")
        if capacity_bytes <= 0:
            raise InvalidArgumentError("image capacity must be positive")
        if image_format not in ("raw", "qcow2", "vmdk"):
            raise InvalidArgumentError(f"unknown image format {image_format!r}")
        if backing_path is not None and image_format == "raw":
            raise InvalidArgumentError("raw images cannot have a backing file")
        with self._lock:
            if path in self._images:
                raise StorageVolumeExistsError(f"image {path!r} already exists")
            if backing_path is not None and backing_path not in self._images:
                raise NoStorageVolumeError(f"backing file {backing_path!r} not found")
            image = DiskImage(path, capacity_bytes, image_format, backing_path)
            if self._allocated_locked() + image.allocation_bytes > self.capacity_bytes:
                raise InvalidOperationError(
                    f"image store full: cannot allocate {image.allocation_bytes} bytes"
                )
            self._images[path] = image
            return image

    def delete(self, path: str) -> None:
        """Remove an image; refuses while in use or backing another image."""
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            if image.in_use_by is not None:
                raise ResourceBusyError(
                    f"image {path!r} is in use by guest {image.in_use_by!r}"
                )
            dependants = [
                p for p, img in self._images.items() if img.backing_path == path
            ]
            if dependants:
                raise ResourceBusyError(
                    f"image {path!r} backs {len(dependants)} other image(s): {dependants}"
                )
            del self._images[path]
            self._dirty.pop(path, None)
            self._cursor.pop(path, None)
            self._content.pop(path, None)

    def clone(self, source_path: str, dest_path: str, shallow: bool = True) -> DiskImage:
        """Copy an image: shallow = new COW overlay, deep = full copy."""
        with self._lock:
            source = self._images.get(source_path)
            if source is None:
                raise NoStorageVolumeError(f"image {source_path!r} not found")
        if shallow:
            if source.image_format == "raw":
                raise InvalidOperationError("cannot build a COW overlay on a raw image")
            return self.create(dest_path, source.capacity_bytes, "qcow2", source_path)
        clone = self.create(dest_path, source.capacity_bytes, source.image_format)
        with self._lock:
            clone.allocation_bytes = source.allocation_bytes
        return clone

    # -- guest attachment ------------------------------------------------

    def attach(self, path: str, guest: str) -> DiskImage:
        """Mark an image as in use by a guest (exclusive)."""
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            if image.in_use_by is not None and image.in_use_by != guest:
                raise ResourceBusyError(
                    f"image {path!r} already attached to {image.in_use_by!r}"
                )
            image.in_use_by = guest
            return image

    def detach(self, path: str, guest: str) -> None:
        """Release a guest's claim on an image (idempotent per guest)."""
        with self._lock:
            image = self._images.get(path)
            if image is None:
                return
            if image.in_use_by == guest:
                image.in_use_by = None

    def detach_all(self, guest: str) -> None:
        """Release every image the guest holds."""
        with self._lock:
            for image in self._images.values():
                if image.in_use_by == guest:
                    image.in_use_by = None

    # -- data-plane model ------------------------------------------------

    def write(self, path: str, num_bytes: int) -> None:
        """Model a guest write growing a thin image's allocation.

        Also maintains the image's dirty-block bitmap: writes advance a
        per-image cursor (wrapping modulo capacity) and mark every block
        the span touches, so checkpoints can later freeze "what changed
        since the last checkpoint" without scanning data.
        """
        if num_bytes < 0:
            raise InvalidArgumentError("write size must be non-negative")
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            new_alloc = min(image.capacity_bytes, image.allocation_bytes + num_bytes)
            growth = new_alloc - image.allocation_bytes
            if self._allocated_locked() + growth > self.capacity_bytes:
                raise InvalidOperationError("image store full")
            image.allocation_bytes = new_alloc
            if num_bytes:
                self._mark_dirty_locked(image, num_bytes)

    def _mark_dirty_locked(self, image: DiskImage, num_bytes: int) -> None:
        blocks = self._dirty.setdefault(image.path, set())
        total = self._num_blocks(image)
        if num_bytes >= image.capacity_bytes:
            blocks.update(range(total))
            self._cursor[image.path] = 0
            return
        cursor = self._cursor.get(image.path, 0)
        first = cursor // self.block_size
        last = (cursor + num_bytes - 1) // self.block_size
        for block in range(first, last + 1):
            blocks.add(block % total)
        self._cursor[image.path] = (cursor + num_bytes) % image.capacity_bytes

    def _num_blocks(self, image: DiskImage) -> int:
        return max(1, -(-image.capacity_bytes // self.block_size))

    def write_bytes(
        self, path: str, offset: int, data: "bytes | bytearray | memoryview"
    ) -> int:
        """Write actual bytes at ``offset`` (the vol-upload data path).

        Unlike :meth:`write` — which only *models* allocation growth —
        this stores content, so a later :meth:`read_bytes` returns what
        was written.  The span's blocks are marked dirty at offset
        granularity (no cursor), allocation grows to cover the written
        extent, and writes past capacity are refused.
        """
        if offset < 0:
            raise InvalidArgumentError("write offset must be non-negative")
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            end = offset + len(data)
            if end > image.capacity_bytes:
                raise InvalidOperationError(
                    f"write of {len(data)} bytes at offset {offset} exceeds "
                    f"capacity {image.capacity_bytes} of {path!r}"
                )
            new_alloc = max(image.allocation_bytes, end)
            growth = new_alloc - image.allocation_bytes
            if growth > 0 and self._allocated_locked() + growth > self.capacity_bytes:
                raise InvalidOperationError("image store full")
            content = self._content.setdefault(path, bytearray())
            if len(content) < end:
                content.extend(b"\x00" * (end - len(content)))
            content[offset:end] = data
            image.allocation_bytes = new_alloc
            if len(data):
                blocks = self._dirty.setdefault(path, set())
                total = self._num_blocks(image)
                first = offset // self.block_size
                last = (end - 1) // self.block_size
                for block in range(first, last + 1):
                    blocks.add(block % total)
        return len(data)

    def read_bytes(self, path: str, offset: int = 0, length: "Optional[int]" = None) -> bytes:
        """Read stored content (the vol-download data path).

        Extents never written read back as zeroes, like a sparse file;
        ``length`` defaults to the rest of the image's capacity.
        """
        if offset < 0:
            raise InvalidArgumentError("read offset must be non-negative")
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            if length is None:
                length = max(0, image.capacity_bytes - offset)
            if length < 0:
                raise InvalidArgumentError("read length must be non-negative")
            end = min(offset + length, image.capacity_bytes)
            if end <= offset:
                return b""
            content = self._content.get(path, b"")
            stored = bytes(content[offset:end])
            return stored + b"\x00" * ((end - offset) - len(stored))

    def set_allocation(self, path: str, allocation_bytes: int) -> None:
        """Force an image's allocation (snapshot revert / backup finish)."""
        if allocation_bytes < 0:
            raise InvalidArgumentError("allocation must be non-negative")
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            new_alloc = min(image.capacity_bytes, allocation_bytes)
            growth = new_alloc - image.allocation_bytes
            if growth > 0 and self._allocated_locked() + growth > self.capacity_bytes:
                raise InvalidOperationError("image store full")
            image.allocation_bytes = new_alloc

    # -- dirty-block bitmaps ---------------------------------------------

    def dirty_blocks(self, path: str) -> FrozenSet[int]:
        """The image's active bitmap: blocks written since the last reset."""
        with self._lock:
            if path not in self._images:
                raise NoStorageVolumeError(f"image {path!r} not found")
            return frozenset(self._dirty.get(path, ()))

    def dirty_bytes(self, path: str) -> int:
        """Bytes covered by the active bitmap (block-granular)."""
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            covered = len(self._dirty.get(path, ())) * self.block_size
            return min(covered, image.capacity_bytes)

    def reset_dirty(self, path: str) -> FrozenSet[int]:
        """Freeze and clear the active bitmap (checkpoint creation)."""
        with self._lock:
            if path not in self._images:
                raise NoStorageVolumeError(f"image {path!r} not found")
            frozen = frozenset(self._dirty.get(path, ()))
            self._dirty[path] = set()
            return frozen

    def merge_dirty(self, path: str, blocks: Iterable[int]) -> None:
        """Fold frozen blocks back into the active bitmap (checkpoint delete)."""
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            total = self._num_blocks(image)
            self._dirty.setdefault(path, set()).update(b % total for b in blocks)

    def mark_all_dirty(self, path: str) -> None:
        """Mark every block dirty (disk contents replaced, e.g. revert)."""
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            self._dirty[path] = set(range(self._num_blocks(image)))

    # -- chains & introspection ------------------------------------------

    def chain(self, path: str) -> List[str]:
        """The full backing chain, leaf first."""
        with self._lock:
            result = []
            current: Optional[str] = path
            while current is not None:
                image = self._images.get(current)
                if image is None:
                    raise NoStorageVolumeError(f"image {current!r} not found in chain")
                if current in result:
                    raise InvalidOperationError(f"backing chain loop at {current!r}")
                result.append(current)
                current = image.backing_path
            return result

    def lookup(self, path: str) -> DiskImage:
        with self._lock:
            image = self._images.get(path)
            if image is None:
                raise NoStorageVolumeError(f"image {path!r} not found")
            return image

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._images

    def list_paths(self) -> List[str]:
        with self._lock:
            return sorted(self._images)

    @property
    def allocated_bytes(self) -> int:
        with self._lock:
            return self._allocated_locked()

    def _allocated_locked(self) -> int:
        return sum(img.allocation_bytes for img in self._images.values())
