"""Simulated VMware ESX host: a remote, session-based management API.

ESX is the paper's *stateless-driver* case: the hypervisor exposes its
own remote management endpoint and keeps the VM inventory itself, so
the libvirt driver talks to it directly from the client — no libvirtd
in the path.  The simulation mirrors that: a SOAP-ish ``invoke`` call
surface with login sessions, managed-object IDs, and a registered-VM
inventory that persists across power cycles.  Every call pays the
remote round-trip latency.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.errors import (
    AuthenticationError,
    DomainExistsError,
    InvalidArgumentError,
    InvalidOperationError,
    NoDomainError,
)
from repro.hypervisors.base import Backend, GuestRuntime, RunState
from repro.util import uuidutil
from repro.xmlconfig.domain import DomainConfig

POWER_STATES = ("poweredOff", "poweredOn", "suspended")


class _VMRecord:
    """One inventory entry: config + power state, persisted by the host."""

    __slots__ = ("moid", "config", "power_state", "uuid")

    def __init__(self, moid: str, config: DomainConfig, uuid: str) -> None:
        self.moid = moid
        self.config = config
        self.power_state = "poweredOff"
        self.uuid = uuid


class EsxBackend(Backend):
    """A remote ESX hypervisor host with its own API and inventory."""

    kind = "esx"

    def __init__(
        self,
        *args: Any,
        username: str = "root",
        password: str = "vmware",
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._username = username
        self._password = password
        self._sessions: Dict[str, bool] = {}
        self._session_ids = itertools.count(1)
        self._moids = itertools.count(1)
        self._inventory: Dict[str, _VMRecord] = {}  # moid -> record
        self.api_calls = 0

    # -- session management -------------------------------------------------

    def login(self, username: str, password: str) -> str:
        """Open an API session; every other call needs its key."""
        self._charge("native_call")
        if username != self._username or password != self._password:
            raise AuthenticationError(f"ESX login failed for user {username!r}")
        key = f"session-{next(self._session_ids)}"
        self._sessions[key] = True
        return key

    def logout(self, session: str) -> None:
        self._charge("native_call")
        self._sessions.pop(session, None)

    def _require_session(self, session: str) -> None:
        if not self._sessions.get(session):
            raise AuthenticationError("ESX session invalid or expired")

    # -- the remote call surface ---------------------------------------------

    def invoke(self, session: str, method: str, **kwargs: Any) -> Any:
        """One remote API call (pays the round trip, checks the session)."""
        self.api_calls += 1
        self._charge("native_call")
        self._require_session(session)
        handler = getattr(self, "_api_" + method, None)
        if handler is None:
            raise InvalidArgumentError(f"unknown ESX API method {method!r}")
        return handler(**kwargs)

    # -- inventory ---------------------------------------------------------------

    def _api_RegisterVM(self, config: DomainConfig) -> str:
        for record in self._inventory.values():
            if record.config.name == config.name:
                raise DomainExistsError(f"VM {config.name!r} already registered")
        moid = f"vm-{next(self._moids)}"
        uuid = config.uuid or uuidutil.generate_uuid(self.rng)
        self._inventory[moid] = _VMRecord(moid, config, uuid)
        return moid

    def _api_UnregisterVM(self, vm: str) -> None:
        record = self._record(vm)
        if record.power_state != "poweredOff":
            raise InvalidOperationError(
                f"VM {record.config.name!r} is {record.power_state}; power it off first"
            )
        del self._inventory[vm]

    def _api_FindByName(self, name: str) -> str:
        for moid, record in self._inventory.items():
            if record.config.name == name:
                return moid
        raise NoDomainError(f"no registered VM named {name!r}")

    def _api_ListVMs(self) -> List[Dict[str, str]]:
        return [
            {
                "moid": moid,
                "name": record.config.name,
                "powerState": record.power_state,
            }
            for moid, record in sorted(self._inventory.items())
        ]

    def _api_GetVMConfig(self, vm: str) -> DomainConfig:
        return self._record(vm).config

    def _api_GetVMState(self, vm: str) -> Dict[str, Any]:
        self._charge("query")
        record = self._record(vm)
        info: Dict[str, Any] = {
            "powerState": record.power_state,
            "uuid": record.uuid,
            "memory_kib": record.config.current_memory_kib,
            "vcpus": record.config.vcpus,
            "cpu_seconds": 0.0,
        }
        if record.power_state != "poweredOff":
            runtime = self._get(record.config.name)
            info["memory_kib"] = runtime.memory_kib
            info["vcpus"] = runtime.vcpus
            info["cpu_seconds"] = runtime.cpu_seconds
        return info

    # -- power operations --------------------------------------------------------

    def _api_PowerOnVM_Task(self, vm: str) -> None:
        record = self._record(vm)
        name = record.config.name
        self._check_injected_failure(name)
        if record.power_state == "poweredOn":
            raise InvalidOperationError(f"VM {name!r} is already powered on")
        if record.power_state == "suspended":
            runtime = self._get(name)
            self._charge("resume")
            runtime.transition(RunState.RUNNING)
            record.power_state = "poweredOn"
            return
        self.host.allocate(name, record.config.vcpus, record.config.current_memory_kib)
        try:
            self._charge("create")
            runtime = GuestRuntime(
                name=name,
                uuid=record.uuid,
                vcpus=record.config.vcpus,
                memory_kib=record.config.current_memory_kib,
                clock=self.clock,
                utilization=self._new_utilization(),
            )
            self._charge("start", runtime.memory_gib)
        except Exception:
            self.host.release(name)
            raise
        self._register(runtime)
        record.power_state = "poweredOn"

    def _api_PowerOffVM_Task(self, vm: str) -> None:
        """Hard power off (the destroy analogue)."""
        record = self._record(vm)
        self._check_injected_failure(record.config.name)
        if record.power_state == "poweredOff":
            raise InvalidOperationError(f"VM {record.config.name!r} is powered off")
        self._charge("destroy")
        self._power_down(record)

    def _api_ShutdownGuest(self, vm: str) -> None:
        """Guest-cooperative shutdown via VMware tools."""
        record = self._record(vm)
        self._check_injected_failure(record.config.name)
        if record.power_state != "poweredOn":
            raise InvalidOperationError(
                f"VM {record.config.name!r} is {record.power_state}"
            )
        runtime = self._get(record.config.name)
        runtime.require_state(RunState.RUNNING)
        self._charge("shutdown")
        self._power_down(record)

    def _api_SuspendVM_Task(self, vm: str) -> None:
        record = self._record(vm)
        self._check_injected_failure(record.config.name)
        runtime = self._get(record.config.name)
        runtime.require_state(RunState.RUNNING)
        self._charge("suspend")
        runtime.transition(RunState.PAUSED)
        record.power_state = "suspended"

    def _api_ResetVM_Task(self, vm: str) -> None:
        record = self._record(vm)
        runtime = self._get(record.config.name)
        runtime.require_state(RunState.RUNNING)
        self._charge("reboot")
        runtime.transition(RunState.RUNNING)

    def _api_ReconfigVM_Task(
        self,
        vm: str,
        memory_kib: Optional[int] = None,
        vcpus: Optional[int] = None,
    ) -> None:
        record = self._record(vm)
        self._charge("set_memory" if memory_kib is not None else "set_vcpus")
        if record.power_state != "poweredOff":
            runtime = self._get(record.config.name)
            if memory_kib is not None:
                if memory_kib > runtime.max_memory_kib:
                    raise InvalidOperationError(
                        f"memory target {memory_kib} above maximum "
                        f"{runtime.max_memory_kib}"
                    )
                self.host.resize(record.config.name, memory_kib=memory_kib)
                runtime.memory_kib = memory_kib
            if vcpus is not None:
                self.host.resize(record.config.name, vcpus=vcpus)
                runtime.vcpus = vcpus
        config = record.config
        record.config = config.copy(
            **{
                k: v
                for k, v in (
                    ("current_memory_kib", memory_kib),
                    ("vcpus", vcpus),
                )
                if v is not None
            }
        )

    def _power_down(self, record: _VMRecord) -> None:
        runtime = self._unregister(record.config.name)
        if runtime is not None:
            runtime.transition(RunState.SHUTOFF)
            self.host.release(record.config.name)
        record.power_state = "poweredOff"

    def _record(self, moid: str) -> _VMRecord:
        record = self._inventory.get(moid)
        if record is None:
            raise NoDomainError(f"no VM with managed object id {moid!r}")
        return record
