"""Live migration: pre-copy model and cross-connection orchestration."""

from repro.migration.precopy import PrecopyResult, run_precopy
from repro.migration.manager import migrate_domain

__all__ = ["run_precopy", "PrecopyResult", "migrate_domain"]
