"""Managed (client-orchestrated) migration across two connections.

The client drives libvirt's classic begin → prepare → perform →
finish → confirm handshake between the source and destination drivers.
On any failure after prepare, the destination's half-built guest is
torn down and the source is resumed — the domain never disappears.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import InvalidArgumentError, MigrationError, VirtError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import Connection
    from repro.core.domain import Domain


def migrate_domain(
    domain: "Domain",
    dest: "Connection",
    live: bool = True,
    max_downtime_s: float = 0.3,
    bandwidth_mib_s: "Optional[float]" = None,
    strict_convergence: bool = False,
) -> "Domain":
    """Migrate ``domain`` to ``dest``; returns the destination handle."""
    from repro.core.domain import Domain

    source = domain.connection
    if source is dest:
        raise InvalidArgumentError("source and destination connections are identical")
    if max_downtime_s <= 0:
        raise InvalidArgumentError("max_downtime_s must be positive")
    if bandwidth_mib_s is not None and bandwidth_mib_s <= 0:
        raise InvalidArgumentError("bandwidth_mib_s must be positive")

    params = {
        "live": live,
        "max_downtime_s": max_downtime_s,
        "bandwidth_mib_s": bandwidth_mib_s,
        "strict_convergence": strict_convergence,
    }
    result, stats = run_handshake(source._driver, dest._driver, domain.name, params)
    new_domain = Domain(dest, result["name"], result.get("uuid"))
    new_domain.last_migration_stats = stats  # type: ignore[attr-defined]
    return new_domain


def run_handshake(source_driver, dest_driver, name: str, params: dict):
    """The begin → prepare → perform → finish → confirm sequence.

    Shared by managed migration (client drives two connections) and
    peer-to-peer migration (the source *driver* drives it against a
    destination it dialled itself).

    When the source driver carries a metrics registry, each phase's
    modelled duration lands in ``migration_phase_seconds{phase=...}``.
    """
    registry = getattr(source_driver, "metrics", None)
    phases = (
        registry.histogram(
            "migration_phase_seconds",
            "Modelled duration of migration handshake phases",
            ("phase",),
        )
        if registry is not None
        else None
    )

    def timed(phase, fn, *args, **kwargs):
        if phases is None:
            return fn(*args, **kwargs)
        started = registry.now()
        try:
            return fn(*args, **kwargs)
        finally:
            phases.labels(phase=phase).observe(registry.now() - started)

    description = timed("begin", source_driver.migrate_begin, name)
    cookie = timed("prepare", dest_driver.migrate_prepare, description)
    try:
        stats = timed("perform", source_driver.migrate_perform, name, cookie, params)
    except VirtError as exc:
        # roll back: drop the destination shell, resume the source
        try:
            dest_driver.migrate_finish(cookie, {"failed": True})
        finally:
            source_driver.migrate_confirm(name, cancelled=True)
        raise MigrationError(f"migration of {name!r} failed: {exc}") from exc
    try:
        result = timed("finish", dest_driver.migrate_finish, cookie, stats)
    except VirtError as exc:
        # destination failed to activate: resume the source, never lose
        # the guest
        source_driver.migrate_confirm(name, cancelled=True)
        raise MigrationError(
            f"destination failed to activate {name!r}: {exc}"
        ) from exc
    timed("confirm", source_driver.migrate_confirm, name, cancelled=False)
    return result, stats
