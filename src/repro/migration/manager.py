"""Managed (client-orchestrated) migration across two connections.

The client drives libvirt's classic begin → prepare → perform →
finish → confirm handshake between the source and destination drivers.
On any failure after prepare, the destination's half-built guest is
torn down and the source is resumed — the domain never disappears.

Rollback is best-effort by design: a teardown step that itself fails
(the destination daemon just crashed, say) is logged and suppressed so
the caller always sees the *original* failure, wrapped in
:class:`~repro.errors.MigrationError` with the root cause chained.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional

from repro.errors import InvalidArgumentError, MigrationError, VirtError
from repro.util.virtlog import LOG_ERROR, Logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import Connection
    from repro.core.domain import Domain

#: module logger for rollback teardown failures (always-on, error level)
_log = Logger(level=LOG_ERROR)


def migrate_domain(
    domain: "Domain",
    dest: "Connection",
    live: bool = True,
    max_downtime_s: float = 0.3,
    bandwidth_mib_s: "Optional[float]" = None,
    strict_convergence: bool = False,
    auto_converge: bool = False,
    post_copy: bool = False,
) -> "Domain":
    """Migrate ``domain`` to ``dest``; returns the destination handle."""
    from repro.core.domain import Domain

    source = domain.connection
    if source is dest:
        raise InvalidArgumentError("source and destination connections are identical")
    if max_downtime_s <= 0:
        raise InvalidArgumentError("max_downtime_s must be positive")
    if bandwidth_mib_s is not None and bandwidth_mib_s <= 0:
        raise InvalidArgumentError("bandwidth_mib_s must be positive")

    params = {
        "live": live,
        "max_downtime_s": max_downtime_s,
        "bandwidth_mib_s": bandwidth_mib_s,
        "strict_convergence": strict_convergence,
        "auto_converge": auto_converge,
        "post_copy": post_copy,
    }
    result, stats = run_handshake(source._driver, dest._driver, domain.name, params)
    new_domain = Domain(dest, result["name"], result.get("uuid"))
    new_domain.last_migration_stats = stats
    return new_domain


def _teardown(step: str, name: str, fn, *args, **kwargs) -> None:
    """Run one best-effort rollback step.

    A rollback exists to restore the pre-migration world after the real
    failure; if the cleanup itself fails (a dead destination daemon is
    the common case) that secondary error must never mask the original
    one — log it and move on.
    """
    try:
        fn(*args, **kwargs)
    except VirtError as exc:
        _log.error(
            "migration",
            f"rollback of {name!r}: {step} failed ({type(exc).__name__}: {exc}); "
            "suppressed in favour of the original error",
        )


def run_handshake(source_driver, dest_driver, name: str, params: dict):
    """The begin → prepare → perform → finish → confirm sequence.

    Shared by managed migration (client drives two connections) and
    peer-to-peer migration (the source *driver* drives it against a
    destination it dialled itself).

    When the source driver carries a metrics registry, each phase's
    modelled duration lands in ``migration_phase_seconds{phase=...}``;
    when it carries a tracer, every phase runs inside a
    ``migration.<phase>`` span, so a traced drain shows the handshake's
    anatomy nested under the guest's ``fleet.migrate`` span.
    """
    registry = getattr(source_driver, "metrics", None)
    tracer = getattr(source_driver, "tracer", None)
    phases = (
        registry.histogram(
            "migration_phase_seconds",
            "Modelled duration of migration handshake phases",
            ("phase",),
        )
        if registry is not None
        else None
    )

    def timed(phase, fn, *args, **kwargs):
        scope = (
            tracer.span(f"migration.{phase}", guest=name)
            if tracer is not None
            else nullcontext()
        )
        with scope:
            if phases is None:
                return fn(*args, **kwargs)
            started = registry.now()
            try:
                return fn(*args, **kwargs)
            finally:
                phases.labels(phase=phase).observe(registry.now() - started)

    description = timed("begin", source_driver.migrate_begin, name)
    cookie = timed("prepare", dest_driver.migrate_prepare, description)
    try:
        stats = timed("perform", source_driver.migrate_perform, name, cookie, params)
    except VirtError as exc:
        # roll back: drop the destination shell, resume the source.
        # Both steps are best-effort — the caller must see the
        # perform-phase cause, never a secondary teardown error.
        _teardown(
            "destination finish(failed)", name,
            dest_driver.migrate_finish, cookie, {"failed": True},
        )
        _teardown(
            "source confirm(cancelled)", name,
            source_driver.migrate_confirm, name, cancelled=True,
        )
        raise MigrationError(f"migration of {name!r} failed: {exc}") from exc
    try:
        result = timed("finish", dest_driver.migrate_finish, cookie, stats)
    except VirtError as exc:
        # destination failed to activate: resume the source, never lose
        # the guest — and never let the resume mask the activation error
        _teardown(
            "source confirm(cancelled)", name,
            source_driver.migrate_confirm, name, cancelled=True,
        )
        raise MigrationError(
            f"destination failed to activate {name!r}: {exc}"
        ) from exc
    timed("confirm", source_driver.migrate_confirm, name, cancelled=False)
    return result, stats
