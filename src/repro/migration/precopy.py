"""The pre-copy live migration algorithm, analytically modelled.

Pre-copy transfers guest RAM while the guest keeps running: round 1
copies all memory; each later round copies only the pages dirtied
during the previous round.  When the remaining dirty set is small
enough to move within the downtime budget, the guest is paused and the
final round runs stop-and-copy.

Convergence depends on the ratio r = dirty_rate / bandwidth:

* r < 1 — each round shrinks geometrically; total time ≈ M/B · 1/(1−r);
* r ≥ 1 — rounds stop shrinking; after ``max_rounds`` the algorithm
  gives up and falls back to stop-and-copy of the full remaining set,
  blowing through the downtime target (the non-convergence cliff the
  migration figure shows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import InvalidArgumentError

MIB = 1024 * 1024


@dataclass(frozen=True)
class PrecopyResult:
    """Outcome of one modelled pre-copy run."""

    rounds: int
    total_time_s: float
    downtime_s: float
    transferred_bytes: int
    converged: bool
    round_bytes: "tuple[int, ...]"

    @property
    def transferred_mib(self) -> float:
        return self.transferred_bytes / MIB


def run_precopy(
    memory_bytes: int,
    dirty_rate_bytes_s: float,
    bandwidth_bytes_s: float,
    max_downtime_s: float = 0.3,
    max_rounds: int = 30,
) -> PrecopyResult:
    """Model one pre-copy migration; returns the timing breakdown.

    Parameters mirror the knobs libvirt exposes: the guest memory size,
    its dirty-page rate, the migration link bandwidth, and the maximum
    tolerable downtime.
    """
    if memory_bytes <= 0:
        raise InvalidArgumentError("memory size must be positive")
    if bandwidth_bytes_s <= 0:
        raise InvalidArgumentError("bandwidth must be positive")
    if dirty_rate_bytes_s < 0:
        raise InvalidArgumentError("dirty rate must be non-negative")
    if max_downtime_s <= 0:
        raise InvalidArgumentError("downtime budget must be positive")
    if max_rounds < 1:
        raise InvalidArgumentError("need at least one round")

    downtime_budget_bytes = bandwidth_bytes_s * max_downtime_s
    to_send = float(memory_bytes)
    total_time = 0.0
    transferred = 0
    round_bytes: List[int] = []
    converged = True

    rounds = 0
    while True:
        rounds += 1
        if to_send <= downtime_budget_bytes:
            break  # small enough: stop-and-copy this remainder
        if rounds > max_rounds:
            converged = False
            break  # give up; force stop-and-copy of whatever remains
        send_time = to_send / bandwidth_bytes_s
        total_time += send_time
        transferred += int(to_send)
        round_bytes.append(int(to_send))
        # pages dirtied while this round was in flight (cannot exceed RAM)
        to_send = min(float(memory_bytes), dirty_rate_bytes_s * send_time)
        if dirty_rate_bytes_s == 0:
            to_send = 0.0

    # final stop-and-copy round: the guest is paused for this
    downtime = to_send / bandwidth_bytes_s
    total_time += downtime
    transferred += int(to_send)
    round_bytes.append(int(to_send))

    return PrecopyResult(
        rounds=rounds,
        total_time_s=total_time,
        downtime_s=downtime,
        transferred_bytes=transferred,
        converged=converged,
        round_bytes=tuple(round_bytes),
    )
