"""The pre-copy live migration algorithm, analytically modelled.

Pre-copy transfers guest RAM while the guest keeps running: round 1
copies all memory; each later round copies only the pages dirtied
during the previous round.  When the remaining dirty set is small
enough to move within the downtime budget, the guest is paused and the
final round runs stop-and-copy.

Convergence depends on the ratio r = dirty_rate / bandwidth:

* r < 1 — each round shrinks geometrically; total time ≈ M/B · 1/(1−r);
* r ≥ 1 — rounds stop shrinking; after ``max_rounds`` the algorithm
  gives up and falls back to stop-and-copy of the full remaining set,
  blowing through the downtime target (the non-convergence cliff the
  migration figure shows).

Two escape hatches model what QEMU does about the cliff:

* **auto-converge** (``auto_converge=True``) — when a copy round fails
  to shrink the dirty set, the guest's vCPUs are progressively
  throttled (20%, then +10% per stalled round, capped at 99%), cutting
  the modelled dirty rate until the rounds converge again.  The price
  is guest slowdown, recorded as ``throttle_pct``.
* **post-copy** (``post_copy=True``) — if the rounds still refuse to
  converge by ``max_rounds``, switch modes instead of blowing the
  budget: pause only long enough to move the device state, resume the
  guest on the destination, and stream the remaining pages while it
  runs there.  Downtime stays tiny and bounded; the remaining memory
  transfers exactly once (``postcopy_time_s``), because a page already
  moved can no longer be dirtied on the source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import InvalidArgumentError

MIB = 1024 * 1024

#: device/CPU state moved during a post-copy switchover pause
POSTCOPY_DEVICE_STATE_BYTES = 4 * MIB

#: auto-converge throttle schedule (QEMU defaults): initial pct, step, cap
THROTTLE_INITIAL = 20
THROTTLE_STEP = 10
THROTTLE_CAP = 99

#: a copy round counts as *stalled* unless it shrinks the dirty set
#: below this fraction of the previous round — merely-epsilon progress
#: (r barely under 1) would otherwise never finish within the budget
THROTTLE_PROGRESS = 0.95


@dataclass(frozen=True)
class PrecopyResult:
    """Outcome of one modelled pre-copy run."""

    rounds: int
    total_time_s: float
    downtime_s: float
    transferred_bytes: int
    converged: bool
    round_bytes: "tuple[int, ...]"
    #: True when the run fell back to post-copy after pre-copy stalled
    post_copy: bool = False
    #: seconds the guest ran *on the destination* while pages streamed in
    postcopy_time_s: float = 0.0
    #: the deepest auto-converge vCPU throttle applied (0 = never throttled)
    throttle_pct: int = 0

    @property
    def transferred_mib(self) -> float:
        return self.transferred_bytes / MIB


def run_precopy(
    memory_bytes: int,
    dirty_rate_bytes_s: float,
    bandwidth_bytes_s: float,
    max_downtime_s: float = 0.3,
    max_rounds: int = 30,
    auto_converge: bool = False,
    post_copy: bool = False,
) -> PrecopyResult:
    """Model one pre-copy migration; returns the timing breakdown.

    Parameters mirror the knobs libvirt exposes: the guest memory size,
    its dirty-page rate, the migration link bandwidth, the maximum
    tolerable downtime, and the VIR_MIGRATE_AUTO_CONVERGE /
    VIR_MIGRATE_POSTCOPY flags.
    """
    if memory_bytes <= 0:
        raise InvalidArgumentError("memory size must be positive")
    if bandwidth_bytes_s <= 0:
        raise InvalidArgumentError("bandwidth must be positive")
    if dirty_rate_bytes_s < 0:
        raise InvalidArgumentError("dirty rate must be non-negative")
    if max_downtime_s <= 0:
        raise InvalidArgumentError("downtime budget must be positive")
    if max_rounds < 1:
        raise InvalidArgumentError("need at least one round")

    downtime_budget_bytes = bandwidth_bytes_s * max_downtime_s
    to_send = float(memory_bytes)
    total_time = 0.0
    transferred = 0
    round_bytes: List[int] = []
    converged = True
    throttle = 0
    effective_dirty_rate = dirty_rate_bytes_s

    rounds = 0
    while True:
        rounds += 1
        if to_send <= downtime_budget_bytes:
            break  # small enough: stop-and-copy this remainder
        if rounds > max_rounds:
            converged = False
            break  # give up; post-copy if allowed, else forced stop-and-copy
        send_time = to_send / bandwidth_bytes_s
        total_time += send_time
        transferred += int(to_send)
        round_bytes.append(int(to_send))
        # pages dirtied while this round was in flight (cannot exceed RAM)
        next_send = min(float(memory_bytes), effective_dirty_rate * send_time)
        if dirty_rate_bytes_s == 0:
            next_send = 0.0
        if (
            auto_converge
            and throttle < THROTTLE_CAP
            and next_send >= to_send * THROTTLE_PROGRESS
        ):
            # the round stalled: throttle the guest's vCPUs so the next
            # round dirties less (the modelled CPU slowdown)
            throttle = (
                THROTTLE_INITIAL
                if throttle == 0
                else min(THROTTLE_CAP, throttle + THROTTLE_STEP)
            )
            effective_dirty_rate = dirty_rate_bytes_s * (1.0 - throttle / 100.0)
            next_send = min(float(memory_bytes), effective_dirty_rate * send_time)
        to_send = next_send

    if not converged and post_copy:
        # switch modes: pause only for the device state, resume on the
        # destination, stream the rest while the guest runs there
        downtime = POSTCOPY_DEVICE_STATE_BYTES / bandwidth_bytes_s
        postcopy_time = to_send / bandwidth_bytes_s
        total_time += downtime + postcopy_time
        transferred += POSTCOPY_DEVICE_STATE_BYTES + int(to_send)
        round_bytes.append(int(to_send))
        return PrecopyResult(
            rounds=rounds,
            total_time_s=total_time,
            downtime_s=downtime,
            transferred_bytes=transferred,
            converged=False,
            round_bytes=tuple(round_bytes),
            post_copy=True,
            postcopy_time_s=postcopy_time,
            throttle_pct=throttle,
        )

    # final stop-and-copy round: the guest is paused for this
    downtime = to_send / bandwidth_bytes_s
    total_time += downtime
    transferred += int(to_send)
    round_bytes.append(int(to_send))

    return PrecopyResult(
        rounds=rounds,
        total_time_s=total_time,
        downtime_s=downtime,
        transferred_bytes=transferred,
        converged=converged,
        round_bytes=tuple(round_bytes),
        throttle_pct=throttle,
    )
