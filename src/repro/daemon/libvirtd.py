"""The daemon: drivers behind the wire protocol.

One :class:`Libvirtd` hosts the node's stateful drivers (qemu, xen,
lxc, test by default), listens on one or more transports, tracks the
connected clients against a configurable limit, dispatches calls
through a workerpool whose destructive operations ride the priority
lane, and fans lifecycle events out to subscribed clients.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional

from repro.core.states import DomainEvent
from repro.core.uri import ConnectionURI
from repro.daemon.client import ClientRecord
from repro.daemon.registry import register_daemon, unregister_daemon
from repro.errors import (
    ConnectionError_,
    DaemonCrashError,
    InvalidArgumentError,
    InvalidURIError,
    OperationFailedError,
    VirtError,
)
from repro.faults.crash import CrashPoint
from repro.observability.export import log_metrics, render_prometheus
from repro.observability.flightrec import FlightRecorder, interrupted_dispatches
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer
from repro.rpc.protocol import (
    EVENT_BUS_RECORD,
    EVENT_DAEMON_SHUTDOWN,
    EVENT_DOMAIN_LIFECYCLE,
)
from repro.rpc.server import RPCServer
from repro.rpc.transport import Listener, ServerConnection
from repro.util.clock import Clock, VirtualClock
from repro.util.threadpool import WorkerPool
from repro.util.virtlog import LOG_ERROR, LOG_INFO, Logger


class Libvirtd:
    """One daemon instance serving one simulated host."""

    def __init__(
        self,
        hostname: str = "localhost",
        drivers: "Optional[Dict[str, Any]]" = None,
        clock: "Optional[Clock]" = None,
        min_workers: int = 5,
        max_workers: int = 20,
        prio_workers: int = 5,
        max_clients: int = 120,
        max_client_requests: int = 5,
        use_pool: bool = True,
        log_level: int = LOG_ERROR,
        register: bool = True,
        state_dir: "Optional[str]" = None,
    ) -> None:
        self.hostname = hostname
        self.clock = clock or VirtualClock()
        #: the daemon-wide instrument panel, stamped in modelled time
        self.metrics = MetricsRegistry(now=self.clock.now)
        self.tracer = Tracer(self.clock.now, metrics=self.metrics)
        #: the black box: last-N control-plane facts, crash-durable once
        #: a state_dir attaches a StateDir to it (``flight-dump``)
        self.flight_recorder = FlightRecorder(self.clock.now)
        self._m_driver_ops = self.metrics.histogram(
            "driver_op_seconds",
            "Modelled latency of driver operations, by backend and procedure",
            ("driver", "procedure"),
        )
        self.metrics.gauge(
            "daemon_clients", "Connected clients", ("server",)
        )
        self.drivers = drivers if drivers is not None else self._default_drivers()
        for driver in self.drivers.values():
            # hosted drivers report into the daemon's registry (they keep
            # a registry they were already constructed with, if any)
            if getattr(driver, "metrics", None) is None:
                driver.metrics = self.metrics
            if getattr(driver, "tracer", None) is None:
                driver.tracer = self.tracer
            # broken event subscribers surface in the daemon's log
            events = getattr(driver, "events", None)
            if events is not None and hasattr(events, "attach_observability"):
                events.attach_observability(logger=lambda: self.logger)
            # the flight recorder shadows the event bus through the tap
            # slot: every published record leaves a black-box line, but
            # client subscription accounting stays untouched
            if events is not None and hasattr(events, "tap"):
                events.tap = self._record_bus_event
        self.pool = WorkerPool(
            min_workers=min_workers,
            max_workers=max_workers,
            prio_workers=prio_workers,
            name=f"libvirtd@{hostname}",
            metrics=self.metrics,
            now=self.clock.now,
        )
        self.rpc = RPCServer(
            pool=self.pool if use_pool else None,
            metrics=self.metrics,
            tracer=self.tracer,
            name="libvirtd",
            max_client_requests=max_client_requests,
        )
        self.logger = Logger(level=log_level, clock=self.clock.now)
        self.max_clients = max_clients
        #: per-server workerpools and client limits ("libvirtd" + optional "admin")
        self.server_pools: Dict[str, WorkerPool] = {"libvirtd": self.pool}
        self._server_max_clients: Dict[str, int] = {"libvirtd": max_clients}
        self._rpc_by_server: Dict[str, RPCServer] = {"libvirtd": self.rpc}
        self._listeners: Dict[str, Listener] = {}
        self._clients: Dict[int, ClientRecord] = {}
        self._by_conn: Dict[ServerConnection, ClientRecord] = {}
        self._next_client_id = 1
        self._lock = threading.Lock()
        self._shut_down = False
        self._client_gauge("libvirtd")
        #: timer scheduler for periodic maintenance (keepalive reaping)
        from repro.util.eventloop import EventLoop

        self.eventloop = EventLoop(self.clock.now)
        self._keepalive_timeout: "Optional[float]" = None
        #: maintenance timer ids owned by the daemon, cancelled on shutdown
        self._maintenance_timers: List[int] = []
        #: seeded daemon-kill script (see repro.faults.crash); None = off
        self.crash_plan = None
        #: durable state root; None keeps the daemon purely in-memory
        self.state_dir = state_dir
        #: per-driver recovery audit from startup (driver name -> stats)
        self.recovery: Dict[str, Dict[str, Any]] = {}
        if state_dir is not None:
            self._attach_persistence(state_dir)
        self.rpc.on_ping = self._on_keepalive_ping
        self.rpc.recorder = self.flight_recorder
        self._register_handlers()
        if register:
            register_daemon(hostname, self)

    def _client_gauge(self, server: str) -> None:
        """Live-view gauge: connected clients on one server object."""
        self.metrics.get("daemon_clients").labels(server=server).set_function(
            lambda: sum(
                1
                for r in self._clients.values()
                if not r.conn.closed and r.server == server
            )
        )

    def _record_bus_event(self, record: Dict[str, Any]) -> None:
        """Event-bus subscriber feeding the flight recorder: every record
        the bus delivers leaves one line in the crash-surviving tail."""
        self.flight_recorder.record(
            "event",
            seq=record.get("seq"),
            event_kind=record.get("kind"),
            domain=record.get("domain"),
            event=record.get("event"),
        )

    def _on_keepalive_ping(self, conn: ServerConnection) -> None:
        """A KEEPALIVE PING proves the client is alive: refresh its
        activity stamp so the idle reaper leaves the connection alone."""
        with self._lock:
            record = self._by_conn.get(conn)
        if record is not None:
            record.last_activity = self.clock.now()

    def _default_drivers(self) -> Dict[str, Any]:
        from repro.drivers.lxc import LxcDriver
        from repro.drivers.qemu import QemuDriver
        from repro.drivers.test import TestDriver
        from repro.drivers.xen import XenDriver
        from repro.hypervisors.container_backend import ContainerBackend
        from repro.hypervisors.host import SimHost
        from repro.hypervisors.qemu_backend import QemuBackend
        from repro.hypervisors.xen_backend import XenBackend

        def host() -> SimHost:
            return SimHost(hostname=self.hostname, clock=self.clock)

        qemu = QemuDriver(QemuBackend(host=host(), clock=self.clock))
        return {
            "qemu": qemu,
            "kvm": qemu,
            "xen": XenDriver(XenBackend(host=host(), clock=self.clock)),
            "lxc": LxcDriver(ContainerBackend(host=host(), clock=self.clock)),
            "test": __import__(
                "repro.drivers.test", fromlist=["TestDriver"]
            ).TestDriver(seed_default=False),
        }

    # ==================================================================
    # persistence & crash injection
    # ==================================================================

    def _unique_drivers(self) -> List[Any]:
        """Hosted driver objects, deduplicated (qemu/kvm share one)."""
        unique: List[Any] = []
        for driver in self.drivers.values():
            if not any(existing is driver for existing in unique):
                unique.append(driver)
        return unique

    def _attach_persistence(self, root: str) -> None:
        """Give every stateful driver a journal under ``root`` and run
        recovery against whatever the journal + backend reality say.

        Each driver gets its own subdirectory (the qemu/kvm alias maps
        to one journal).  Recovery happens here, before the daemon takes
        its first call: a restarted daemon re-adopts running guests
        non-intrusively and fails interrupted jobs cleanly.
        """
        import os

        from repro.state import StateDir, StateJournal

        # the flight recorder recovers first: a previous incarnation's
        # tail names the dispatches its death interrupted, and those
        # spans must be closed before this incarnation starts tracing
        self.flight_recorder.statedir = StateDir(os.path.join(root, "flightrec"))
        tail = self.flight_recorder.recover()
        interrupted = 0
        for begun in interrupted_dispatches(tail):
            if begun.get("span_id") is None:
                continue
            self.tracer.record_interrupted(
                "rpc.dispatch",
                span_id=begun["span_id"],
                trace_id=begun.get("trace_id") or begun["span_id"],
                parent_id=begun.get("parent_id"),
                start=begun.get("start", begun.get("t", 0.0)),
                procedure=begun.get("procedure"),
                serial=begun.get("serial"),
            )
            interrupted += 1
        if tail or interrupted:
            self.flight_recorder.record(
                "recovery", recovered=len(tail), interrupted_spans=interrupted
            )
            self.recovery["flightrec"] = {
                "records": len(tail),
                "interrupted_spans": interrupted,
            }

        journal_lag = self.metrics.gauge(
            "journal_tail_records",
            "Journal records appended since the last snapshot checkpoint",
            ("driver",),
        )
        for driver in self._unique_drivers():
            if not hasattr(driver, "attach_state"):
                continue
            journal = StateJournal(
                StateDir(os.path.join(root, driver.name)), clock=self.clock
            )
            journal.on_append = (
                lambda kind, key, lsn, name=driver.name: self.flight_recorder.record(
                    "journal", driver=name, record_kind=kind, key=key, lsn=lsn
                )
            )
            journal_lag.labels(driver=driver.name).set_function(
                lambda j=journal: float(j.tail_records)
            )
            driver.attach_state(journal)
            stats = driver.recover_state()
            self.recovery[driver.name] = stats
            if stats.get("domains") or stats.get("adopted") or stats.get("failed_jobs"):
                self.logger.info(
                    "daemon.recovery",
                    f"driver {driver.name}: recovered {stats.get('domains', 0)} "
                    f"domains, adopted {stats.get('adopted', 0)}, failed "
                    f"{len(stats.get('failed_jobs', []))} interrupted jobs",
                )

    def install_crash_plan(self, plan: Any) -> "Libvirtd":
        """Arm seeded daemon-kill injection on this incarnation.

        The plan is consulted at ``MID_DISPATCH``/``POST_JOURNAL`` for
        every dispatched driver call, and at ``MID_JOURNAL`` inside every
        driver journal write.  Installed after construction, so recovery
        itself is never crash-injected (a real daemon cannot be killed
        by a journal it is merely reading).
        """
        self.crash_plan = plan
        for driver in self._unique_drivers():
            if hasattr(driver, "crash_plan"):
                driver.crash_plan = plan
        return self

    def _maybe_crash(self, point: CrashPoint, procedure: str) -> None:
        plan = self.crash_plan
        if plan is not None and plan.decide(point, procedure, self.clock.now()):
            # last words first: the hit reaches the durable tail before
            # the process dies, so the dump names its own killer
            self.flight_recorder.record(
                "crash", point=point.value, procedure=procedure
            )
            self.crash()
            raise DaemonCrashError(
                f"daemon crashed at {point.value} during {procedure}"
            )

    def crash(self) -> None:
        """Die like ``kill -9``: no drain, no journal flush, no goodbyes.

        Every client link is severed silently (the peer discovers the
        death through keepalive or its next call), listeners stop
        accepting, and the hostname is deregistered so a restarted
        incarnation can take it over.  Driver memory is *not* cleaned
        up — it dies with this object, exactly like process memory.
        """
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
            records = list(self._clients.values())
            listeners = list(self._listeners.values())
            timers = list(self._maintenance_timers)
            self._maintenance_timers.clear()
            self._clients.clear()
            self._by_conn.clear()
        for record in records:
            try:
                record.conn.channel.sever()
            except VirtError:
                pass
            # streams die with the process: nothing may dangle, and an
            # upload that never reached its commit leaves no trace
            self.rpc.abort_connection_streams(record.conn, "daemon crashed")
        for listener in listeners:
            listener.close_all()
        for timer_id in timers:
            self.eventloop.cancel(timer_id)
        unregister_daemon(self.hostname)

    # ==================================================================
    # listeners & client management
    # ==================================================================

    def listen(
        self,
        transport: str = "unix",
        authenticator: "Optional[Callable[[Dict[str, Any]], Dict[str, Any]]]" = None,
        server: str = "libvirtd",
    ) -> Listener:
        """Open a service on ``transport`` (one per server+transport)."""
        key = f"{server}:{transport}"
        with self._lock:
            if key in self._listeners:
                return self._listeners[key]
        listener = Listener(
            transport,
            clock=self.clock,
            authenticator=authenticator,
            on_accept=lambda conn: self._accept(conn, server),
            metrics=self.metrics,
        )
        with self._lock:
            self._listeners[key] = listener
        self.logger.info("rpc.server", f"server {server} listening on {transport}")
        return listener

    def listener(self, transport: str, server: str = "libvirtd") -> Listener:
        with self._lock:
            listener = self._listeners.get(f"{server}:{transport}")
        if listener is None:
            raise ConnectionError_(
                f"daemon {self.hostname!r} server {server!r} is not listening "
                f"on {transport!r}"
            )
        return listener

    def enable_admin(
        self,
        authenticator: "Optional[Callable[[Dict[str, Any]], Dict[str, Any]]]" = None,
    ) -> Listener:
        """Bring up the *admin* server: a second server object inside the
        daemon with its own workerpool, reachable root-only over a UNIX
        socket, exposing the runtime-administration procedures."""
        from repro.daemon.admin_server import default_admin_authenticator, register_admin_handlers

        with self._lock:
            already = "admin" in self.server_pools
        if not already:
            admin_pool = WorkerPool(
                min_workers=1, max_workers=5, prio_workers=1,
                name=f"admin@{self.hostname}",
                metrics=self.metrics,
                now=self.clock.now,
            )
            admin_rpc = RPCServer(
                pool=admin_pool, metrics=self.metrics, tracer=self.tracer,
                name="admin",
            )
            admin_rpc.on_ping = self._on_keepalive_ping
            register_admin_handlers(admin_rpc, self)
            with self._lock:
                self.server_pools["admin"] = admin_pool
                self._rpc_by_server["admin"] = admin_rpc
                self._server_max_clients["admin"] = 5
            self._client_gauge("admin")
        return self.listen(
            "unix",
            authenticator=authenticator or default_admin_authenticator,
            server="admin",
        )

    def server_names(self) -> "list[str]":
        """The servers contained in this daemon (``srv-list``)."""
        with self._lock:
            return sorted(self.server_pools)

    def _accept(self, conn: ServerConnection, server: str = "libvirtd") -> None:
        with self._lock:
            if self._shut_down:
                raise ConnectionError_("daemon is shutting down")
            limit = self._server_max_clients.get(server, self.max_clients)
            live = sum(
                1
                for r in self._clients.values()
                if not r.conn.closed and r.server == server
            )
            if live >= limit:
                self.logger.warn(
                    "rpc.server",
                    f"refusing connection: {live}/{limit} clients on {server}",
                )
                raise OperationFailedError(
                    f"daemon {self.hostname!r} server {server!r} reached "
                    f"max_clients={limit}"
                )
            record = ClientRecord(
                self._next_client_id, conn, self.clock.now(), server=server
            )
            self._next_client_id += 1
            self._clients[record.id] = record
            self._by_conn[conn] = record
            rpc = self._rpc_by_server[server]
        rpc.attach(conn)
        self.logger.info(
            "rpc.server", f"client {record.id} connected via {record.transport}"
        )

    def list_clients(self, server: "Optional[str]" = None) -> List[Dict[str, Any]]:
        """``client-list``: every live client, pruning dead ones."""
        self._prune()
        with self._lock:
            records = sorted(self._clients.values(), key=lambda r: r.id)
            if server is not None:
                records = [r for r in records if r.server == server]
            return [r.summary() for r in records]

    def client_info(self, client_id: int) -> Dict[str, Any]:
        with self._lock:
            record = self._clients.get(client_id)
        if record is None:
            raise InvalidArgumentError(f"no client with id {client_id}")
        return record.info()

    def disconnect_client(self, client_id: int) -> None:
        """Force-close one client's connection (``client-disconnect``)."""
        with self._lock:
            record = self._clients.get(client_id)
        if record is None:
            raise InvalidArgumentError(f"no client with id {client_id}")
        self._cleanup_client(record)
        record.conn.close()
        self.logger.info("rpc.server", f"client {client_id} disconnected forcefully")

    def set_max_clients(self, limit: int, server: str = "libvirtd") -> None:
        if limit < 1:
            raise InvalidArgumentError("max_clients must be at least 1")
        with self._lock:
            if server not in self.server_pools:
                raise InvalidArgumentError(f"no server named {server!r}")
            self._server_max_clients[server] = limit
            if server == "libvirtd":
                self.max_clients = limit

    def get_max_clients(self, server: str = "libvirtd") -> int:
        with self._lock:
            if server not in self.server_pools:
                raise InvalidArgumentError(f"no server named {server!r}")
            return self._server_max_clients[server]

    def set_max_client_requests(self, value: int, server: str = "libvirtd") -> None:
        """Resize the per-connection in-flight request window."""
        with self._lock:
            rpc = self._rpc_by_server.get(server)
        if rpc is None:
            raise InvalidArgumentError(f"no server named {server!r}")
        rpc.set_max_client_requests(value)

    def get_max_client_requests(self, server: str = "libvirtd") -> int:
        with self._lock:
            rpc = self._rpc_by_server.get(server)
        if rpc is None:
            raise InvalidArgumentError(f"no server named {server!r}")
        return rpc.max_client_requests

    def _prune(self) -> None:
        with self._lock:
            dead = [r for r in self._clients.values() if r.conn.closed]
            for record in dead:
                self._clients.pop(record.id, None)
                self._by_conn.pop(record.conn, None)
        for record in dead:
            self._cleanup_client(record)

    def _cleanup_client(self, record: ClientRecord, clean: bool = False) -> None:
        if record.event_callback_id is not None and record.driver is not None:
            try:
                record.driver.domain_event_deregister(record.event_callback_id)
            except VirtError:
                pass
            record.event_callback_id = None
        if record.bus_subscription_id is not None and record.driver is not None:
            try:
                record.driver.event_bus_unsubscribe(record.bus_subscription_id)
            except VirtError:
                pass
            record.bus_subscription_id = None
        if not clean and record.owned_jobs and record.driver is not None:
            # a severed transport must not wedge the domain: fail any
            # background job this client started so its cleanup runs
            engine = getattr(record.driver, "jobs", None)
            if engine is not None:
                for domain in sorted(record.owned_jobs):
                    try:
                        if engine.fail_active(
                            domain, "client disconnected during job"
                        ):
                            self.logger.info(
                                "rpc.server",
                                f"client {record.id} vanished, failed "
                                f"background job on domain {domain!r}",
                            )
                    except VirtError:
                        pass
        record.owned_jobs.clear()
        # open streams never survive their connection: abort them so a
        # half-sent upload is discarded, not committed
        self.rpc.abort_connection_streams(
            record.conn,
            "client disconnected" if clean else "client connection lost",
        )
        with self._lock:
            self._clients.pop(record.id, None)
            self._by_conn.pop(record.conn, None)

    # -- keepalive ---------------------------------------------------------

    def enable_keepalive(self, timeout: float, check_interval: "Optional[float]" = None) -> None:
        """Reap clients idle longer than ``timeout`` modelled seconds.

        The check runs from the daemon's event loop; drive it with
        :meth:`tick` (the simulation's stand-in for the poll loop).
        """
        if timeout <= 0:
            raise InvalidArgumentError("keepalive timeout must be positive")
        self._keepalive_timeout = timeout
        timer_id = self.eventloop.add_interval(
            check_interval or timeout / 2, self.reap_idle_clients
        )
        with self._lock:
            self._maintenance_timers.append(timer_id)

    def reap_idle_clients(self) -> "List[int]":
        """Force-disconnect every client idle beyond the keepalive timeout."""
        if self._keepalive_timeout is None:
            return []
        now = self.clock.now()
        with self._lock:
            stale = [
                record
                for record in self._clients.values()
                if not record.conn.closed
                and now - record.last_activity > self._keepalive_timeout
            ]
        reaped = []
        for record in stale:
            self.logger.info(
                "rpc.server",
                f"client {record.id} idle {now - record.last_activity:.0f}s, reaping",
            )
            self._cleanup_client(record)
            record.conn.close()
            reaped.append(record.id)
        return reaped

    def tick(self) -> int:
        """Run due maintenance timers (keepalive); returns timers fired."""
        return self.eventloop.run_due()

    def stats(self) -> Dict[str, Any]:
        """The daemon health snapshot the admin interface would expose."""
        self._prune()
        pool = self.pool.stats()
        with self._lock:
            nclients = len(self._clients)
        return {
            "hostname": self.hostname,
            "nclients": nclients,
            "max_clients": self.max_clients,
            "calls_served": self.rpc.calls_served,
            "calls_failed": self.rpc.calls_failed,
            **pool,
        }

    # -- observability surface ---------------------------------------------

    def server_stats(self, server: str = "libvirtd") -> Dict[str, Any]:
        """Live metrics for one server object (``virt-admin server-stats``).

        Combines the workerpool counters, the RPC dispatcher counters,
        per-driver operation latency summaries, and the keepalive/span
        totals into one plain-data payload.
        """
        self._prune()
        with self._lock:
            if server not in self.server_pools:
                raise InvalidArgumentError(f"no server named {server!r}")
            pool = self.server_pools[server]
            rpc = self._rpc_by_server[server]
            nclients = sum(
                1
                for r in self._clients.values()
                if not r.conn.closed and r.server == server
            )
            limit = self._server_max_clients[server]
        drivers: Dict[str, Dict[str, Any]] = {}
        for labels, child in self._m_driver_ops.samples():
            summary = child.summary()
            if not summary["count"]:
                continue  # stale child left by reset-stats
            per = drivers.setdefault(
                labels["driver"], {"ops": 0, "seconds": 0.0, "procedures": {}}
            )
            per["ops"] += int(summary["count"])
            per["seconds"] += summary["sum"]
            per["procedures"][labels["procedure"]] = {
                "count": int(summary["count"]),
                "mean_seconds": summary["mean"],
            }
        rpc_stats: Dict[str, Any] = {
            "calls_served": rpc.calls_served,
            "calls_failed": rpc.calls_failed,
            "pings_answered": rpc.pings_answered,
            "calls_queued": rpc.calls_queued,
            "calls_rejected": rpc.calls_rejected,
            "calls_inflight": rpc.inflight_calls(),
            "max_client_requests": rpc.max_client_requests,
        }
        if rpc.metrics is not None and "rpc_server_dispatch_seconds" in rpc.metrics:
            dispatch = rpc.metrics.get("rpc_server_dispatch_seconds")
            procedures: Dict[str, Any] = {}
            for labels, child in dispatch.samples():
                if labels.get("server") != server:
                    continue
                summary = child.summary()
                if not summary["count"]:
                    continue  # stale child left by reset-stats
                procedures[labels["procedure"]] = {
                    "count": int(summary["count"]),
                    "mean_seconds": summary["mean"],
                    "max_seconds": summary["max"],
                }
            rpc_stats["procedures"] = procedures
        return {
            "hostname": self.hostname,
            "server": server,
            "timestamp": self.metrics.now(),
            "clients": {"connected": nclients, "max": limit},
            "workerpool": pool.stats(),
            "jobs_completed": pool.jobs_completed,
            "rpc": rpc_stats,
            "drivers": drivers,
            "tracing": {
                "spans_started": self.tracer.spans_started,
                "spans_finished": self.tracer.spans_finished,
                "spans_failed": self.tracer.spans_failed,
                "spans_orphaned": self.tracer.spans_orphaned,
                "spans_propagated": self.tracer.spans_propagated,
                "spans_open": self.tracer.spans_open,
            },
        }

    def trace_list(self, limit: "Optional[int]" = None) -> List[Dict[str, Any]]:
        """Known traces, oldest first: one summary row per trace id,
        covering finished and still-in-flight spans alike."""
        return self.tracer.trace_summaries(limit=limit)

    def trace_get(self, trace_id: int) -> List[Dict[str, Any]]:
        """Every buffered span of one trace as plain dicts (in-flight
        spans included, with ``end``/``duration`` of None)."""
        spans = self.tracer.export(trace_id=trace_id, include_open=True)
        if not spans:
            raise InvalidArgumentError(f"no trace with id {trace_id}")
        return spans

    def client_stats(self, client_id: "Optional[int]" = None) -> Any:
        """Per-client traffic/activity stats (``virt-admin client-stats``)."""
        self._prune()
        with self._lock:
            records = sorted(self._clients.values(), key=lambda r: r.id)
        if client_id is not None:
            match = [r for r in records if r.id == client_id]
            if not match:
                raise InvalidArgumentError(f"no client with id {client_id}")
            records = match
        out = []
        for record in records:
            entry = record.info()
            entry["last_activity"] = record.last_activity
            entry["bytes_in"] = record.conn.bytes_in
            entry["bytes_out"] = record.conn.bytes_out
            out.append(entry)
        return out[0] if client_id is not None else out

    def reset_stats(self) -> Dict[str, Any]:
        """Zero every counter/histogram and the span buffer; live-view
        gauges keep mirroring component state.  Returns what was reset."""
        families = len(self.metrics.families())
        spans = self.tracer.spans_finished
        self.metrics.reset()
        self.tracer.reset()
        with self._lock:
            rpcs = list(self._rpc_by_server.values())
        for rpc in rpcs:
            rpc.reset_counters()
        self.logger.structured(
            LOG_INFO, "observability.metrics", "stats_reset",
            families=families, spans_dropped=spans,
        )
        return {"families_reset": families, "spans_dropped": spans}

    def metrics_text(self) -> str:
        """The Prometheus exposition page for this daemon's registry."""
        return render_prometheus(self.metrics)

    def flight_dump(self) -> Dict[str, Any]:
        """The flight recorder's current ring plus its lifetime stats."""
        return self.flight_recorder.dump()

    def enable_stats_logging(
        self, interval: float, priority: int = LOG_INFO
    ) -> int:
        """Periodically emit every metric sample as a structured log
        line through the virtlog pipeline; returns the timer id."""
        if interval <= 0:
            raise InvalidArgumentError("stats logging interval must be positive")
        timer_id = self.eventloop.add_interval(
            interval,
            lambda: log_metrics(self.logger, self.metrics, priority=priority),
        )
        with self._lock:
            self._maintenance_timers.append(timer_id)
        return timer_id

    def shutdown(self) -> None:
        """Graceful drain, the opposite of :meth:`crash`.

        Ordering is the whole point:

        1. stop accepting new clients (``_shut_down`` gates ``_accept``);
        2. notify connected clients (``EVENT_DAEMON_SHUTDOWN``) while
           their links still work;
        3. fail still-active background jobs so their cleanup runs and
           the FAILED outcome is journalled, not wedged;
        4. drain each driver's event bus (queued records reach their
           subscribers while the links still work) and flush its
           journal into a snapshot (fast recovery);
        5. close every client cleanly *before* tearing down listeners,
           so a client sees exactly one clean close — never a spurious
           keepalive timeout racing a half-closed link;
        6. cancel the daemon's maintenance timers (keepalive reaper,
           stats logging) so nothing fires into a dead daemon;
        7. stop the workerpools and release the hostname.
        """
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
            records = list(self._clients.values())
            listeners = list(self._listeners.values())
            timers = list(self._maintenance_timers)
            self._maintenance_timers.clear()
        for record in records:
            try:
                self._rpc_by_server[record.server].emit_event(
                    record.conn, EVENT_DAEMON_SHUTDOWN, {"hostname": self.hostname}
                )
            except VirtError:
                pass  # that client is already gone; keep draining
        for driver in self._unique_drivers():
            engine = getattr(driver, "jobs", None)
            if engine is not None:
                for domain in engine.active_domains():
                    try:
                        engine.fail_active(domain, "daemon shut down during job")
                    except VirtError:
                        pass
            # push out any event records still queued for slow subscribers
            # while the client links are up — the drain half of the bus
            events = getattr(driver, "events", None)
            if events is not None and hasattr(events, "drain_all"):
                events.drain_all()
            flush = getattr(driver, "flush_state", None)
            if flush is not None:
                flush()
        # the flight recorder's last graceful word, then compact the ring
        # to disk so the next incarnation recovers a clean tail
        self.flight_recorder.record("shutdown", hostname=self.hostname)
        self.flight_recorder.flush()
        for record in records:
            self._cleanup_client(record, clean=True)
            record.conn.close()
        for listener in listeners:
            listener.close_all()
        for timer_id in timers:
            self.eventloop.cancel(timer_id)
        with self._lock:
            pools = list(self.server_pools.values())
        for pool in pools:
            pool.shutdown()
        unregister_daemon(self.hostname)

    def __enter__(self) -> "Libvirtd":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ==================================================================
    # RPC procedure handlers
    # ==================================================================

    def _record_of(self, conn: ServerConnection) -> ClientRecord:
        with self._lock:
            record = self._by_conn.get(conn)
        if record is None:
            raise ConnectionError_("unknown connection")
        return record

    def _driver_of(self, conn: ServerConnection) -> Any:
        record = self._record_of(conn)
        if record.driver is None:
            raise ConnectionError_("connection not opened (call connect.open first)")
        return record.driver

    def _wrap(self, fn: Callable[[Any, Any], Any]) -> Callable[[ServerConnection, Any], Any]:
        def handler(conn: ServerConnection, body: Any) -> Any:
            record = self._record_of(conn)
            record.calls += 1
            record.last_activity = self.clock.now()
            driver = self._driver_of(conn)
            # ``procedure`` is stamped onto the handler at registration
            procedure = getattr(handler, "procedure", "unknown")
            # kill point 1: the call arrived but nothing has happened yet
            self._maybe_crash(CrashPoint.MID_DISPATCH, procedure)
            label = getattr(driver, "name", type(driver).__name__)
            started = self.clock.now()
            scope = (
                self.tracer.span("driver.op", driver=label, procedure=procedure)
                if self.tracer is not None
                else nullcontext()
            )
            with scope:
                try:
                    result = fn(driver, body or {})
                except DaemonCrashError:
                    # kill point 2 fired inside a journal write: the
                    # driver already tore the record, now the process dies
                    self.flight_recorder.record(
                        "crash",
                        point=CrashPoint.MID_JOURNAL.value,
                        procedure=procedure,
                    )
                    self.crash()
                    raise
            self._m_driver_ops.labels(driver=label, procedure=procedure).observe(
                self.clock.now() - started
            )
            # kill point 3: mutation + journal durable, reply never sent
            self._maybe_crash(CrashPoint.POST_JOURNAL, procedure)
            return result

        return handler

    def _h_ping(self, conn: ServerConnection, body: Any) -> Any:
        """Keepalive probe: counts as client activity, echoes the body."""
        record = self._record_of(conn)
        record.calls += 1
        record.last_activity = self.clock.now()
        return body if body is not None else "pong"

    def _h_open(self, conn: ServerConnection, body: Any) -> Any:
        record = self._record_of(conn)
        record.calls += 1
        record.last_activity = self.clock.now()
        uri_text = (body or {}).get("uri")
        if not uri_text:
            raise InvalidArgumentError("connect.open requires a uri")
        uri = ConnectionURI.parse(uri_text)
        driver = self.drivers.get(uri.driver)
        if driver is None:
            raise InvalidURIError(
                f"daemon {self.hostname!r} has no driver for scheme {uri.driver!r}"
            )
        record.driver = driver
        self.logger.debug("rpc.server", f"client {record.id} opened {uri_text}")
        return {"uri": uri_text}

    def _h_close(self, conn: ServerConnection, body: Any) -> Any:
        record = self._record_of(conn)
        self._cleanup_client(record, clean=True)
        return None

    def _h_event_register(self, conn: ServerConnection, body: Any) -> Any:
        record = self._record_of(conn)
        driver = self._driver_of(conn)
        if record.event_callback_id is not None:
            return record.event_callback_id

        def forward(domain: str, event: DomainEvent, detail: str) -> None:
            try:
                self.rpc.emit_event(
                    conn,
                    EVENT_DOMAIN_LIFECYCLE,
                    {"domain": domain, "event": int(event), "detail": detail},
                )
            except VirtError:
                # client went away: stop forwarding
                if record.event_callback_id is not None:
                    try:
                        driver.domain_event_deregister(record.event_callback_id)
                    except VirtError:
                        pass
                    record.event_callback_id = None

        record.event_callback_id = driver.domain_event_register(forward)
        return record.event_callback_id

    def _h_event_deregister(self, conn: ServerConnection, body: Any) -> Any:
        record = self._record_of(conn)
        driver = self._driver_of(conn)
        if record.event_callback_id is not None:
            driver.domain_event_deregister(record.event_callback_id)
            record.event_callback_id = None
        return None

    def _h_event_subscribe(self, conn: ServerConnection, body: Any) -> Any:
        """Arm bus-record push: every matching record becomes an EVENT frame."""
        record = self._record_of(conn)
        driver = self._driver_of(conn)
        if record.bus_subscription_id is not None:
            return record.bus_subscription_id
        kinds = (body or {}).get("kinds") or None

        def forward(bus_record: Dict[str, Any]) -> None:
            try:
                self.rpc.emit_event(conn, EVENT_BUS_RECORD, bus_record)
            except VirtError:
                # client went away: stop forwarding
                if record.bus_subscription_id is not None:
                    try:
                        driver.event_bus_unsubscribe(record.bus_subscription_id)
                    except VirtError:
                        pass
                    record.bus_subscription_id = None

        record.bus_subscription_id = driver.event_bus_subscribe(forward, kinds=kinds)
        return record.bus_subscription_id

    def _h_event_unsubscribe(self, conn: ServerConnection, body: Any) -> Any:
        record = self._record_of(conn)
        driver = self._driver_of(conn)
        if record.bus_subscription_id is not None:
            driver.event_bus_unsubscribe(record.bus_subscription_id)
            record.bus_subscription_id = None
        return None

    def _h_backup_begin(self) -> Callable[[ServerConnection, Any], Any]:
        base = self._wrap(
            lambda d, b: d.backup_begin(b["name"], b.get("options") or {})
        )
        # the outer bookkeeping wrapper gets the registration stamp, so
        # label the inner driver-op handler by hand
        base.procedure = "domain.backup_begin"

        def handler(conn: ServerConnection, body: Any) -> Any:
            result = base(conn, body)
            # remember who started the job: an unclean disconnect of
            # this client fails it rather than leaving it to run with
            # nobody able to observe or cancel it
            record = self._record_of(conn)
            record.owned_jobs.add((body or {})["name"])
            return result

        return handler

    # -- stream-backed procedures -------------------------------------------
    #
    # Each opening CALL validates its arguments through a ``_wrap``-ed
    # driver call (so crash points, spans and the driver-op metric apply),
    # then attaches a ``ServerStream`` to move the bulk payload outside
    # the procedure-call path.  Uploads stage chunks and commit through
    # the driver in ONE journaled call at finish time: a crash or abort
    # mid-stream therefore leaves the volume untouched.

    def _h_vol_upload(self) -> Callable[[ServerConnection, Any], Any]:
        validate = self._wrap(
            lambda d, b: d.storage_vol_get_info(b["pool"], b["volume"])
        )
        validate.procedure = "storage.vol_upload"
        commit = self._wrap(
            lambda d, b: d.storage_vol_upload(
                b["pool"], b["volume"], b["data"], b["offset"]
            )
        )
        commit.procedure = "storage.vol_upload"

        def handler(conn: ServerConnection, body: Any) -> Any:
            body = body or {}
            pool, volume = body["pool"], body["volume"]
            offset = int(body.get("offset") or 0)
            info = validate(conn, {"pool": pool, "volume": volume})
            stream = self.rpc.open_stream()
            staging = bytearray()

            def on_finish() -> Any:
                # single journaled mutation: MID_JOURNAL crash here tears
                # the journal record and recovery discards the upload
                return commit(
                    conn,
                    {
                        "pool": pool,
                        "volume": volume,
                        "data": bytes(staging),
                        "offset": offset,
                    },
                )

            stream.set_sink(staging.extend, on_finish=on_finish)
            return {
                "pool": pool,
                "volume": volume,
                "offset": offset,
                "capacity_bytes": info["capacity_bytes"],
            }

        return handler

    def _h_vol_download(self) -> Callable[[ServerConnection, Any], Any]:
        fetch = self._wrap(
            lambda d, b: d.storage_vol_download(
                b["pool"], b["volume"], b["offset"], b["length"]
            )
        )
        fetch.procedure = "storage.vol_download"

        def handler(conn: ServerConnection, body: Any) -> Any:
            body = body or {}
            pool, volume = body["pool"], body["volume"]
            offset = int(body.get("offset") or 0)
            length = body.get("length")
            data = fetch(
                conn,
                {"pool": pool, "volume": volume, "offset": offset, "length": length},
            )
            stream = self.rpc.open_stream()
            view = memoryview(data)
            cursor = [0]

            def read(max_bytes: int) -> Any:
                if cursor[0] >= len(view):
                    return None
                chunk = view[cursor[0] : cursor[0] + max_bytes]
                cursor[0] += len(chunk)
                return chunk

            stream.set_source(read, result={"length": len(data)})
            return {"pool": pool, "volume": volume, "length": len(data)}

        return handler

    def _h_open_console(self) -> Callable[[ServerConnection, Any], Any]:
        attach = self._wrap(lambda d, b: d.domain_open_console(b["name"]))
        attach.procedure = "domain.open_console"

        def handler(conn: ServerConnection, body: Any) -> Any:
            body = body or {}
            name = body["name"]
            console = attach(conn, {"name": name})
            stream = self.rpc.open_stream()

            def flush_output() -> None:
                while stream.state == "open":
                    out = console.recv()
                    if not out:
                        break
                    stream.send(out)

            def on_data(chunk: Any) -> None:
                console.send(bytes(chunk))
                flush_output()

            def on_finish() -> Any:
                console.close()
                return {"domain": name}

            def on_abort(reason: Any) -> None:
                console.close()

            stream.set_sink(on_data, on_finish=on_finish, on_abort=on_abort)
            # the guest banner is waiting before the client types anything
            flush_output()
            return {"domain": name}

        return handler

    def _h_backup_begin_pull(self) -> Callable[[ServerConnection, Any], Any]:
        begin = self._wrap(
            lambda d, b: d.backup_begin_pull(b["name"], b.get("options") or {})
        )
        begin.procedure = "domain.backup_begin_pull"

        def handler(conn: ServerConnection, body: Any) -> Any:
            body = body or {}
            result = begin(conn, body)
            # the block payload travels on the stream; the manifest
            # (disks -> dirty block lists) is the opening reply
            data = bytes(result.pop("data", b"") or b"")
            stream = self.rpc.open_stream()
            view = memoryview(data)
            cursor = [0]

            def read(max_bytes: int) -> Any:
                if cursor[0] >= len(view):
                    return None
                chunk = view[cursor[0] : cursor[0] + max_bytes]
                cursor[0] += len(chunk)
                return chunk

            stream.set_source(read, result={"total_bytes": len(data)})
            return result

        return handler

    def _register_handlers(self) -> None:
        def r(name: str, handler: Any, priority: bool = False) -> None:
            # stamp wrapped handlers with their procedure name so the
            # driver-op metric can label observations (bound methods
            # reject attribute assignment and are instrumented elsewhere)
            try:
                handler.procedure = name
            except AttributeError:
                pass
            self.rpc.register(name, handler, priority=priority)

        w = self._wrap
        r("connect.open", self._h_open, priority=True)
        r("connect.close", self._h_close, priority=True)
        r("connect.ping", self._h_ping, priority=True)
        r("connect.domain_event_register", self._h_event_register, priority=True)
        r("connect.domain_event_deregister", self._h_event_deregister, priority=True)
        r("connect.event_subscribe", self._h_event_subscribe, priority=True)
        r("connect.event_unsubscribe", self._h_event_unsubscribe, priority=True)
        r("connect.get_hostname", w(lambda d, b: d.get_hostname()), priority=True)
        r("connect.get_capabilities", w(lambda d, b: d.get_capabilities()), priority=True)
        r("connect.get_node_info", w(lambda d, b: d.get_node_info()), priority=True)
        r("connect.get_version", w(lambda d, b: list(d.get_version())), priority=True)
        r("connect.supports_feature", w(lambda d, b: d.features() if b.get("feature") is None else d.supports_feature(b["feature"])), priority=True)
        r("connect.list_domains", w(lambda d, b: d.list_domains()), priority=True)
        r("connect.list_defined_domains", w(lambda d, b: d.list_defined_domains()), priority=True)
        r("connect.num_of_domains", w(lambda d, b: d.num_of_domains()), priority=True)
        r("domain.lookup_by_name", w(lambda d, b: d.domain_lookup_by_name(b["name"])), priority=True)
        r("domain.lookup_by_uuid", w(lambda d, b: d.domain_lookup_by_uuid(b["uuid"])), priority=True)
        r("domain.lookup_by_id", w(lambda d, b: d.domain_lookup_by_id(b["id"])), priority=True)
        r("domain.define_xml", w(lambda d, b: d.domain_define_xml(b["xml"])))
        r("domain.undefine", w(lambda d, b: d.domain_undefine(b["name"])))
        r("domain.create", w(lambda d, b: d.domain_create(b["name"])))
        r("domain.create_xml", w(lambda d, b: d.domain_create_xml(b["xml"])))
        r("domain.shutdown", w(lambda d, b: d.domain_shutdown(b["name"])))
        # destroy is the canonical guaranteed-finish operation
        r("domain.destroy", w(lambda d, b: d.domain_destroy(b["name"])), priority=True)
        r("domain.suspend", w(lambda d, b: d.domain_suspend(b["name"])))
        r("domain.resume", w(lambda d, b: d.domain_resume(b["name"])))
        r("domain.reboot", w(lambda d, b: d.domain_reboot(b["name"])))
        r("domain.get_info", w(lambda d, b: d.domain_get_info(b["name"])), priority=True)
        r("domain.get_state", w(lambda d, b: d.domain_get_state(b["name"])), priority=True)
        r("domain.get_xml_desc", w(lambda d, b: d.domain_get_xml_desc(b["name"])), priority=True)
        r("domain.get_stats", w(lambda d, b: d.domain_get_stats(b["name"])), priority=True)
        r("domain.get_scheduler_params", w(lambda d, b: d.domain_get_scheduler_params(b["name"])), priority=True)
        r("domain.set_scheduler_params", w(lambda d, b: d.domain_set_scheduler_params(b["name"], b["params"])))
        r("domain.get_job_info", w(lambda d, b: d.domain_get_job_info(b["name"])), priority=True)
        # abort must get through even when the normal lanes are saturated
        # by the very job being cancelled
        r("domain.abort_job", w(lambda d, b: d.domain_abort_job(b["name"])), priority=True)
        r("domain.migrate_p2p", w(lambda d, b: d.migrate_p2p(b["name"], b["dest_uri"], b["params"])))
        r("domain.set_memory", w(lambda d, b: d.domain_set_memory(b["name"], b["memory_kib"])))
        r("domain.set_vcpus", w(lambda d, b: d.domain_set_vcpus(b["name"], b["vcpus"])))
        r("domain.save", w(lambda d, b: d.domain_save(b["name"], b["path"])))
        r("domain.restore", w(lambda d, b: d.domain_restore(b["path"])))
        r("domain.get_autostart", w(lambda d, b: d.domain_get_autostart(b["name"])), priority=True)
        r("domain.set_autostart", w(lambda d, b: d.domain_set_autostart(b["name"], b["autostart"])))
        r("domain.attach_device", w(lambda d, b: d.domain_attach_device(b["name"], b["xml"])))
        r("domain.detach_device", w(lambda d, b: d.domain_detach_device(b["name"], b["xml"])))
        r("domain.snapshot_create", w(lambda d, b: d.snapshot_create(b["name"], b["snapshot"])))
        r("domain.snapshot_list", w(lambda d, b: d.snapshot_list(b["name"])), priority=True)
        r("domain.snapshot_revert", w(lambda d, b: d.snapshot_revert(b["name"], b["snapshot"])))
        r("domain.snapshot_delete", w(lambda d, b: d.snapshot_delete(b["name"], b["snapshot"])))
        r("domain.checkpoint_create", w(lambda d, b: d.checkpoint_create(b["name"], b["checkpoint"])))
        r("domain.checkpoint_list", w(lambda d, b: d.checkpoint_list(b["name"])), priority=True)
        r("domain.checkpoint_delete", w(lambda d, b: d.checkpoint_delete(b["name"], b["checkpoint"])))
        r("domain.checkpoint_get_xml_desc", w(lambda d, b: d.checkpoint_get_xml_desc(b["name"], b["checkpoint"])), priority=True)
        r("domain.backup_begin", self._h_backup_begin())
        r("domain.managed_save", w(lambda d, b: d.domain_managed_save(b["name"])))
        r("domain.managed_save_remove", w(lambda d, b: d.domain_managed_save_remove(b["name"])))
        r("domain.has_managed_save", w(lambda d, b: d.domain_has_managed_save(b["name"])), priority=True)
        r("domain.migrate_begin", w(lambda d, b: d.migrate_begin(b["name"])))
        r("domain.migrate_prepare", w(lambda d, b: d.migrate_prepare(b["description"])))
        r("domain.migrate_perform", w(lambda d, b: d.migrate_perform(b["name"], b["cookie"], b["params"])))
        r("domain.migrate_finish", w(lambda d, b: d.migrate_finish(b["cookie"], b["stats"])))
        r("domain.migrate_confirm", w(lambda d, b: d.migrate_confirm(b["name"], b["cancelled"])))
        r("network.lookup_by_name", w(lambda d, b: d.network_lookup_by_name(b["name"])), priority=True)
        r("network.define_xml", w(lambda d, b: d.network_define_xml(b["xml"])))
        r("network.undefine", w(lambda d, b: d.network_undefine(b["name"])))
        r("network.create", w(lambda d, b: d.network_create(b["name"])))
        r("network.destroy", w(lambda d, b: d.network_destroy(b["name"])))
        r("network.list", w(lambda d, b: d.network_list()), priority=True)
        r("network.get_xml_desc", w(lambda d, b: d.network_get_xml_desc(b["name"])), priority=True)
        r("network.dhcp_leases", w(lambda d, b: d.network_dhcp_leases(b["name"])), priority=True)
        r("storage.pool_lookup_by_name", w(lambda d, b: d.storage_pool_lookup_by_name(b["name"])), priority=True)
        r("storage.pool_define_xml", w(lambda d, b: d.storage_pool_define_xml(b["xml"])))
        r("storage.pool_undefine", w(lambda d, b: d.storage_pool_undefine(b["name"])))
        r("storage.pool_create", w(lambda d, b: d.storage_pool_create(b["name"])))
        r("storage.pool_destroy", w(lambda d, b: d.storage_pool_destroy(b["name"])))
        r("storage.pool_list", w(lambda d, b: d.storage_pool_list()), priority=True)
        r("storage.pool_get_info", w(lambda d, b: d.storage_pool_get_info(b["name"])), priority=True)
        r("storage.pool_get_xml_desc", w(lambda d, b: d.storage_pool_get_xml_desc(b["name"])), priority=True)
        r("storage.vol_create_xml", w(lambda d, b: d.storage_vol_create_xml(b["pool"], b["xml"])))
        r("storage.vol_delete", w(lambda d, b: d.storage_vol_delete(b["pool"], b["volume"])))
        r("storage.vol_list", w(lambda d, b: d.storage_vol_list(b["pool"])), priority=True)
        r("storage.vol_get_info", w(lambda d, b: d.storage_vol_get_info(b["pool"], b["volume"])), priority=True)
        # stream-backed bulk-data procedures (never retried, never pooled
        # past the opening CALL: STREAM frames dispatch inline)
        r("storage.vol_upload", self._h_vol_upload())
        r("storage.vol_download", self._h_vol_download())
        r("domain.open_console", self._h_open_console())
        r("domain.backup_begin_pull", self._h_backup_begin_pull())
