"""Daemon-side client bookkeeping."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.rpc.transport import ServerConnection


class ClientRecord:
    """One connected client as the daemon sees it."""

    def __init__(
        self,
        client_id: int,
        conn: ServerConnection,
        connected_since: float,
        server: str = "libvirtd",
    ) -> None:
        self.id = client_id
        self.conn = conn
        self.connected_since = connected_since
        #: which daemon-internal server accepted this client
        self.server = server
        #: clock time of the last call (drives keepalive reaping)
        self.last_activity = connected_since
        #: which local driver this client's connect.open bound it to
        self.driver: Optional[object] = None
        #: broker callback id, set while the client subscribes to events
        self.event_callback_id: Optional[int] = None
        #: event-bus subscription id (typed record push), if armed
        self.bus_subscription_id: Optional[int] = None
        #: domains whose background jobs this client started; an unclean
        #: disconnect fails these so the domain is not left wedged
        self.owned_jobs: set = set()
        self.calls = 0

    @property
    def transport(self) -> str:
        return self.conn.identity.get("transport", "unknown")

    @property
    def identity(self) -> Dict[str, Any]:
        return dict(self.conn.identity)

    def summary(self) -> Dict[str, Any]:
        """The ``client-list`` row."""
        return {
            "id": self.id,
            "transport": self.transport,
            "connected_since": self.connected_since,
            "calls": self.calls,
            "server": self.server,
        }

    def info(self) -> Dict[str, Any]:
        """The ``client-info`` detail view (transport-dependent fields)."""
        data = self.summary()
        data.update(self.identity)
        return data
