"""Daemon-side handlers for the administration interface.

These run inside the daemon's second server object (``admin``) and
manipulate the daemon's own runtime state: workerpool limits, client
limits and connections, and the logging subsystem.  The admin socket
is root-only by default — the interface grants full control of the
daemon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from repro.errors import AccessDeniedError, InvalidArgumentError
from repro.rpc.server import RPCServer
from repro.rpc.transport import ServerConnection
from repro.util import typedparams as tp
from repro.util.typedparams import ParamType, TypedParameter
from repro.util.virtlog import PRIORITY_NAMES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.daemon.libvirtd import Libvirtd

#: threadpool parameter fields (``VIR_THREADPOOL_*`` macros)
THREADPOOL_FIELDS: Dict[str, ParamType] = {
    "minWorkers": ParamType.UINT,
    "maxWorkers": ParamType.UINT,
    "prioWorkers": ParamType.UINT,
    "nWorkers": ParamType.UINT,
    "freeWorkers": ParamType.UINT,
    "jobQueueDepth": ParamType.UINT,
}
THREADPOOL_READ_ONLY = ("nWorkers", "freeWorkers", "jobQueueDepth")

#: per-server client-limit fields (``VIR_SERVER_CLIENTS_*`` macros);
#: ``max_client_requests`` is the per-connection in-flight window
CLIENT_LIMIT_FIELDS: Dict[str, ParamType] = {
    "nclients_max": ParamType.UINT,
    "nclients": ParamType.UINT,
    "max_client_requests": ParamType.UINT,
}
CLIENT_LIMIT_READ_ONLY = ("nclients",)


def default_admin_authenticator(credentials: Dict[str, Any]) -> Dict[str, Any]:
    """The admin socket's permission check: only uid 0 may connect."""
    uid = credentials.get("uid", 0)
    if uid != 0:
        raise AccessDeniedError(
            f"administration interface requires root (got uid {uid})"
        )
    return {"unix_user_name": credentials.get("username", "root")}


def _pool_of(daemon: "Libvirtd", server: str):
    pool = daemon.server_pools.get(server)
    if pool is None:
        raise InvalidArgumentError(f"no server named {server!r}")
    return pool


def register_admin_handlers(rpc: RPCServer, daemon: "Libvirtd") -> None:
    """Bind the ``admin.*`` procedures onto an RPC dispatcher."""

    def h_open(conn: ServerConnection, body: Any) -> Any:
        return {"uri": f"daemon://{daemon.hostname}/system"}

    def h_srv_list(conn: ServerConnection, body: Any) -> List[Dict[str, Any]]:
        return [
            {"id": index, "name": name}
            for index, name in enumerate(daemon.server_names())
        ]

    def h_threadpool_info(conn: ServerConnection, body: Any) -> Dict[str, int]:
        return _pool_of(daemon, (body or {})["server"]).stats()

    def h_threadpool_set(conn: ServerConnection, body: Any) -> None:
        body = body or {}
        pool = _pool_of(daemon, body["server"])
        params: List[TypedParameter] = body.get("params") or []
        if not params:
            raise InvalidArgumentError("no threadpool parameters supplied")
        tp.validate_fields(params, THREADPOOL_FIELDS, THREADPOOL_READ_ONLY)
        values = tp.to_dict(params)
        pool.set_parameters(
            min_workers=values.get("minWorkers"),
            max_workers=values.get("maxWorkers"),
            prio_workers=values.get("prioWorkers"),
        )

    def h_clients_info(conn: ServerConnection, body: Any) -> Dict[str, int]:
        server = (body or {})["server"]
        _pool_of(daemon, server)  # existence check
        return {
            "nclients_max": daemon.get_max_clients(server),
            "nclients": len(daemon.list_clients(server)),
            "max_client_requests": daemon.get_max_client_requests(server),
        }

    def h_clients_set(conn: ServerConnection, body: Any) -> None:
        body = body or {}
        server = body["server"]
        params: List[TypedParameter] = body.get("params") or []
        if not params:
            raise InvalidArgumentError("no client-limit parameters supplied")
        tp.validate_fields(params, CLIENT_LIMIT_FIELDS, CLIENT_LIMIT_READ_ONLY)
        values = tp.to_dict(params)
        if "nclients_max" in values:
            daemon.set_max_clients(values["nclients_max"], server=server)
        if "max_client_requests" in values:
            daemon.set_max_client_requests(values["max_client_requests"], server=server)

    def h_client_list(conn: ServerConnection, body: Any) -> List[Dict[str, Any]]:
        server = (body or {})["server"]
        _pool_of(daemon, server)
        return daemon.list_clients(server)

    def h_client_info(conn: ServerConnection, body: Any) -> Dict[str, Any]:
        return daemon.client_info((body or {})["id"])

    def h_client_disconnect(conn: ServerConnection, body: Any) -> None:
        daemon.disconnect_client((body or {})["id"])

    def h_log_info(conn: ServerConnection, body: Any) -> Dict[str, Any]:
        logger = daemon.logger
        return {
            "level": logger.level,
            "level_name": PRIORITY_NAMES[logger.level],
            "filters": logger.get_filters(),
            "outputs": logger.get_outputs(),
        }

    def h_log_define(conn: ServerConnection, body: Any) -> None:
        body = body or {}
        logger = daemon.logger
        if "level" in body and body["level"] is not None:
            logger.set_level(body["level"])
        if "filters" in body and body["filters"] is not None:
            logger.set_filters(body["filters"])
        if "outputs" in body and body["outputs"] is not None:
            logger.set_outputs(body["outputs"])

    def h_srv_stats(conn: ServerConnection, body: Any) -> Dict[str, Any]:
        return daemon.server_stats((body or {}).get("server", "libvirtd"))

    def h_client_stats(conn: ServerConnection, body: Any) -> Any:
        return daemon.client_stats((body or {}).get("id"))

    def h_reset_stats(conn: ServerConnection, body: Any) -> Dict[str, Any]:
        return daemon.reset_stats()

    def h_metrics_export(conn: ServerConnection, body: Any) -> Dict[str, str]:
        return {"content_type": "text/plain; version=0.0.4",
                "text": daemon.metrics_text()}

    def h_trace_list(conn: ServerConnection, body: Any) -> List[Dict[str, Any]]:
        return daemon.trace_list((body or {}).get("limit"))

    def h_trace_get(conn: ServerConnection, body: Any) -> List[Dict[str, Any]]:
        body = body or {}
        if "trace_id" not in body:
            raise InvalidArgumentError("trace_get requires a trace_id")
        return daemon.trace_get(body["trace_id"])

    def h_flight_dump(conn: ServerConnection, body: Any) -> Dict[str, Any]:
        return daemon.flight_dump()

    def h_daemon_shutdown(conn: ServerConnection, body: Any) -> Dict[str, str]:
        mode = (body or {}).get("mode", "graceful")
        if mode not in ("graceful", "crash"):
            raise InvalidArgumentError(
                f"daemon_shutdown mode must be 'graceful' or 'crash', got {mode!r}"
            )
        # defer the actual teardown one eventloop turn so this reply
        # frame leaves over a still-open connection first
        daemon.eventloop.add_timeout(
            0.0, daemon.shutdown if mode == "graceful" else daemon.crash
        )
        return {"initiated": mode}

    rpc.register("admin.connect_open", h_open, priority=True)
    rpc.register("admin.trace_list", h_trace_list, priority=True)
    rpc.register("admin.trace_get", h_trace_get, priority=True)
    rpc.register("admin.srv_stats", h_srv_stats, priority=True)
    rpc.register("admin.client_stats", h_client_stats, priority=True)
    rpc.register("admin.reset_stats", h_reset_stats, priority=True)
    rpc.register("admin.metrics_export", h_metrics_export, priority=True)
    rpc.register("admin.srv_list", h_srv_list, priority=True)
    rpc.register("admin.srv_threadpool_info", h_threadpool_info, priority=True)
    rpc.register("admin.srv_threadpool_set", h_threadpool_set, priority=True)
    rpc.register("admin.srv_clients_info", h_clients_info, priority=True)
    rpc.register("admin.srv_clients_set", h_clients_set, priority=True)
    rpc.register("admin.client_list", h_client_list, priority=True)
    rpc.register("admin.client_info", h_client_info, priority=True)
    rpc.register("admin.client_disconnect", h_client_disconnect, priority=True)
    rpc.register("admin.dmn_log_info", h_log_info, priority=True)
    rpc.register("admin.dmn_log_define", h_log_define, priority=True)
    rpc.register("admin.daemon_shutdown", h_daemon_shutdown, priority=True)
    rpc.register("admin.flight_dump", h_flight_dump, priority=True)
