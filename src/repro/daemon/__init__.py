"""The libvirtd-analogue daemon.

Hosts the stateful drivers behind the RPC protocol: a server object
accepting client connections over multiple transports, a workerpool
dispatching calls (with a priority lane for guaranteed-finish
operations), client tracking with connection limits, a logging
subsystem, and lifecycle-event fan-out to subscribed clients.
"""

from repro.daemon.libvirtd import Libvirtd
from repro.daemon.registry import (
    lookup_daemon,
    register_daemon,
    reset_daemons,
    unregister_daemon,
)

__all__ = [
    "Libvirtd",
    "register_daemon",
    "lookup_daemon",
    "unregister_daemon",
    "reset_daemons",
]
