"""The simulated network's daemon directory.

A remote driver "dials" a hostname; this registry is the stand-in for
DNS + the network path, mapping hostnames to in-process daemons.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ConnectionError_

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.daemon.libvirtd import Libvirtd

_LOCK = threading.Lock()
_DAEMONS: Dict[str, "Libvirtd"] = {}


def register_daemon(hostname: str, daemon: "Libvirtd") -> None:
    """Make a daemon reachable under ``hostname`` (case-insensitive)."""
    with _LOCK:
        _DAEMONS[hostname.lower()] = daemon


def lookup_daemon(hostname: str) -> "Libvirtd":
    with _LOCK:
        daemon = _DAEMONS.get(hostname.lower())
    if daemon is None:
        raise ConnectionError_(
            f"unable to connect to host {hostname!r}: no daemon registered"
        )
    return daemon


def unregister_daemon(hostname: str) -> None:
    with _LOCK:
        _DAEMONS.pop(hostname.lower(), None)


def reset_daemons() -> None:
    """Forget every daemon — test isolation."""
    with _LOCK:
        _DAEMONS.clear()
