"""Deterministic transport fault injection.

A :class:`FaultPlan` scripts link failures — dropped frames, delays,
duplicates, corruption, silent severs, daemon blackholes — against the
virtual clock, so tests and benchmarks can prove the resilience story
(keepalive, deadlines, retry, auto-reconnect) without wall-clock sleeps
or real networks.

A :class:`CrashPlan` goes one layer up: it kills the *daemon process*
at seeded points along a dispatched call (mid-dispatch, mid-journal
write, post-journal/pre-reply), and :class:`CrashHarness` restarts a
fresh daemon over the surviving hypervisor backends so journal-based
recovery can be exercised at every kill point.
"""

from repro.faults.crash import (
    CrashEvent,
    CrashHarness,
    CrashPlan,
    CrashPoint,
    CrashRule,
)
from repro.faults.plan import (
    FaultDecision,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "CrashEvent",
    "CrashHarness",
    "CrashPlan",
    "CrashPoint",
    "CrashRule",
    "FaultDecision",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
]
