"""Deterministic transport fault injection.

A :class:`FaultPlan` scripts link failures — dropped frames, delays,
duplicates, corruption, silent severs, daemon blackholes — against the
virtual clock, so tests and benchmarks can prove the resilience story
(keepalive, deadlines, retry, auto-reconnect) without wall-clock sleeps
or real networks.
"""

from repro.faults.plan import (
    FaultDecision,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "FaultDecision",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
]
