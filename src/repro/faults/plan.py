"""Scripted, seeded fault plans for the transport layer.

A plan is an ordered list of :class:`FaultRule` objects.  The transport
asks the plan what to do with every frame (``decide``); the first rule
that matches — by direction, frame index, or seeded probability — fires
and its action is applied by the channel.  Rules pinned to an exact
frame fire once by default, so a reconnected channel does not re-hit
the same scripted fault; probabilistic rules fire for as long as their
budget lasts (unlimited by default).

Every injected fault is recorded in ``plan.injected`` with the frame
index, direction, and modelled timestamp — the audit trail benchmarks
use to compute recovery latency per fault.
"""

from __future__ import annotations

import enum
import random
import threading
from typing import List, Optional

from repro.errors import InvalidArgumentError


class FaultKind(enum.Enum):
    """What happens to a matched frame."""

    DROP = "drop"  # the frame vanishes; no reply ever arrives
    DELAY = "delay"  # extra one-way latency before delivery
    DUPLICATE = "duplicate"  # the frame is delivered twice
    CORRUPT = "corrupt"  # one byte is flipped before delivery
    SEVER = "sever"  # the connection is cut silently (no FIN/RST)
    BLACKHOLE = "blackhole"  # the whole daemon stops answering


#: direction markers: client→server and server→client
SEND = "send"
RECV = "recv"
_DIRECTIONS = (SEND, RECV, "both")


class FaultRule:
    """One scripted fault.

    Matching is by ``direction`` plus exactly one of:

    * ``frame=N`` — the channel's Nth outbound frame (0-based);
    * ``after=N`` — every frame with index >= N;
    * ``probability=p`` — a seeded coin flip per frame;
    * none of the above — every frame.

    ``times`` caps how often the rule fires; it defaults to 1 when the
    rule is pinned to an exact frame and to unlimited otherwise.
    """

    def __init__(
        self,
        kind: FaultKind,
        *,
        direction: str = SEND,
        frame: "Optional[int]" = None,
        after: "Optional[int]" = None,
        probability: "Optional[float]" = None,
        delay: float = 0.0,
        times: "Optional[int]" = None,
    ) -> None:
        self.kind = FaultKind(kind)
        if direction not in _DIRECTIONS:
            raise InvalidArgumentError(f"unknown fault direction {direction!r}")
        if sum(x is not None for x in (frame, after, probability)) > 1:
            raise InvalidArgumentError(
                "a rule takes at most one of frame/after/probability"
            )
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise InvalidArgumentError("probability must be within [0, 1]")
        if self.kind is FaultKind.DELAY and delay <= 0:
            raise InvalidArgumentError("a DELAY rule needs a positive delay")
        if delay < 0:
            raise InvalidArgumentError("delay must be non-negative")
        self.direction = direction
        self.frame = frame
        self.after = after
        self.probability = probability
        self.delay = delay
        if times is None:
            times = 1 if frame is not None else -1  # -1 = unlimited
        self.times = times
        self.fired = 0

    def matches(self, direction: str, frame_index: int, rng: random.Random) -> bool:
        if self.times >= 0 and self.fired >= self.times:
            return False
        if self.direction != "both" and self.direction != direction:
            return False
        if self.frame is not None:
            return frame_index == self.frame
        if self.after is not None:
            return frame_index >= self.after
        if self.probability is not None:
            return rng.random() < self.probability
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = (
            f"frame={self.frame}"
            if self.frame is not None
            else f"after={self.after}"
            if self.after is not None
            else f"p={self.probability}"
            if self.probability is not None
            else "always"
        )
        return f"FaultRule({self.kind.value}, {self.direction}, {where})"


class FaultEvent:
    """Audit record of one injected fault."""

    __slots__ = ("kind", "direction", "frame", "time")

    def __init__(self, kind: FaultKind, direction: str, frame: int, time: float) -> None:
        self.kind = kind
        self.direction = direction
        self.frame = frame
        self.time = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultEvent({self.kind.value}, {self.direction}, frame={self.frame}, t={self.time:.6f})"


class FaultDecision:
    """What the channel must do with the current frame."""

    __slots__ = ("kind", "delay")

    def __init__(self, kind: "Optional[FaultKind]", delay: float = 0.0) -> None:
        self.kind = kind
        self.delay = delay


class FaultPlan:
    """A seeded, shareable fault script.

    One plan can be installed on a single :class:`~repro.rpc.transport.Channel`
    or on a :class:`~repro.rpc.transport.Listener` (where every accepted
    channel consults it — that is how a daemon-wide blackhole works).
    All probabilistic choices come from one ``random.Random(seed)``, so
    a plan replays identically for a given seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rules: List[FaultRule] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: True while the daemon side is unreachable for every channel
        self.blackholed = False
        #: audit trail of every fault injected through this plan
        self.injected: List[FaultEvent] = []

    # -- scripting (fluent) ------------------------------------------------

    def add(self, rule: FaultRule) -> "FaultPlan":
        with self._lock:
            self._rules.append(rule)
        return self

    def drop(self, **kwargs: object) -> "FaultPlan":
        """Lose matched frames: the peer never sees them."""
        return self.add(FaultRule(FaultKind.DROP, **kwargs))  # type: ignore[arg-type]

    def delay(self, seconds: float, **kwargs: object) -> "FaultPlan":
        """Add ``seconds`` of one-way latency to matched frames."""
        return self.add(FaultRule(FaultKind.DELAY, delay=seconds, **kwargs))  # type: ignore[arg-type]

    def duplicate(self, **kwargs: object) -> "FaultPlan":
        """Deliver matched frames twice (retransmit storms)."""
        return self.add(FaultRule(FaultKind.DUPLICATE, **kwargs))  # type: ignore[arg-type]

    def corrupt(self, **kwargs: object) -> "FaultPlan":
        """Flip a byte inside matched frames."""
        return self.add(FaultRule(FaultKind.CORRUPT, **kwargs))  # type: ignore[arg-type]

    def sever(self, **kwargs: object) -> "FaultPlan":
        """Cut the connection silently when the rule matches — the
        server side is torn down but the client is never told (a pulled
        cable, not a FIN)."""
        return self.add(FaultRule(FaultKind.SEVER, **kwargs))  # type: ignore[arg-type]

    def blackhole(self, **kwargs: object) -> "FaultPlan":
        """From the matched frame on, the daemon answers nothing on any
        channel sharing this plan, until :meth:`restore`."""
        return self.add(FaultRule(FaultKind.BLACKHOLE, **kwargs))  # type: ignore[arg-type]

    def restore(self) -> None:
        """Lift a daemon blackhole (the network heals)."""
        with self._lock:
            self.blackholed = False

    # -- consulted by the transport ---------------------------------------

    def decide(self, direction: str, frame_index: int, now: float) -> FaultDecision:
        """First matching rule wins; records the injection."""
        with self._lock:
            for rule in self._rules:
                if rule.matches(direction, frame_index, self._rng):
                    rule.fired += 1
                    if rule.kind is FaultKind.BLACKHOLE:
                        self.blackholed = True
                    self.injected.append(
                        FaultEvent(rule.kind, direction, frame_index, now)
                    )
                    return FaultDecision(rule.kind, rule.delay)
        return FaultDecision(None)

    def corrupt_bytes(self, data: bytes) -> bytes:
        """Flip one byte past the length prefix (stays one frame)."""
        if len(data) <= 4:
            return data
        with self._lock:
            pos = self._rng.randrange(4, len(data))
        mutated = bytearray(data)
        mutated[pos] ^= 0x5A
        return bytes(mutated)

    # -- introspection -----------------------------------------------------

    @property
    def faults_injected(self) -> int:
        with self._lock:
            return len(self.injected)

    def injected_of(self, kind: FaultKind) -> List[FaultEvent]:
        with self._lock:
            return [e for e in self.injected if e.kind is kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return f"FaultPlan({len(self._rules)} rules, {len(self.injected)} injected)"
