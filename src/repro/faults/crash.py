"""Seeded daemon-crash injection: kill the management plane itself.

PR 1's :class:`~repro.faults.plan.FaultPlan` scripts *link* failures;
this module scripts *process* failures.  A :class:`CrashPlan` is
consulted by the daemon at three kill points along every dispatched
mutation:

* ``MID_DISPATCH`` — the call was received but the daemon dies before
  the driver mutates anything: no state change, no journal record;
* ``MID_JOURNAL`` — the driver mutated backend reality but the crash
  tears the journal append, leaving a partial final record;
* ``POST_JOURNAL`` — mutation and journal record are durable, but the
  daemon dies before the reply frame leaves: the client never learns
  the call succeeded.

When a rule fires the daemon severs every connection and raises
:class:`~repro.errors.DaemonCrashError` straight through the dispatch
stack — the modelled equivalent of ``kill -9``.  The simulated
hypervisor backends are separate objects and keep running; the
:class:`CrashHarness` then constructs a fresh daemon over the same
backends and state directory, which is the paper's non-intrusive
restart: recovery must reconcile the journal against backend reality
without touching a single running guest.

Every ``decide`` call is also recorded in ``plan.opportunities`` even
when no rule fires, so a dry run of a scripted workload yields a
complete census of kill points — the property test then replays the
workload once per opportunity index with ``CrashPlan().at(i)``.
"""

from __future__ import annotations

import enum
import random
import threading
from typing import Any, List, Optional, Tuple

from repro.errors import InvalidArgumentError


class CrashPoint(enum.Enum):
    """Where along a mutating call the daemon dies."""

    MID_DISPATCH = "mid-dispatch"  # before the driver runs: nothing happened
    MID_JOURNAL = "mid-journal"  # state mutated, journal record torn
    POST_JOURNAL = "post-journal"  # durable, but the reply is never sent


class CrashRule:
    """One scripted kill.

    Matching is by optional ``point`` and ``op`` prefix, plus exactly
    one of:

    * ``index=N`` — the Nth crash opportunity seen by the plan overall
      (the census replay mode);
    * ``after=N`` — skip the first N matching opportunities, then fire;
    * ``probability=p`` — a seeded coin flip per matching opportunity;
    * none of the above — the first matching opportunity.

    ``times`` defaults to 1: a dead daemon crashes once.
    """

    def __init__(
        self,
        point: "Optional[CrashPoint]" = None,
        *,
        op: "Optional[str]" = None,
        index: "Optional[int]" = None,
        after: "Optional[int]" = None,
        probability: "Optional[float]" = None,
        times: int = 1,
    ) -> None:
        if sum(x is not None for x in (index, after, probability)) > 1:
            raise InvalidArgumentError(
                "a crash rule takes at most one of index/after/probability"
            )
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise InvalidArgumentError("probability must be within [0, 1]")
        self.point = CrashPoint(point) if point is not None else None
        self.op = op
        self.index = index
        self.after = after
        self.probability = probability
        self.times = times
        self.fired = 0
        self.seen = 0

    def matches(
        self, point: CrashPoint, op: str, index: int, rng: random.Random
    ) -> bool:
        if self.times >= 0 and self.fired >= self.times:
            return False
        if self.point is not None and point is not self.point:
            return False
        if self.op is not None and not op.startswith(self.op):
            return False
        self.seen += 1
        if self.index is not None:
            return index == self.index
        if self.after is not None:
            return self.seen > self.after
        if self.probability is not None:
            return rng.random() < self.probability
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = (
            f"index={self.index}"
            if self.index is not None
            else f"after={self.after}"
            if self.after is not None
            else f"p={self.probability}"
            if self.probability is not None
            else "first"
        )
        point = self.point.value if self.point is not None else "any"
        return f"CrashRule({point}, op={self.op!r}, {where})"


class CrashEvent:
    """Audit record of one injected daemon crash."""

    __slots__ = ("point", "op", "index", "time")

    def __init__(self, point: CrashPoint, op: str, index: int, time: float) -> None:
        self.point = point
        self.op = op
        self.index = index
        self.time = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrashEvent({self.point.value}, {self.op!r}, "
            f"index={self.index}, t={self.time:.6f})"
        )


class CrashPlan:
    """A seeded, replayable daemon-kill script.

    Install on a daemon with :meth:`Libvirtd.install_crash_plan`; the
    daemon (and its drivers' journal writes) consult :meth:`decide` at
    every kill point.  All probabilistic choices come from one
    ``random.Random(seed)``, so a plan replays identically.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rules: List[CrashRule] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: every (point, op) consulted, fired or not — the kill census
        self.opportunities: "List[Tuple[CrashPoint, str]]" = []
        #: audit trail of crashes actually injected
        self.injected: List[CrashEvent] = []

    # -- scripting (fluent) ------------------------------------------------

    def add(self, rule: CrashRule) -> "CrashPlan":
        with self._lock:
            self._rules.append(rule)
        return self

    def crash(self, point: "Optional[CrashPoint]" = None, **kwargs: Any) -> "CrashPlan":
        """Kill the daemon at the first matching opportunity."""
        return self.add(CrashRule(point, **kwargs))

    def at(self, index: int) -> "CrashPlan":
        """Kill the daemon at the ``index``-th crash opportunity overall
        — replay mode for a census collected by a dry run."""
        return self.add(CrashRule(None, index=index))

    # -- consulted by the daemon -------------------------------------------

    def decide(self, point: CrashPoint, op: str, now: float = 0.0) -> bool:
        """Should the daemon die here?  Always records the opportunity."""
        with self._lock:
            index = len(self.opportunities)
            self.opportunities.append((point, op))
            for rule in self._rules:
                if rule.matches(point, op, index, self._rng):
                    rule.fired += 1
                    self.injected.append(CrashEvent(point, op, index, now))
                    return True
        return False

    # -- introspection -----------------------------------------------------

    @property
    def crashes_injected(self) -> int:
        with self._lock:
            return len(self.injected)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"CrashPlan({len(self._rules)} rules, "
                f"{len(self.opportunities)} opportunities, "
                f"{len(self.injected)} injected)"
            )


class CrashHarness:
    """Crash-restart scaffolding: one simulated host that outlives any
    number of daemon incarnations.

    The harness owns the clock, the simulated host, and the hypervisor
    backend — the pieces a real daemon crash does *not* take down — and
    builds a fresh :class:`~repro.daemon.libvirtd.Libvirtd` (with fresh
    driver objects, since driver memory dies with the process) over
    them on every :meth:`start`.  The state directory persists across
    incarnations, so each restart exercises journal recovery.
    """

    def __init__(
        self,
        state_root: str,
        hostname: str = "crashhost",
        clock: "Optional[Any]" = None,
    ) -> None:
        from repro.hypervisors.host import SimHost
        from repro.hypervisors.qemu_backend import QemuBackend
        from repro.util.clock import VirtualClock

        self.state_root = state_root
        self.hostname = hostname
        self.clock = clock or VirtualClock()
        self.host = SimHost(hostname=hostname, clock=self.clock)
        #: survives daemon death: guests keep running under the hypervisor
        self.backend = QemuBackend(host=self.host, clock=self.clock)
        self.daemon: "Optional[Any]" = None
        self.generation = 0

    @property
    def uri(self) -> str:
        return f"qemu+tcp://{self.hostname}/system"

    def start(self, crash_plan: "Optional[CrashPlan]" = None) -> Any:
        """Bring up a daemon incarnation over the persistent backend."""
        from repro.daemon.libvirtd import Libvirtd
        from repro.drivers.qemu import QemuDriver

        qemu = QemuDriver(self.backend)
        self.generation += 1
        self.daemon = Libvirtd(
            hostname=self.hostname,
            drivers={"qemu": qemu, "kvm": qemu},
            clock=self.clock,
            use_pool=False,
            state_dir=self.state_root,
        )
        self.daemon.listen("tcp")
        if crash_plan is not None:
            self.daemon.install_crash_plan(crash_plan)
        return self.daemon

    def restart(self) -> Any:
        """After a crash: a fresh daemon reattaches non-intrusively.

        The crashed incarnation already severed its connections and
        unregistered; this replaces ``self.daemon`` with a recovered
        one on the same hostname so reconnecting clients find it.
        """
        return self.start()

    def driver(self) -> Any:
        """The current incarnation's qemu driver (recovery inspection)."""
        if self.daemon is None:
            raise InvalidArgumentError("harness daemon is not running")
        return self.daemon.drivers["qemu"]

    def connect(self, **resilience: Any) -> Any:
        """A remote client of the harness daemon; with resilience kwargs
        it auto-reconnects across daemon incarnations."""
        from repro.core.uri import ConnectionURI
        from repro.drivers.remote import RemoteDriver, ResilienceConfig

        config = ResilienceConfig(**resilience) if resilience else None
        return RemoteDriver(ConnectionURI.parse(self.uri), resilience=config)

    def shutdown(self) -> None:
        if self.daemon is not None:
            self.daemon.shutdown()
