"""Simulated node registry: which hosts exist in this process.

Opening ``qemu:///system`` twice must land on the same node state,
exactly as two clients of one libvirtd share one hypervisor.  This
registry holds the per-(scheme, hostname) driver singletons for local
connections, and the inventory of simulated remote ESX hosts.

Tests and benchmarks that want isolated nodes construct drivers
directly (``QemuDriver(backend=...)``) or call :func:`reset_nodes`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.errors import InvalidURIError
from repro.hypervisors.esx_backend import EsxBackend
from repro.hypervisors.host import SimHost

_LOCK = threading.Lock()
_LOCAL_DRIVERS: Dict[str, object] = {}
_ESX_HOSTS: Dict[str, EsxBackend] = {}


def _make_local_driver(kind: str, hostname: str) -> object:
    from repro.drivers.lxc import LxcDriver
    from repro.drivers.qemu import QemuDriver
    from repro.drivers.test import TestDriver
    from repro.drivers.xen import XenDriver

    if kind == "test":
        return TestDriver()
    if kind == "qemu":
        return QemuDriver()
    if kind == "xen":
        return XenDriver()
    if kind == "lxc":
        return LxcDriver()
    raise InvalidURIError(f"no local node kind {kind!r}")


def local_driver(kind: str, hostname: "Optional[str]" = None) -> object:
    """The per-process singleton driver for a local URI scheme."""
    key = f"{kind}@{hostname or 'localhost'}"
    with _LOCK:
        driver = _LOCAL_DRIVERS.get(key)
        if driver is None:
            driver = _make_local_driver(kind, hostname or "localhost")
            _LOCAL_DRIVERS[key] = driver
        return driver


def register_esx_host(hostname: str, backend: "Optional[EsxBackend]" = None, **host_kwargs: object) -> EsxBackend:
    """Bring a simulated ESX host onto the network under ``hostname``."""
    if backend is None:
        backend = EsxBackend(host=SimHost(hostname=hostname, **host_kwargs))
    with _LOCK:
        _ESX_HOSTS[hostname] = backend
    return backend


def esx_host(hostname: str) -> EsxBackend:
    with _LOCK:
        backend = _ESX_HOSTS.get(hostname)
    if backend is None:
        raise InvalidURIError(
            f"no ESX host {hostname!r} registered (register_esx_host first)"
        )
    return backend


def reset_nodes() -> None:
    """Forget every node — test isolation."""
    with _LOCK:
        _LOCAL_DRIVERS.clear()
        _ESX_HOSTS.clear()
