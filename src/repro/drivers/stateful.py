"""Shared implementation for stateful (daemon-side) drivers.

A stateful driver owns what the hypervisor does not persist: the set of
defined domain configurations, autostart flags, snapshots, virtual
networks, and storage pools.  Concrete drivers (qemu, xen, lxc, test)
supply only the backend adapter — how to start/stop/query a guest
through their hypervisor's *native* interface — and inherit everything
else, which is exactly how libvirt keeps its drivers small.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint import CheckpointTree, JobEngine
from repro.core.driver import Driver
from repro.core.events import EventBus, EventCallback
from repro.core.states import (
    VALID_TRANSITIONS,
    DomainEvent,
    DomainState,
    from_run_state,
)
from repro.errors import (
    DaemonCrashError,
    DomainExistsError,
    InvalidArgumentError,
    InvalidOperationError,
    MigrationError,
    MigrationIncompatibleError,
    NetworkExistsError,
    NoDomainError,
    NoNetworkError,
    NoSnapshotError,
    NoStoragePoolError,
    NoStorageVolumeError,
    ResourceBusyError,
    SnapshotExistsError,
    StoragePoolExistsError,
    StorageVolumeExistsError,
)
from repro.faults.crash import CrashPoint
from repro.hypervisors.base import Backend
from repro.migration.precopy import run_precopy
from repro.util import uuidutil
from repro.xmlconfig.checkpoint import CheckpointConfig
from repro.xmlconfig.domain import DomainConfig
from repro.xmlconfig.network import NetworkConfig
from repro.xmlconfig.storage import StoragePoolConfig, VolumeConfig

MIB = 1024 * 1024
VERSION = (1, 0, 0)


class LocalConsole:
    """In-process endpoint for a domain's serial console.

    The modelled guest prints a connect banner and echoes whatever it
    is sent — enough to exercise the bidirectional data path.  The
    remote driver wraps the same duck API
    (``send``/``recv``/``close``/``closed``) around a stream, so
    ``virsh console`` behaves identically on both paths.
    """

    def __init__(self, domain: str) -> None:
        self.domain = domain
        self.closed = False
        self._outbuf: "deque[bytes]" = deque()
        self._outbuf.append(
            f"Connected to domain {domain}\r\nEscape character is ^]\r\n".encode()
        )

    def send(self, data: "str | bytes") -> None:
        if self.closed:
            raise InvalidOperationError(
                f"console for domain {self.domain!r} is closed"
            )
        payload = data.encode("utf-8") if isinstance(data, str) else bytes(data)
        if payload:
            self._outbuf.append(payload)

    def recv(self) -> bytes:
        if self._outbuf:
            return self._outbuf.popleft()
        return b""

    def close(self) -> None:
        self.closed = True


class _DomainRecord:
    """Driver-side bookkeeping for one domain."""

    __slots__ = (
        "config",
        "persistent",
        "autostart",
        "snapshots",
        "checkpoints",
        "saved_path",
        "managed_save_path",
        "scheduler",
        "last_job",
    )

    def __init__(self, config: DomainConfig, persistent: bool) -> None:
        self.config = config
        self.persistent = persistent
        self.autostart = False
        self.snapshots: Dict[str, Dict[str, Any]] = {}
        #: parent/child checkpoint tree (frozen dirty-block bitmaps)
        self.checkpoints = CheckpointTree()
        self.saved_path: Optional[str] = None
        #: driver-managed save image; the next start auto-restores it
        self.managed_save_path: Optional[str] = None
        #: CPU scheduler tunables (virsh schedinfo)
        self.scheduler: Dict[str, int] = {
            "cpu_shares": 1024,
            "vcpu_period": 100000,
            "vcpu_quota": -1,
        }
        #: the most recently completed long-running job (migration/save)
        self.last_job: Optional[Dict[str, Any]] = None


class StatefulDriver(Driver):
    """Base class: full Driver surface over a backend adapter."""

    name = "stateful"
    stateless = False
    #: domain types this driver's capabilities accept
    accepted_types: Tuple[str, ...] = ()

    def __init__(self, backend: Backend) -> None:
        self.backend = backend
        self._lock = threading.RLock()
        self._domains: Dict[str, _DomainRecord] = {}
        self._uuid_index: Dict[str, str] = {}
        self._ids: Dict[str, int] = {}
        self._next_id = 1
        self.events = EventBus(
            metrics=lambda: self.metrics,
            tracer=lambda: self.tracer,
        )
        self._networks: Dict[str, NetworkConfig] = {}
        self._active_networks: set = set()
        #: network name -> {mac: {"ip", "hostname", "expiry"}}
        self._dhcp_leases: Dict[str, Dict[str, Dict[str, Any]]] = {}
        self._pools: Dict[str, StoragePoolConfig] = {}
        self._active_pools: set = set()
        self._pool_volumes: Dict[str, Dict[str, VolumeConfig]] = {}
        #: write-ahead journal (attached by a hosting daemon); None keeps
        #: the driver purely in-memory, exactly the pre-persistence shape
        self._state = None
        #: seeded daemon-kill script consulted on every journal write
        self.crash_plan = None
        #: counts every uniform-API entry (the paper's call accounting)
        self.api_calls = 0
        #: optional observability registry, attached by a hosting daemon
        self.metrics = None
        #: optional tracer, attached by a hosting daemon
        self.tracer = None
        #: cancellable background jobs (backups); lazy getters so the
        #: engine sees metrics/tracer attached after construction
        self.jobs = JobEngine(
            backend.clock,
            driver=self.name,
            metrics=lambda: self.metrics,
            tracer=lambda: self.tracer,
        )

    # ==================================================================
    # backend adapter — the only part concrete drivers implement
    # ==================================================================

    def _backend_start(self, config: DomainConfig, paused: bool = False) -> None:
        raise NotImplementedError

    def _backend_shutdown(self, name: str) -> None:
        raise NotImplementedError

    def _backend_destroy(self, name: str) -> None:
        raise NotImplementedError

    def _backend_suspend(self, name: str) -> None:
        raise NotImplementedError

    def _backend_resume(self, name: str) -> None:
        raise NotImplementedError

    def _backend_reboot(self, name: str) -> None:
        raise NotImplementedError

    def _backend_info(self, name: str) -> Dict[str, Any]:
        return self.backend.guest_info(name)

    def _backend_set_memory(self, name: str, memory_kib: int) -> None:
        raise NotImplementedError

    def _backend_set_vcpus(self, name: str, vcpus: int) -> None:
        raise NotImplementedError

    def _backend_save(self, name: str, path: str) -> None:
        raise NotImplementedError

    def _backend_restore(self, config: DomainConfig, path: str) -> None:
        raise NotImplementedError

    # ==================================================================
    # shared helpers
    # ==================================================================

    def _count_call(self) -> None:
        self.api_calls += 1
        if self.metrics is not None:
            self.metrics.counter(
                "driver_api_calls_total",
                "Uniform-API entries, by driver",
                ("driver",),
            ).labels(driver=self.name).inc()

    def _record(self, name: str) -> _DomainRecord:
        with self._lock:
            record = self._domains.get(name)
        if record is None:
            raise NoDomainError(f"no domain with matching name {name!r}")
        return record

    def _domain_state(self, name: str) -> DomainState:
        if self.backend.has_guest(name):
            return from_run_state(self.backend.guest_state(name))
        return DomainState.SHUTOFF

    def _check_transition(self, name: str, op: str) -> DomainState:
        state = self._domain_state(name)
        if state not in VALID_TRANSITIONS[op]:
            raise InvalidOperationError(
                f"cannot {op} domain {name!r}: domain is "
                f"{DomainState(state).name.lower()}"
            )
        return state

    def _public_record(self, name: str) -> Dict[str, Any]:
        record = self._record(name)
        with self._lock:
            domain_id = self._ids.get(name)
        return {
            "name": name,
            "uuid": record.config.uuid,
            "id": domain_id if self.backend.has_guest(name) else None,
            "state": int(self._domain_state(name)),
            "persistent": record.persistent,
        }

    def _assign_id(self, name: str) -> None:
        with self._lock:
            self._ids[name] = self._next_id
            self._next_id += 1

    def _forget_transient(self, name: str) -> None:
        """After a transient domain stops it ceases to exist."""
        with self._lock:
            record = self._domains.get(name)
            if record is not None and not record.persistent:
                self._domains.pop(name, None)
                if record.config.uuid:
                    self._uuid_index.pop(record.config.uuid, None)

    # ==================================================================
    # persistence: write-ahead journaling + non-intrusive recovery
    # ==================================================================

    def attach_state(self, journal) -> None:
        """Attach a :class:`~repro.state.StateJournal`; every later
        mutation journals through it before the caller is acknowledged."""
        self._state = journal

    def _journal_write(self, kind: str, key: str, data: Optional[Dict[str, Any]]) -> None:
        """Single funnel for journal mutations, with crash injection.

        A ``MID_JOURNAL`` crash fires *after* backend reality changed
        but tears this very append: only a partial record reaches disk
        and the daemon dies, which is the hardest case recovery must
        reconcile (reality moved, the journal never heard about it).
        """
        journal = self._state
        if journal is None:
            return
        plan = self.crash_plan
        if plan is not None and plan.decide(
            CrashPoint.MID_JOURNAL, f"{kind}:{key}", self.backend.clock.now()
        ):
            journal.append_torn(kind, key, data)
            raise DaemonCrashError(
                f"daemon crashed tearing the journal write of {kind}:{key}"
            )
        if data is None:
            journal.delete(kind, key)
        else:
            journal.put(kind, key, data)

    def _serialize_domain(self, name: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            record = self._domains.get(name)
            domain_id = self._ids.get(name)
        if record is None:
            return None
        return {
            "xml": record.config.to_xml(),
            "persistent": record.persistent,
            "autostart": record.autostart,
            "snapshots": record.snapshots,
            "checkpoints": record.checkpoints.to_dict(),
            "saved_path": record.saved_path,
            "managed_save_path": record.managed_save_path,
            "scheduler": dict(record.scheduler),
            "last_job": record.last_job,
            "id": domain_id,
        }

    def _journal_domain(self, name: str) -> None:
        """Journal the domain's full record (or a tombstone if gone)."""
        self._journal_write("domain", name, self._serialize_domain(name))

    def _journal_network(self, name: str) -> None:
        with self._lock:
            config = self._networks.get(name)
            data = (
                None
                if config is None
                else {
                    "xml": config.to_xml(),
                    "active": name in self._active_networks,
                    "leases": {
                        mac: dict(info)
                        for mac, info in self._dhcp_leases.get(name, {}).items()
                    },
                }
            )
        self._journal_write("network", name, data)

    def _journal_pool(self, name: str) -> None:
        with self._lock:
            config = self._pools.get(name)
            data = (
                None
                if config is None
                else {
                    "xml": config.to_xml(),
                    "active": name in self._active_pools,
                    "volumes": {
                        vol: vc.to_xml()
                        for vol, vc in self._pool_volumes.get(name, {}).items()
                    },
                }
            )
        self._journal_write("pool", name, data)

    def _journal_job(self, name: str, job: Optional[Any] = None) -> None:
        """Journal an active job's parameters, or its removal."""
        if job is None:
            self._journal_write("job", name, None)
            return
        self._journal_write(
            "job",
            name,
            {
                "job_type": job.job_type,
                "operation": job.operation,
                "total": job.total_bytes,
                "bandwidth": job.bandwidth_bytes_s,
                "extra": dict(job.extra),
                "started_at": job.started_at,
            },
        )

    def _backup_job_final(self, record: _DomainRecord, info: Dict[str, Any]) -> None:
        """Terminal-job hook: persist the outcome, drop the job record."""
        record.last_job = info
        self.events.publish(
            "job",
            domain=record.config.name,
            event=str(info.get("phase", "completed")),
            detail=str(info.get("operation", "")),
            job_id=info.get("job_id"),
        )
        self._journal_job(record.config.name)
        self._journal_domain(record.config.name)

    def flush_state(self) -> None:
        """Collapse the journal into a snapshot (graceful shutdown)."""
        if self._state is not None:
            self._state.checkpoint()

    def recover_state(self) -> Dict[str, Any]:
        """Rebuild bookkeeping from the journal, deferring to backend
        reality — the paper's non-intrusive restart.

        The journal only ever records *our* bookkeeping; whether a guest
        is actually running is the hypervisor's truth.  Recovery therefore:

        * restores networks, pools, and volumes from their records;
        * restores domain records, re-adopting running guests under
          their journalled ids, keeping persistent-but-stopped configs
          as shutoff, and dropping transient records whose guest died;
        * adopts guests the journal never heard of (a crash tore the
          record after the backend already started them) as transient
          domains with a config synthesized from the runtime;
        * re-creates interrupted background jobs just long enough to
          fail them cleanly, so their cleanup drops partial volumes and
          ``domain_get_job_info`` reports FAILED instead of wedging;
        * rewrites the reconciled state and checkpoints the journal, so
          the next recovery is snapshot load + empty tail.
        """
        journal = self._state
        if journal is None:
            return {"recovered": False}
        stats: Dict[str, Any] = {
            "recovered": True,
            "domains": 0,
            "adopted": 0,
            "dropped_transient": 0,
            "failed_jobs": [],
            "torn_tail_discarded": journal.torn_tail_discarded,
            "replayed_records": journal.replayed_records,
        }
        journalled_domains = journal.entries("domain")
        for name, data in sorted(journal.entries("network").items()):
            config = NetworkConfig.from_xml(data["xml"])
            with self._lock:
                self._networks[name] = config
                if data.get("active"):
                    self._active_networks.add(name)
                leases = data.get("leases") or {}
                if leases:
                    self._dhcp_leases[name] = {
                        mac: dict(info) for mac, info in leases.items()
                    }
        for name, data in sorted(journal.entries("pool").items()):
            config = StoragePoolConfig.from_xml(data["xml"])
            with self._lock:
                self._pools[name] = config
                if data.get("active"):
                    self._active_pools.add(name)
                self._pool_volumes[name] = {
                    vol: VolumeConfig.from_xml(vol_xml)
                    for vol, vol_xml in sorted((data.get("volumes") or {}).items())
                }
        max_id = 0
        for name, data in sorted(journalled_domains.items()):
            config = DomainConfig.from_xml(data["xml"])
            running = self.backend.has_guest(name)
            persistent = bool(data.get("persistent"))
            if not running and not persistent:
                # transient and its guest is gone: it ceased to exist
                stats["dropped_transient"] += 1
                continue
            record = _DomainRecord(config, persistent=persistent)
            record.autostart = bool(data.get("autostart"))
            record.snapshots = {
                snap: dict(body) for snap, body in (data.get("snapshots") or {}).items()
            }
            record.checkpoints = CheckpointTree.from_dict(data.get("checkpoints") or {})
            record.saved_path = data.get("saved_path")
            record.managed_save_path = data.get("managed_save_path")
            record.scheduler.update(data.get("scheduler") or {})
            record.last_job = data.get("last_job")
            with self._lock:
                self._domains[name] = record
                self._uuid_index[config.uuid] = name
                if running and data.get("id"):
                    # re-adopt the running guest under its old id
                    self._ids[name] = int(data["id"])
                    max_id = max(max_id, int(data["id"]))
            stats["domains"] += 1
        # guests the journal never heard of: reality wins, adopt them
        for name in self.backend.list_guests():
            with self._lock:
                if name in self._domains:
                    continue
            runtime = self.backend._get(name)
            config = DomainConfig(
                name,
                domain_type=self.accepted_types[0] if self.accepted_types else "test",
                uuid=runtime.uuid,
                memory_kib=runtime.max_memory_kib,
                current_memory_kib=runtime.memory_kib,
                vcpus=runtime.vcpus,
            )
            with self._lock:
                self._domains[name] = _DomainRecord(config, persistent=False)
                self._uuid_index[config.uuid] = name
            stats["adopted"] += 1
        with self._lock:
            self._next_id = max(self._next_id, max_id + 1)
        for name in self.backend.list_guests():
            with self._lock:
                missing = name not in self._ids
            if missing:
                self._assign_id(name)
        # interrupted jobs: re-create, then fail — cleanup runs for real
        for name, data in sorted(journal.entries("job").items()):
            with self._lock:
                record = self._domains.get(name)
            if record is not None and self.backend.has_guest(name):
                extra = dict(data.get("extra") or {})
                pool = extra.get("target_pool")
                volume = extra.get("target_volume")
                self.jobs.begin(
                    name,
                    data.get("job_type", "backup"),
                    data.get("operation", "backup-full"),
                    max(int(data.get("total", 1)), 1),
                    max(float(data.get("bandwidth", 1.0)), 1.0),
                    extra=extra,
                    on_cleanup=(
                        (lambda p=pool, v=volume: self._drop_backup_volume(p, v))
                        if pool and volume
                        else None
                    ),
                    on_final=lambda info, r=record: setattr(r, "last_job", info),
                )
                self.jobs.fail_active(name, "backup job interrupted by daemon restart")
                stats["failed_jobs"].append(name)
        # the bookkeeping now reflects reality: rewrite every record and
        # collapse history so the next recovery replays a minimal tail
        for name in sorted(journal.entries("job")):
            self._journal_write("job", name, None)
        with self._lock:
            live_domains = set(self._domains)
            networks = sorted(self._networks)
            pools = sorted(self._pools)
        for name in sorted(set(journalled_domains) | live_domains):
            self._journal_domain(name)
        for name in networks:
            self._journal_network(name)
        for name in pools:
            self._journal_pool(name)
        journal.checkpoint()
        return stats

    # ==================================================================
    # connection-level
    # ==================================================================

    def close(self) -> None:
        """Stateful drivers persist: closing a connection drops nothing."""

    def get_hostname(self) -> str:
        self._count_call()
        return self.backend.host.hostname

    def get_capabilities(self) -> str:
        self._count_call()
        from repro.xmlconfig.capabilities import GuestCapability

        guests = []
        if "lxc" in self.accepted_types:
            guests.append(GuestCapability("exe", self.backend.host.arch, ["lxc"]))
        hvm_types = [t for t in self.accepted_types if t != "lxc"]
        if hvm_types:
            os_type = "xen" if self.accepted_types == ("xen",) else "hvm"
            guests.append(GuestCapability("hvm", self.backend.host.arch, hvm_types))
            if os_type == "xen":
                guests.append(GuestCapability("xen", self.backend.host.arch, hvm_types))
        return self.backend.host.capabilities(guests).to_xml()

    def get_node_info(self) -> Dict[str, int]:
        self._count_call()
        return self.backend.host.node_info()

    def get_version(self) -> Tuple[int, int, int]:
        self._count_call()
        return VERSION

    def features(self) -> List[str]:
        return [
            "lifecycle",
            "pause_resume",
            "reboot",
            "save_restore",
            "managed_save",
            "set_memory",
            "set_vcpus",
            "snapshots",
            "checkpoints",
            "backup",
            "bulk_streams",
            "migration",
            "networks",
            "storage",
            "events",
            "device_hotplug",
            "remote",
            "autostart",
        ]

    # ==================================================================
    # domain enumeration / lookup
    # ==================================================================

    def list_domains(self) -> List[str]:
        self._count_call()
        return self.backend.list_guests()

    def list_defined_domains(self) -> List[str]:
        self._count_call()
        with self._lock:
            names = list(self._domains)
        return sorted(n for n in names if not self.backend.has_guest(n))

    def num_of_domains(self) -> int:
        self._count_call()
        return len(self.backend.list_guests())

    def domain_lookup_by_name(self, name: str) -> Dict[str, Any]:
        self._count_call()
        return self._public_record(name)

    def domain_lookup_by_uuid(self, uuid: str) -> Dict[str, Any]:
        self._count_call()
        with self._lock:
            name = self._uuid_index.get(uuidutil.normalize_uuid(uuid))
        if name is None:
            raise NoDomainError(f"no domain with matching uuid {uuid!r}")
        return self._public_record(name)

    def domain_lookup_by_id(self, domain_id: int) -> Dict[str, Any]:
        self._count_call()
        with self._lock:
            matches = [
                name
                for name, assigned in self._ids.items()
                if assigned == domain_id and self.backend.has_guest(name)
            ]
        if not matches:
            raise NoDomainError(f"no domain with matching id {domain_id}")
        return self._public_record(matches[0])

    # ==================================================================
    # domain lifecycle
    # ==================================================================

    def _validate_config(self, xml: str) -> DomainConfig:
        config = DomainConfig.from_xml(xml)
        if self.accepted_types and config.domain_type not in self.accepted_types:
            raise InvalidArgumentError(
                f"driver {self.name!r} cannot run domain type "
                f"{config.domain_type!r} (accepts {list(self.accepted_types)})"
            )
        if config.uuid is None:
            config.uuid = uuidutil.generate_uuid(self.backend.rng)
        # auto-assign MAC addresses exactly like libvirt does at define time
        used = {iface.mac for iface in config.interfaces if iface.mac}
        for iface in config.interfaces:
            while iface.mac is None:
                candidate = "52:54:00:%02x:%02x:%02x" % (
                    self.backend.rng.randrange(256),
                    self.backend.rng.randrange(256),
                    self.backend.rng.randrange(256),
                )
                if candidate not in used:
                    iface.mac = candidate
                    used.add(candidate)
        config.validate()
        return config

    def domain_define_xml(self, xml: str) -> Dict[str, Any]:
        self._count_call()
        # persisting the config costs a (small) backend-dependent write
        self.backend.cost.charge(self.backend.clock, "define")
        config = self._validate_config(xml)
        with self._lock:
            existing = self._domains.get(config.name)
            if existing is not None:
                if existing.config.uuid != config.uuid and self.backend.has_guest(config.name):
                    raise DomainExistsError(
                        f"domain {config.name!r} already exists with a different uuid"
                    )
                # redefining is allowed: update the persistent config
                self._uuid_index.pop(existing.config.uuid, None)
                existing.config = config
                existing.persistent = True
                self._uuid_index[config.uuid] = config.name
            else:
                by_uuid = self._uuid_index.get(config.uuid)
                if by_uuid is not None and by_uuid != config.name:
                    raise DomainExistsError(
                        f"uuid {config.uuid} already used by domain {by_uuid!r}"
                    )
                self._domains[config.name] = _DomainRecord(config, persistent=True)
                self._uuid_index[config.uuid] = config.name
        self.events.emit(config.name, DomainEvent.DEFINED)
        self._journal_domain(config.name)
        return self._public_record(config.name)

    def domain_undefine(self, name: str) -> None:
        self._count_call()
        self.backend.cost.charge(self.backend.clock, "undefine")
        record = self._record(name)
        if self.backend.has_guest(name):
            raise InvalidOperationError(
                f"cannot undefine domain {name!r} while it is active"
            )
        with self._lock:
            self._domains.pop(name, None)
            if record.config.uuid:
                self._uuid_index.pop(record.config.uuid, None)
        self.events.emit(name, DomainEvent.UNDEFINED)
        self._journal_domain(name)

    def domain_create(self, name: str) -> None:
        self._count_call()
        record = self._record(name)
        self._check_transition(name, "start")
        if record.managed_save_path is not None:
            path = record.managed_save_path
            self._backend_restore(record.config, path)
            record.managed_save_path = None
            if record.saved_path == path:
                record.saved_path = None
            self._assign_id(name)
            self._assign_dhcp_leases(record.config)
            self.events.emit(name, DomainEvent.STARTED, "restored")
            self._journal_domain(name)
            return
        self._backend_start(record.config)
        self._assign_id(name)
        self._assign_dhcp_leases(record.config)
        self.events.emit(name, DomainEvent.STARTED)
        self._journal_domain(name)

    def domain_create_xml(self, xml: str) -> Dict[str, Any]:
        self._count_call()
        config = self._validate_config(xml)
        with self._lock:
            if config.name in self._domains or self.backend.has_guest(config.name):
                raise DomainExistsError(f"domain {config.name!r} already exists")
            self._domains[config.name] = _DomainRecord(config, persistent=False)
            self._uuid_index[config.uuid] = config.name
        try:
            self._backend_start(config)
        except Exception:
            with self._lock:
                self._domains.pop(config.name, None)
                self._uuid_index.pop(config.uuid, None)
            raise
        self._assign_id(config.name)
        self._assign_dhcp_leases(config)
        self.events.emit(config.name, DomainEvent.STARTED, "booted")
        self._journal_domain(config.name)
        return self._public_record(config.name)

    def domain_shutdown(self, name: str) -> None:
        self._count_call()
        self._record(name)
        self._check_transition(name, "shutdown")
        self._backend_shutdown(name)
        self.jobs.fail_active(name, "domain shut down during job")
        self._release_dhcp_leases(self._record(name).config)
        self.events.emit(name, DomainEvent.SHUTDOWN, "guest-initiated")
        self.events.emit(name, DomainEvent.STOPPED, "shutdown")
        self._forget_transient(name)
        self._journal_domain(name)

    def domain_destroy(self, name: str) -> None:
        self._count_call()
        self._record(name)
        self._check_transition(name, "destroy")
        self._backend_destroy(name)
        self.jobs.fail_active(name, "domain destroyed during job")
        self._release_dhcp_leases(self._record(name).config)
        self.events.emit(name, DomainEvent.STOPPED, "destroyed")
        self._forget_transient(name)
        self._journal_domain(name)

    def domain_suspend(self, name: str) -> None:
        self._count_call()
        self._record(name)
        self._check_transition(name, "suspend")
        self._backend_suspend(name)
        self.events.emit(name, DomainEvent.SUSPENDED)

    def domain_resume(self, name: str) -> None:
        self._count_call()
        self._record(name)
        self._check_transition(name, "resume")
        self._backend_resume(name)
        self.events.emit(name, DomainEvent.RESUMED)

    def domain_reboot(self, name: str) -> None:
        self._count_call()
        self._record(name)
        self._check_transition(name, "reboot")
        self._backend_reboot(name)

    # ==================================================================
    # domain introspection / tuning
    # ==================================================================

    def domain_get_info(self, name: str) -> Dict[str, Any]:
        self._count_call()
        record = self._record(name)
        if self.backend.has_guest(name):
            raw = self._backend_info(name)
            return {
                "state": int(from_run_state_str(raw["state"])),
                "max_memory_kib": raw["max_memory_kib"],
                "memory_kib": raw["memory_kib"],
                "vcpus": raw["vcpus"],
                "cpu_seconds": raw["cpu_seconds"],
            }
        return {
            "state": int(DomainState.SHUTOFF),
            "max_memory_kib": record.config.memory_kib,
            "memory_kib": record.config.current_memory_kib,
            "vcpus": record.config.vcpus,
            "cpu_seconds": 0.0,
        }

    #: scheduler parameter fields and their expected wire types
    SCHEDULER_FIELDS = {
        "cpu_shares": "ULLONG",
        "vcpu_period": "ULLONG",
        "vcpu_quota": "LLONG",
    }

    def domain_get_scheduler_params(self, name: str) -> List[Any]:
        self._count_call()
        from repro.util.typedparams import ParamType, TypedParameter, TypedParamList

        record = self._record(name)
        # TypedParamList keeps the typed-params encoding explicit on the
        # wire even if the set is ever empty
        params = TypedParamList(
            [
                TypedParameter("cpu_shares", ParamType.ULLONG, record.scheduler["cpu_shares"]),
                TypedParameter("vcpu_period", ParamType.ULLONG, record.scheduler["vcpu_period"]),
                TypedParameter("vcpu_quota", ParamType.LLONG, record.scheduler["vcpu_quota"]),
            ]
        )
        return params

    def domain_set_scheduler_params(self, name: str, params: List[Any]) -> None:
        self._count_call()
        from repro.util import typedparams as tp
        from repro.util.typedparams import ParamType

        record = self._record(name)
        allowed = {
            "cpu_shares": ParamType.ULLONG,
            "vcpu_period": ParamType.ULLONG,
            "vcpu_quota": ParamType.LLONG,
        }
        if not params:
            raise InvalidArgumentError("no scheduler parameters supplied")
        tp.validate_fields(params, allowed)
        values = tp.to_dict(params)
        if "vcpu_period" in values and not 1000 <= values["vcpu_period"] <= 1000000:
            raise InvalidArgumentError(
                f"vcpu_period must be in [1000, 1000000], got {values['vcpu_period']}"
            )
        if "vcpu_quota" in values and values["vcpu_quota"] not in (-1,) and values["vcpu_quota"] < 1000:
            raise InvalidArgumentError(
                f"vcpu_quota must be -1 (unlimited) or >= 1000, got {values['vcpu_quota']}"
            )
        record.scheduler.update(values)
        if self.backend.has_guest(name):
            self._apply_scheduler(name, record.scheduler)
        self.events.publish(
            "config", domain=name, event="scheduler", detail=",".join(sorted(values))
        )
        self._journal_domain(name)

    def _apply_scheduler(self, name: str, scheduler: Dict[str, int]) -> None:
        """Push scheduler tunables to the live instance (driver-specific)."""
        # default: scale the runtime's utilization share; concrete drivers
        # may override (lxc writes the cgroup cpu.shares file)
        self.backend.cost.charge(self.backend.clock, "set_vcpus")

    def domain_get_job_info(self, name: str) -> Dict[str, Any]:
        self._count_call()
        record = self._record(name)
        # an active background job wins; the engine writes its terminal
        # info into record.last_job, so finished jobs fall through below
        active = self.jobs.active(name)
        if active is not None:
            return active.info(self.backend.clock.now())
        if record.last_job is None:
            return {"type": "none"}
        return dict(record.last_job)

    def domain_get_state(self, name: str) -> int:
        self._count_call()
        self._record(name)
        return int(self._domain_state(name))

    def domain_get_xml_desc(self, name: str) -> str:
        self._count_call()
        return self._record(name).config.to_xml()

    def domain_get_stats(self, name: str) -> Dict[str, Any]:
        self._count_call()
        record = self._record(name)
        stats: Dict[str, Any] = {
            "name": name,
            "state": int(self._domain_state(name)),
        }
        if self.backend.has_guest(name):
            self.backend._charge("query")
            runtime = self.backend._get(name)
            stats.update(
                {
                    "cpu_seconds": runtime.cpu_seconds,
                    "vcpus": runtime.vcpus,
                    "memory_kib": runtime.memory_kib,
                    "max_memory_kib": runtime.max_memory_kib,
                    "dirty_rate_mib_s": runtime.dirty_rate_mib_s,
                    **runtime.io_stats(),
                }
            )
        else:
            stats.update(
                {
                    "cpu_seconds": 0.0,
                    "vcpus": record.config.vcpus,
                    "memory_kib": record.config.current_memory_kib,
                    "max_memory_kib": record.config.memory_kib,
                    "dirty_rate_mib_s": 0.0,
                    "disk_read_bytes": 0,
                    "disk_write_bytes": 0,
                    "net_rx_bytes": 0,
                    "net_tx_bytes": 0,
                }
            )
        return stats

    def domain_set_memory(self, name: str, memory_kib: int) -> None:
        self._count_call()
        record = self._record(name)
        if memory_kib <= 0:
            raise InvalidArgumentError("memory target must be positive")
        if memory_kib > record.config.memory_kib:
            raise InvalidOperationError(
                f"target {memory_kib} KiB above defined maximum "
                f"{record.config.memory_kib} KiB"
            )
        if self.backend.has_guest(name):
            self._backend_set_memory(name, memory_kib)
        record.config.current_memory_kib = memory_kib
        self.events.publish(
            "config", domain=name, event="memory", memory_kib=memory_kib
        )
        self._journal_domain(name)

    def domain_set_vcpus(self, name: str, vcpus: int) -> None:
        self._count_call()
        record = self._record(name)
        if vcpus < 1:
            raise InvalidArgumentError("vcpu count must be at least 1")
        if vcpus > record.config.max_vcpus:
            raise InvalidOperationError(
                f"target {vcpus} vCPUs above defined maximum {record.config.max_vcpus}"
            )
        if self.backend.has_guest(name):
            self._backend_set_vcpus(name, vcpus)
        record.config.vcpus = vcpus
        self.events.publish("config", domain=name, event="vcpus", vcpus=vcpus)
        self._journal_domain(name)

    def domain_save(self, name: str, path: str) -> None:
        self._count_call()
        record = self._record(name)
        self._check_transition(name, "save")
        self._backend_save(name, path)
        self.jobs.fail_active(name, "domain stopped by save")
        record.saved_path = path
        record.last_job = {"type": "save", "completed": True, "path": path}
        self.events.emit(name, DomainEvent.STOPPED, "saved")
        self._journal_domain(name)

    def domain_restore(self, path: str) -> Dict[str, Any]:
        self._count_call()
        with self._lock:
            matches = [
                (name, rec) for name, rec in self._domains.items()
                if rec.saved_path == path
            ]
        if not matches:
            raise NoDomainError(f"no saved domain image at {path!r}")
        name, record = matches[0]
        self._backend_restore(record.config, path)
        record.saved_path = None
        self._assign_id(name)
        self.events.emit(name, DomainEvent.STARTED, "restored")
        self._journal_domain(name)
        return self._public_record(name)

    #: where managed-save images live (libvirt: /var/lib/libvirt/qemu/save)
    MANAGED_SAVE_DIR = "/var/lib/pyvirt/save"

    def _managed_save_path(self, name: str) -> str:
        return f"{self.MANAGED_SAVE_DIR}/{name}.save"

    def domain_managed_save(self, name: str) -> None:
        """Save to the driver-managed path; the next start auto-restores."""
        self._count_call()
        record = self._record(name)
        self._check_transition(name, "save")
        path = self._managed_save_path(name)
        self._backend_save(name, path)
        self.jobs.fail_active(name, "domain stopped by managed save")
        record.saved_path = path
        record.managed_save_path = path
        record.last_job = {"type": "save", "completed": True, "path": path, "managed": True}
        self.events.emit(name, DomainEvent.STOPPED, "saved")
        self._journal_domain(name)

    def domain_managed_save_remove(self, name: str) -> None:
        self._count_call()
        record = self._record(name)
        if record.managed_save_path is None:
            raise InvalidOperationError(
                f"domain {name!r} has no managed save image"
            )
        if record.saved_path == record.managed_save_path:
            record.saved_path = None
        record.managed_save_path = None
        self.events.publish("config", domain=name, event="managed-save-removed")
        self._journal_domain(name)

    def domain_has_managed_save(self, name: str) -> bool:
        self._count_call()
        return self._record(name).managed_save_path is not None

    def domain_get_autostart(self, name: str) -> bool:
        self._count_call()
        return self._record(name).autostart

    def domain_set_autostart(self, name: str, autostart: bool) -> None:
        self._count_call()
        record = self._record(name)
        if not record.persistent:
            raise InvalidOperationError("transient domains cannot autostart")
        record.autostart = bool(autostart)
        self.events.publish(
            "config",
            domain=name,
            event="autostart",
            detail="enabled" if record.autostart else "disabled",
        )
        self._journal_domain(name)

    def autostart_all(self) -> List[str]:
        """Start every autostart-flagged inactive domain (daemon boot)."""
        started = []
        with self._lock:
            candidates = [
                name for name, rec in self._domains.items() if rec.autostart
            ]
        for name in sorted(candidates):
            if self._domain_state(name) == DomainState.SHUTOFF:
                self.domain_create(name)
                started.append(name)
        return started

    # ==================================================================
    # device hotplug
    # ==================================================================

    def domain_attach_device(self, name: str, device_xml: str) -> None:
        self._count_call()
        record = self._record(name)
        from repro.util.xmlutil import parse_xml
        from repro.xmlconfig.domain import DiskDevice, InterfaceDevice

        elem = parse_xml(device_xml)
        if elem.tag == "disk":
            device = DiskDevice.from_element(elem)
            record.config.disks.append(device)
        elif elem.tag == "interface":
            device = InterfaceDevice.from_element(elem)
            record.config.interfaces.append(device)
        else:
            raise InvalidArgumentError(f"cannot hotplug device <{elem.tag}>")
        record.config.validate()
        self.events.publish("device", domain=name, event="attached", detail=elem.tag)
        self._journal_domain(name)

    def domain_detach_device(self, name: str, device_xml: str) -> None:
        self._count_call()
        record = self._record(name)
        from repro.util.xmlutil import parse_xml
        from repro.xmlconfig.domain import DiskDevice, InterfaceDevice

        elem = parse_xml(device_xml)
        if elem.tag == "disk":
            device = DiskDevice.from_element(elem)
            matches = [d for d in record.config.disks if d.target_dev == device.target_dev]
            if not matches:
                raise InvalidArgumentError(
                    f"no disk with target {device.target_dev!r} on {name!r}"
                )
            record.config.disks.remove(matches[0])
        elif elem.tag == "interface":
            device = InterfaceDevice.from_element(elem)
            matches = [i for i in record.config.interfaces if i.mac == device.mac]
            if not matches:
                raise InvalidArgumentError(f"no interface with mac {device.mac!r}")
            record.config.interfaces.remove(matches[0])
        else:
            raise InvalidArgumentError(f"cannot detach device <{elem.tag}>")
        self.events.publish("device", domain=name, event="detached", detail=elem.tag)
        self._journal_domain(name)

    # ==================================================================
    # snapshots
    # ==================================================================

    def snapshot_create(self, name: str, snapshot_name: str) -> Dict[str, Any]:
        self._count_call()
        record = self._record(name)
        if not snapshot_name:
            raise InvalidArgumentError("snapshot name must be non-empty")
        if snapshot_name in record.snapshots:
            raise SnapshotExistsError(
                f"domain {name!r} already has snapshot {snapshot_name!r}"
            )
        self.backend.cost.charge(
            self.backend.clock,
            "snapshot",
            record.config.current_memory_kib / MIB if self.backend.has_guest(name) else 0.0,
        )
        snapshot = {
            "name": snapshot_name,
            "state": int(self._domain_state(name)),
            "xml": record.config.to_xml(),
            "creation_time": self.backend.clock.now(),
        }
        snapshot["disks"] = self._snapshot_disks(record, snapshot_name)
        record.snapshots[snapshot_name] = snapshot
        self.events.publish("snapshot", domain=name, event="created", detail=snapshot_name)
        self._journal_domain(name)
        return {"name": snapshot_name, "domain": name}

    def _snapshot_disks(
        self, record: _DomainRecord, snapshot_name: str
    ) -> List[Dict[str, Any]]:
        """Freeze each attached disk's state: allocation plus a shallow
        COW overlay pinning the backing image (qcow2 external snapshot).
        Raw images record allocation only — no overlay is possible."""
        images = self.backend.images
        disks: List[Dict[str, Any]] = []
        created: List[str] = []
        try:
            for disk in record.config.disks:
                source = disk.source
                if not source or not images.exists(source):
                    continue
                image = images.lookup(source)
                entry: Dict[str, Any] = {
                    "source": source,
                    "target": disk.target_dev,
                    "allocation_bytes": image.allocation_bytes,
                }
                if image.image_format != "raw":
                    overlay = f"{source}.{snapshot_name}"
                    images.clone(source, overlay, shallow=True)
                    created.append(overlay)
                    entry["overlay"] = overlay
                disks.append(entry)
        except Exception:
            for overlay in created:
                try:
                    images.delete(overlay)
                except Exception:
                    pass
            raise
        return disks

    def snapshot_list(self, name: str) -> List[str]:
        self._count_call()
        return sorted(self._record(name).snapshots)

    def snapshot_revert(self, name: str, snapshot_name: str) -> None:
        self._count_call()
        record = self._record(name)
        snapshot = record.snapshots.get(snapshot_name)
        if snapshot is None:
            raise NoSnapshotError(f"domain {name!r} has no snapshot {snapshot_name!r}")
        was_running = DomainState(snapshot["state"]) in (
            DomainState.RUNNING,
            DomainState.PAUSED,
        )
        if self.backend.has_guest(name):
            self._backend_destroy(name)
        record.config = DomainConfig.from_xml(snapshot["xml"])
        images = self.backend.images
        for entry in snapshot.get("disks", ()):
            source = entry.get("source")
            if not source or not images.exists(source):
                continue
            images.set_allocation(source, int(entry.get("allocation_bytes", 0)))
            # contents were replaced wholesale: invalidate bitmaps so a
            # later incremental backup stays a correct (conservative) superset
            images.mark_all_dirty(source)
        if was_running:
            self._backend_start(record.config)
            self._assign_id(name)
        self.events.emit(name, DomainEvent.STARTED if was_running else DomainEvent.STOPPED, "snapshot-revert")
        self._journal_domain(name)

    def snapshot_delete(self, name: str, snapshot_name: str) -> None:
        self._count_call()
        record = self._record(name)
        snapshot = record.snapshots.get(snapshot_name)
        if snapshot is None:
            raise NoSnapshotError(f"domain {name!r} has no snapshot {snapshot_name!r}")
        images = self.backend.images
        for entry in snapshot.get("disks", ()):
            overlay = entry.get("overlay")
            if overlay and images.exists(overlay):
                try:
                    images.delete(overlay)
                except ResourceBusyError:
                    pass  # something chained onto the overlay; leave it
        del record.snapshots[snapshot_name]
        self.events.publish("snapshot", domain=name, event="deleted", detail=snapshot_name)
        self._journal_domain(name)

    # ==================================================================
    # checkpoints & backup jobs
    # ==================================================================

    def _domain_disk_paths(self, record: _DomainRecord) -> List[str]:
        """Paths of the domain's disks that exist in the image store."""
        images = self.backend.images
        return [
            disk.source
            for disk in record.config.disks
            if disk.source and images.exists(disk.source)
        ]

    def checkpoint_create(self, name: str, checkpoint_name: str) -> Dict[str, Any]:
        self._count_call()
        record = self._record(name)
        state = self._domain_state(name)
        if state not in (DomainState.RUNNING, DomainState.PAUSED):
            raise InvalidOperationError(
                f"cannot checkpoint domain {name!r}: domain is "
                f"{DomainState(state).name.lower()}"
            )
        if self.jobs.active(name) is not None:
            raise ResourceBusyError(
                f"cannot checkpoint domain {name!r} during an active job"
            )
        disks = self._domain_disk_paths(record)
        if not disks:
            raise InvalidOperationError(
                f"domain {name!r} has no disks to checkpoint"
            )
        # checkpoint creation is metadata-only: bitmap handoff, no copy
        self.backend.cost.charge(self.backend.clock, "snapshot", 0.0)
        images = self.backend.images
        frozen = {path: images.reset_dirty(path) for path in disks}
        checkpoint = record.checkpoints.create(
            checkpoint_name,
            creation_time=self.backend.clock.now(),
            state=DomainState(state).name.lower(),
            disks=frozen,
            block_size=images.block_size,
        )
        self.events.publish(
            "checkpoint", domain=name, event="created", detail=checkpoint_name
        )
        self._journal_domain(name)
        return {
            "name": checkpoint_name,
            "domain": name,
            "parent": checkpoint.parent,
        }

    def checkpoint_list(self, name: str) -> List[str]:
        self._count_call()
        return self._record(name).checkpoints.list_names()

    def checkpoint_delete(self, name: str, checkpoint_name: str) -> None:
        self._count_call()
        record = self._record(name)
        if self.jobs.active(name) is not None:
            raise ResourceBusyError(
                f"cannot delete a checkpoint of {name!r} during an active job"
            )
        was_current = record.checkpoints.current == checkpoint_name
        checkpoint = record.checkpoints.delete(checkpoint_name)
        if was_current:
            # the leaf's frozen blocks flow back into the active bitmaps
            images = self.backend.images
            for path, blocks in checkpoint.disks.items():
                if images.exists(path):
                    images.merge_dirty(path, blocks)
        self.events.publish(
            "checkpoint", domain=name, event="deleted", detail=checkpoint_name
        )
        self._journal_domain(name)

    def checkpoint_get_xml_desc(self, name: str, checkpoint_name: str) -> str:
        self._count_call()
        record = self._record(name)
        checkpoint = record.checkpoints.get(checkpoint_name)
        return CheckpointConfig.from_tree_checkpoint(checkpoint, domain=name).to_xml()

    def backup_begin(self, name: str, options: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Start a full or incremental backup as a cancellable job.

        Options: ``pool`` (required target pool), ``volume`` (target
        volume name), ``incremental`` (checkpoint name: copy only blocks
        dirtied since it), ``checkpoint`` (also freeze a new checkpoint
        at the start of the backup), ``bandwidth_mib_s``.
        """
        self._count_call()
        options = dict(options or {})
        record = self._record(name)
        state = self._domain_state(name)
        if state not in (DomainState.RUNNING, DomainState.PAUSED):
            raise InvalidOperationError(
                f"cannot back up domain {name!r}: domain is "
                f"{DomainState(state).name.lower()}"
            )
        images = self.backend.images
        disks = self._domain_disk_paths(record)
        if not disks:
            raise InvalidOperationError(f"domain {name!r} has no disks to back up")
        pool = options.get("pool")
        if not pool:
            raise InvalidArgumentError("backup_begin requires a target pool")
        if self.jobs.active(name) is not None:
            raise ResourceBusyError(
                f"domain {name!r} already has an active job"
            )
        incremental = options.get("incremental") or None
        if incremental:
            since = record.checkpoints.blocks_since(incremental, disks)
            total = 0
            for path in disks:
                blocks = set(since.get(path, set()))
                blocks.update(images.dirty_blocks(path))
                total += len(blocks) * images.block_size
            operation = "backup-incremental"
        else:
            total = sum(images.lookup(path).allocation_bytes for path in disks)
            operation = "backup-full"
        bandwidth_mib_s = float(
            options.get("bandwidth_mib_s")
            or self.backend.cost.bandwidth_gib_s * 1024
        )
        if bandwidth_mib_s <= 0:
            raise InvalidArgumentError("backup bandwidth must be positive")
        volume_name = options.get("volume") or (
            f"{name}-backup-{'inc' if incremental else 'full'}"
        )
        capacity = max(total, images.block_size)
        created = self.storage_vol_create_xml(
            pool, VolumeConfig(volume_name, capacity_bytes=capacity).to_xml()
        )
        target_path = created["path"]
        try:
            checkpoint_name = options.get("checkpoint")
            if checkpoint_name:
                # freeze the bitmaps *after* computing the transfer set:
                # this backup covers up to now, future incrementals are
                # relative to the new checkpoint
                frozen = {path: images.reset_dirty(path) for path in disks}
                record.checkpoints.create(
                    checkpoint_name,
                    creation_time=self.backend.clock.now(),
                    state=DomainState(state).name.lower(),
                    disks=frozen,
                    block_size=images.block_size,
                )
            job = self.jobs.begin(
                name,
                "backup",
                operation,
                total,
                bandwidth_mib_s * MIB,
                extra={
                    "target_pool": pool,
                    "target_volume": volume_name,
                    "target_path": target_path,
                    "incremental": incremental or "",
                },
                on_complete=lambda: images.set_allocation(target_path, total),
                on_cleanup=lambda: self._drop_backup_volume(pool, volume_name),
                on_final=lambda info: self._backup_job_final(record, info),
            )
        except Exception:
            self._drop_backup_volume(pool, volume_name)
            raise
        self.events.publish(
            "job", domain=name, event="started", detail=operation, job_id=job.job_id
        )
        self._journal_job(name, job)
        self._journal_domain(name)
        return job.info(self.backend.clock.now())

    def _drop_backup_volume(self, pool: str, volume: str) -> None:
        """Remove a backup target volume (cancelled/failed job), best effort."""
        with self._lock:
            volumes = self._pool_volumes.get(pool)
            config = None if volumes is None else volumes.pop(volume, None)
            pool_config = self._pools.get(pool)
        if config is None or pool_config is None:
            return
        path = f"{pool_config.target_path}/{volume}"
        if self.backend.images.exists(path):
            try:
                self.backend.images.delete(path)
            except (NoStorageVolumeError, ResourceBusyError):
                pass
        self._journal_pool(pool)

    def backup_begin_pull(
        self, name: str, options: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Pull-mode backup: the dirty-block manifest plus the blocks'
        contents, for the *client* to extract NBD-style.

        Unlike :meth:`backup_begin` — which copies into a daemon-side
        target volume as a background job — pull mode is read-only on
        the daemon: ``incremental`` (a checkpoint name) selects blocks
        dirtied since that checkpoint (frozen bitmaps merged with the
        live one, as PR-5's incremental push does); without it every
        allocated block ships.  Over the remote driver the ``data``
        field travels as a stream.
        """
        self._count_call()
        options = dict(options or {})
        record = self._record(name)
        state = self._domain_state(name)
        if state not in (DomainState.RUNNING, DomainState.PAUSED):
            raise InvalidOperationError(
                f"cannot back up domain {name!r}: domain is "
                f"{DomainState(state).name.lower()}"
            )
        images = self.backend.images
        disks = self._domain_disk_paths(record)
        if not disks:
            raise InvalidOperationError(f"domain {name!r} has no disks to back up")
        incremental = options.get("incremental") or None
        manifest: Dict[str, List[int]] = {}
        if incremental:
            since = record.checkpoints.blocks_since(incremental, disks)
            for path in disks:
                blocks = set(since.get(path, set()))
                blocks.update(images.dirty_blocks(path))
                manifest[path] = sorted(blocks)
        else:
            for path in disks:
                allocated = images.lookup(path).allocation_bytes
                manifest[path] = list(range(-(-allocated // images.block_size)))
        chunks: List[bytes] = []
        for path in disks:
            for block in manifest[path]:
                chunks.append(
                    images.read_bytes(
                        path, block * images.block_size, images.block_size
                    )
                )
        data = b"".join(chunks)
        self.events.publish(
            "job",
            domain=name,
            event="backup-pull",
            detail="incremental" if incremental else "full",
        )
        return {
            "domain": name,
            "block_size": images.block_size,
            "disks": manifest,
            "total_bytes": len(data),
            "incremental": incremental or "",
            "data": data,
        }

    def domain_open_console(self, name: str) -> LocalConsole:
        self._count_call()
        state = self._domain_state(name)
        if state not in (DomainState.RUNNING, DomainState.PAUSED):
            raise InvalidOperationError(
                f"cannot open console: domain {name!r} is "
                f"{DomainState(state).name.lower()}"
            )
        return LocalConsole(name)

    def domain_abort_job(self, name: str) -> Dict[str, Any]:
        self._count_call()
        self._record(name)
        info = self.jobs.cancel(name)
        self.events.publish(
            "job",
            domain=name,
            event="aborted",
            detail=str(info.get("operation", "")),
            job_id=info.get("job_id"),
        )
        self._journal_domain(name)
        return info

    # ==================================================================
    # migration (driver hooks; orchestrated by repro.migration.manager)
    # ==================================================================

    def migrate_begin(self, name: str) -> Dict[str, Any]:
        self._count_call()
        record = self._record(name)
        self._check_transition(name, "migrate")
        runtime = self.backend._get(name)
        return {
            "name": name,
            "uuid": record.config.uuid,
            "xml": record.config.to_xml(),
            "memory_kib": runtime.memory_kib,
            "dirty_rate_mib_s": runtime.dirty_rate_mib_s,
            "driver": self.name,
        }

    def migrate_prepare(self, description: Dict[str, Any]) -> Dict[str, Any]:
        self._count_call()
        if description.get("driver") != self.name:
            raise MigrationIncompatibleError(
                f"cannot migrate a {description.get('driver')!r} guest to a "
                f"{self.name!r} host"
            )
        name = description["name"]
        if self.backend.has_guest(name):
            raise DomainExistsError(f"domain {name!r} already active on destination")
        config = self._validate_config(description["xml"])
        with self._lock:
            if name not in self._domains:
                self._domains[name] = _DomainRecord(config, persistent=False)
                self._uuid_index[config.uuid] = name
        self._backend_start(config, paused=True)
        self.events.publish("migration", domain=name, event="prepared", detail="incoming")
        self._journal_domain(name)
        return {"name": name, "uuid": config.uuid}

    def migrate_perform(
        self, name: str, cookie: Dict[str, Any], params: Dict[str, Any]
    ) -> Dict[str, Any]:
        self._count_call()
        self._record(name)
        runtime = self.backend._get(name)
        bandwidth_mib_s = params.get("bandwidth_mib_s") or (
            self.backend.cost.bandwidth_gib_s * 1024
        )
        live = params.get("live", True)
        max_downtime = params.get("max_downtime_s", 0.3)
        memory_bytes = runtime.memory_kib * 1024
        if live:
            result = run_precopy(
                memory_bytes=memory_bytes,
                dirty_rate_bytes_s=runtime.dirty_rate_mib_s * MIB,
                bandwidth_bytes_s=bandwidth_mib_s * MIB,
                max_downtime_s=max_downtime,
                auto_converge=bool(params.get("auto_converge")),
                post_copy=bool(params.get("post_copy")),
            )
        else:
            # offline migration: pause first, stop-and-copy everything
            result = run_precopy(
                memory_bytes=memory_bytes,
                dirty_rate_bytes_s=0.0,
                bandwidth_bytes_s=bandwidth_mib_s * MIB,
                max_downtime_s=memory_bytes / (bandwidth_mib_s * MIB) + 1.0,
            )
        if (
            params.get("strict_convergence")
            and not result.converged
            and not result.post_copy  # post-copy completed the migration
        ):
            raise MigrationError(
                f"migration of {name!r} did not converge "
                f"(dirty rate {runtime.dirty_rate_mib_s} MiB/s vs "
                f"bandwidth {bandwidth_mib_s} MiB/s)"
            )
        # the guest runs during the copy rounds, pauses for the final one
        self.backend.clock.sleep(result.total_time_s - result.downtime_s)
        if self.backend.guest_state(name).value == "running":
            self._backend_suspend(name)
        self.backend.clock.sleep(result.downtime_s)
        self._record(name).last_job = {
            "type": "migration",
            "completed": True,
            "total_time_s": result.total_time_s,
            "downtime_s": result.downtime_s,
            "transferred_bytes": result.transferred_bytes,
            "rounds": result.rounds,
        }
        self.events.publish(
            "migration",
            domain=name,
            event="performed",
            detail="post-copy" if result.post_copy else ("live" if live else "offline"),
            rounds=result.rounds,
        )
        self._journal_domain(name)
        return {
            "total_time_s": result.total_time_s,
            "downtime_s": result.downtime_s,
            "rounds": result.rounds,
            "converged": result.converged,
            "transferred_bytes": result.transferred_bytes,
            "post_copy": result.post_copy,
            "postcopy_time_s": result.postcopy_time_s,
            "throttle_pct": result.throttle_pct,
        }

    def migrate_finish(self, cookie: Dict[str, Any], stats: Dict[str, Any]) -> Dict[str, Any]:
        self._count_call()
        name = cookie["name"]
        if stats.get("failed"):
            if self.backend.has_guest(name):
                self._backend_destroy(name)
            self._forget_transient(name)
            self._journal_domain(name)
            return {"name": name, "failed": True}
        self._backend_resume(name)
        record = self._record(name)
        record.persistent = True
        self.events.emit(name, DomainEvent.MIGRATED, "incoming")
        self.events.emit(name, DomainEvent.STARTED, "migrated")
        self._journal_domain(name)
        return self._public_record(name)

    def migrate_confirm(self, name: str, cancelled: bool) -> None:
        self._count_call()
        if cancelled:
            if self.backend.has_guest(name) and self.backend.guest_state(name).value == "paused":
                self._backend_resume(name)
            return
        if self.backend.has_guest(name):
            self._backend_destroy(name)
        self.events.emit(name, DomainEvent.STOPPED, "migrated")
        self._forget_transient(name)
        self._journal_domain(name)

    def migrate_p2p(self, name: str, dest_uri: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Peer-to-peer mode: this (source) host dials the destination
        itself and drives the whole handshake; the managing client only
        issued one call."""
        self._count_call()
        from repro.core.connection import open_connection
        from repro.migration.manager import run_handshake

        dest = open_connection(dest_uri)
        try:
            if dest._driver is self or dest.hostname() == self.get_hostname():
                raise InvalidArgumentError(
                    f"peer-to-peer destination {dest_uri!r} is this host"
                )
            result, stats = run_handshake(self, dest._driver, name, params or {})
        finally:
            dest.close()
        return {"name": result["name"], "uuid": result.get("uuid"), "stats": stats}

    # ==================================================================
    # events
    # ==================================================================

    def domain_event_register(self, callback: EventCallback) -> int:
        self._count_call()
        return self.events.register(callback)

    def domain_event_deregister(self, callback_id: int) -> None:
        self._count_call()
        self.events.deregister(callback_id)

    def event_bus_subscribe(self, handler, kinds=None, max_queue=None) -> int:
        """Subscribe to typed bus records; returns the subscription id."""
        self._count_call()
        return self.events.subscribe(handler, kinds=kinds, max_queue=max_queue)

    def event_bus_unsubscribe(self, sub_id: int) -> None:
        self._count_call()
        self.events.unsubscribe(sub_id)

    # ==================================================================
    # networks
    # ==================================================================

    def network_define_xml(self, xml: str) -> Dict[str, Any]:
        self._count_call()
        config = NetworkConfig.from_xml(xml)
        if config.uuid is None:
            config.uuid = uuidutil.generate_uuid(self.backend.rng)
        with self._lock:
            if config.name in self._networks:
                raise NetworkExistsError(f"network {config.name!r} already defined")
            self._networks[config.name] = config
        self.events.publish("network", event="defined", detail=config.name)
        self._journal_network(config.name)
        return self._network_record(config.name)

    def _get_network(self, name: str) -> NetworkConfig:
        with self._lock:
            config = self._networks.get(name)
        if config is None:
            raise NoNetworkError(f"no network with matching name {name!r}")
        return config

    def _network_record(self, name: str) -> Dict[str, Any]:
        config = self._get_network(name)
        return {
            "name": name,
            "uuid": config.uuid,
            "active": name in self._active_networks,
            "bridge": config.bridge,
        }

    def network_undefine(self, name: str) -> None:
        self._count_call()
        self._get_network(name)
        if name in self._active_networks:
            raise InvalidOperationError(f"network {name!r} is active")
        with self._lock:
            del self._networks[name]
        self.events.publish("network", event="undefined", detail=name)
        self._journal_network(name)

    def network_create(self, name: str) -> None:
        self._count_call()
        self._get_network(name)
        if name in self._active_networks:
            raise InvalidOperationError(f"network {name!r} is already active")
        self._active_networks.add(name)
        self.events.publish("network", event="started", detail=name)
        self._journal_network(name)

    def network_destroy(self, name: str) -> None:
        self._count_call()
        self._get_network(name)
        if name not in self._active_networks:
            raise InvalidOperationError(f"network {name!r} is not active")
        self._active_networks.discard(name)
        with self._lock:
            self._dhcp_leases.pop(name, None)
        self.events.publish("network", event="stopped", detail=name)
        self._journal_network(name)

    def network_list(self) -> List[Dict[str, Any]]:
        self._count_call()
        with self._lock:
            names = sorted(self._networks)
        return [self._network_record(name) for name in names]

    def network_lookup_by_name(self, name: str) -> Dict[str, Any]:
        self._count_call()
        return self._network_record(name)

    def network_get_xml_desc(self, name: str) -> str:
        self._count_call()
        return self._get_network(name).to_xml()

    def network_dhcp_leases(self, name: str) -> List[Dict[str, Any]]:
        self._count_call()
        self._get_network(name)
        with self._lock:
            leases = dict(self._dhcp_leases.get(name, {}))
        return [
            {"mac": mac, **info} for mac, info in sorted(leases.items())
        ]

    def _assign_dhcp_leases(self, config: DomainConfig) -> None:
        """Hand a lease to every NIC attached to an active DHCP network."""
        touched = set()
        for iface in config.interfaces:
            if iface.interface_type != "network" or not iface.mac:
                continue
            network = self._networks.get(iface.source)
            if (
                network is None
                or iface.source not in self._active_networks
                or network.ip is None
                or network.ip.dhcp is None
            ):
                continue
            with self._lock:
                leases = self._dhcp_leases.setdefault(iface.source, {})
                if iface.mac in leases:
                    continue
                used = {entry["ip"] for entry in leases.values()}
                ip = _next_free_lease(network.ip.dhcp, used)
                if ip is None:
                    continue  # range exhausted: the guest simply gets no lease
                leases[iface.mac] = {
                    "ip": ip,
                    "hostname": config.name,
                    "since": self.backend.clock.now(),
                }
            touched.add(iface.source)
        for network_name in sorted(touched):
            self._journal_network(network_name)

    def _release_dhcp_leases(self, config: DomainConfig) -> None:
        touched = set()
        for iface in config.interfaces:
            if not iface.mac:
                continue
            with self._lock:
                leases = self._dhcp_leases.get(iface.source)
                if leases is not None and leases.pop(iface.mac, None) is not None:
                    touched.add(iface.source)
        for network_name in sorted(touched):
            self._journal_network(network_name)

    # ==================================================================
    # storage
    # ==================================================================

    def storage_pool_define_xml(self, xml: str) -> Dict[str, Any]:
        self._count_call()
        config = StoragePoolConfig.from_xml(xml)
        if config.uuid is None:
            config.uuid = uuidutil.generate_uuid(self.backend.rng)
        with self._lock:
            if config.name in self._pools:
                raise StoragePoolExistsError(f"pool {config.name!r} already defined")
            self._pools[config.name] = config
            self._pool_volumes[config.name] = {}
        self.events.publish("storage", event="pool-defined", detail=config.name)
        self._journal_pool(config.name)
        return self._pool_record(config.name)

    def _get_pool(self, name: str) -> StoragePoolConfig:
        with self._lock:
            config = self._pools.get(name)
        if config is None:
            raise NoStoragePoolError(f"no storage pool with matching name {name!r}")
        return config

    def _pool_record(self, name: str) -> Dict[str, Any]:
        config = self._get_pool(name)
        return {
            "name": name,
            "uuid": config.uuid,
            "active": name in self._active_pools,
        }

    def storage_pool_undefine(self, name: str) -> None:
        self._count_call()
        self._get_pool(name)
        if name in self._active_pools:
            raise InvalidOperationError(f"pool {name!r} is active")
        with self._lock:
            del self._pools[name]
            del self._pool_volumes[name]
        self.events.publish("storage", event="pool-undefined", detail=name)
        self._journal_pool(name)

    def storage_pool_create(self, name: str) -> None:
        self._count_call()
        self._get_pool(name)
        if name in self._active_pools:
            raise InvalidOperationError(f"pool {name!r} is already active")
        self._active_pools.add(name)
        self.events.publish("storage", event="pool-started", detail=name)
        self._journal_pool(name)

    def storage_pool_destroy(self, name: str) -> None:
        self._count_call()
        self._get_pool(name)
        if name not in self._active_pools:
            raise InvalidOperationError(f"pool {name!r} is not active")
        self._active_pools.discard(name)
        self.events.publish("storage", event="pool-stopped", detail=name)
        self._journal_pool(name)

    def storage_pool_list(self) -> List[Dict[str, Any]]:
        self._count_call()
        with self._lock:
            names = sorted(self._pools)
        return [self._pool_record(name) for name in names]

    def storage_pool_lookup_by_name(self, name: str) -> Dict[str, Any]:
        self._count_call()
        return self._pool_record(name)

    def storage_pool_get_info(self, name: str) -> Dict[str, Any]:
        self._count_call()
        config = self._get_pool(name)
        with self._lock:
            volumes = dict(self._pool_volumes[name])
        allocation = 0
        for volume in volumes.values():
            path = f"{config.target_path}/{volume.name}"
            if self.backend.images.exists(path):
                allocation += self.backend.images.lookup(path).allocation_bytes
        return {
            "capacity_bytes": config.capacity_bytes,
            "allocation_bytes": allocation,
            "available_bytes": config.capacity_bytes - allocation,
            "active": name in self._active_pools,
        }

    def storage_pool_get_xml_desc(self, name: str) -> str:
        self._count_call()
        return self._get_pool(name).to_xml()

    def storage_vol_create_xml(self, pool: str, xml: str) -> Dict[str, Any]:
        self._count_call()
        pool_config = self._get_pool(pool)
        if pool not in self._active_pools:
            raise InvalidOperationError(f"pool {pool!r} is not active")
        volume = VolumeConfig.from_xml(xml)
        with self._lock:
            if volume.name in self._pool_volumes[pool]:
                raise StorageVolumeExistsError(
                    f"volume {volume.name!r} already exists in pool {pool!r}"
                )
        info = self.storage_pool_get_info(pool)
        if volume.capacity_bytes > info["available_bytes"] and volume.volume_format == "raw":
            raise InvalidOperationError(
                f"pool {pool!r} lacks space for volume {volume.name!r}"
            )
        path = f"{pool_config.target_path}/{volume.name}"
        self.backend.images.create(
            path,
            volume.capacity_bytes,
            volume.volume_format,
            backing_path=volume.backing_store,
        )
        with self._lock:
            self._pool_volumes[pool][volume.name] = volume
        self.events.publish(
            "storage", event="vol-created", detail=f"{pool}/{volume.name}"
        )
        self._journal_pool(pool)
        return {"name": volume.name, "path": path}

    def storage_vol_delete(self, pool: str, volume: str) -> None:
        self._count_call()
        pool_config = self._get_pool(pool)
        with self._lock:
            if volume not in self._pool_volumes[pool]:
                raise NoStorageVolumeError(
                    f"no volume {volume!r} in pool {pool!r}"
                )
        path = f"{pool_config.target_path}/{volume}"
        if self.backend.images.exists(path):
            self.backend.images.delete(path)
        with self._lock:
            del self._pool_volumes[pool][volume]
        self.events.publish("storage", event="vol-deleted", detail=f"{pool}/{volume}")
        self._journal_pool(pool)

    def storage_vol_list(self, pool: str) -> List[str]:
        self._count_call()
        self._get_pool(pool)
        with self._lock:
            return sorted(self._pool_volumes[pool])

    def storage_vol_get_info(self, pool: str, volume: str) -> Dict[str, Any]:
        self._count_call()
        pool_config = self._get_pool(pool)
        with self._lock:
            config = self._pool_volumes[pool].get(volume)
        if config is None:
            raise NoStorageVolumeError(f"no volume {volume!r} in pool {pool!r}")
        path = f"{pool_config.target_path}/{volume}"
        allocation = config.allocation_bytes
        if self.backend.images.exists(path):
            allocation = self.backend.images.lookup(path).allocation_bytes
        return {
            "name": volume,
            "capacity_bytes": config.capacity_bytes,
            "allocation_bytes": allocation,
            "format": config.volume_format,
            "path": path,
        }

    def storage_vol_upload(
        self,
        pool: str,
        volume: str,
        data: "bytes | bytearray | memoryview",
        offset: int = 0,
    ) -> Dict[str, Any]:
        """Commit uploaded bytes into a volume (``virStorageVolUpload``).

        This is the *commit* half of a streamed upload: the daemon
        stages chunks while the stream runs and applies them in this
        single call at finish, so a crash mid-stream leaves the volume
        untouched and a crash mid-commit tears the journal record —
        either way recovery never sees a half-written volume.
        """
        self._count_call()
        pool_config = self._get_pool(pool)
        with self._lock:
            if volume not in self._pool_volumes[pool]:
                raise NoStorageVolumeError(f"no volume {volume!r} in pool {pool!r}")
        path = f"{pool_config.target_path}/{volume}"
        if not self.backend.images.exists(path):
            raise NoStorageVolumeError(f"volume image {path!r} not found")
        written = self.backend.images.write_bytes(path, offset, data)
        self.events.publish(
            "storage",
            event="vol-uploaded",
            detail=f"{pool}/{volume}",
            bytes=written,
        )
        self._journal_pool(pool)
        return self.storage_vol_get_info(pool, volume)

    def storage_vol_download(
        self, pool: str, volume: str, offset: int = 0, length: Optional[int] = None
    ) -> bytes:
        """Read volume content back (``virStorageVolDownload``).

        Read-only: ``length`` defaults to the allocated extent past
        ``offset`` (not capacity — a thin volume downloads only what
        was ever written, like sparse-file aware tooling).
        """
        self._count_call()
        info = self.storage_vol_get_info(pool, volume)
        if length is None:
            length = max(0, info["allocation_bytes"] - offset)
        return self.backend.images.read_bytes(info["path"], offset, length)


def from_run_state_str(state: str) -> DomainState:
    """Translate a backend info-dict state string to the public enum."""
    return {
        "running": DomainState.RUNNING,
        "paused": DomainState.PAUSED,
        "shutoff": DomainState.SHUTOFF,
        "crashed": DomainState.CRASHED,
    }[state]


def _next_free_lease(dhcp, used: set) -> "str | None":
    """First address in the DHCP range not in ``used``."""
    import ipaddress

    start = int(ipaddress.ip_address(dhcp.start))
    end = int(ipaddress.ip_address(dhcp.end))
    for value in range(start, end + 1):
        candidate = str(ipaddress.ip_address(value))
        if candidate not in used:
            return candidate
    return None
