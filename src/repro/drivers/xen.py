"""The Xen driver: uniform API → Domain0 hypercalls.

Every operation resolves the domain name to its numeric domid through
the xenstore, then issues the corresponding ``domctl`` hypercall —
the translation layer libvirt's legacy xen driver implements.
"""

from __future__ import annotations

from typing import Optional

from repro.drivers.stateful import StatefulDriver
from repro.hypervisors.host import SimHost
from repro.hypervisors.xen_backend import XenBackend
from repro.xmlconfig.domain import DomainConfig


class XenDriver(StatefulDriver):
    """Stateful driver over the simulated Xen backend."""

    name = "xen"
    accepted_types = ("xen",)

    def __init__(self, backend: "Optional[XenBackend]" = None) -> None:
        super().__init__(backend or XenBackend(host=SimHost(hostname="xenhost")))

    # -- backend adapter: name → domid → hypercall --------------------------

    def _backend_start(self, config: DomainConfig, paused: bool = False) -> None:
        self.backend.hypercall("domctl.createdomain", config=config, paused=paused)

    def _backend_shutdown(self, name: str) -> None:
        domid = self.backend.domid_of(name)
        self.backend.hypercall("domctl.shutdown", domid=domid, reason="poweroff")

    def _backend_destroy(self, name: str) -> None:
        domid = self.backend.domid_of(name)
        self.backend.hypercall("domctl.destroydomain", domid=domid)

    def _backend_suspend(self, name: str) -> None:
        domid = self.backend.domid_of(name)
        self.backend.hypercall("domctl.pausedomain", domid=domid)

    def _backend_resume(self, name: str) -> None:
        domid = self.backend.domid_of(name)
        self.backend.hypercall("domctl.unpausedomain", domid=domid)

    def _backend_reboot(self, name: str) -> None:
        domid = self.backend.domid_of(name)
        self.backend.hypercall("domctl.shutdown", domid=domid, reason="reboot")

    def _backend_set_memory(self, name: str, memory_kib: int) -> None:
        domid = self.backend.domid_of(name)
        self.backend.hypercall("domctl.max_mem", domid=domid, memory_kib=memory_kib)

    def _backend_set_vcpus(self, name: str, vcpus: int) -> None:
        domid = self.backend.domid_of(name)
        self.backend.hypercall("domctl.max_vcpus", domid=domid, vcpus=vcpus)

    def _backend_save(self, name: str, path: str) -> None:
        domid = self.backend.domid_of(name)
        self.backend.hypercall("domctl.save", domid=domid, path=path)

    def _backend_restore(self, config: DomainConfig, path: str) -> None:
        self.backend.hypercall("domctl.restore", config=config, path=path)
