"""Hypervisor drivers and their registry wiring.

Importing this package registers every driver with the core registry,
so ``repro.open_connection`` can resolve any supported URI:

* ``test:///default`` — in-memory mock node (client-side)
* ``qemu:///system`` — local simulated QEMU/KVM node
* ``xen:///`` — local simulated Xen node
* ``lxc:///`` — local simulated container node
* ``esx://host/`` — a registered simulated ESX host (client-side)
* any ``driver+transport://host/...`` — the remote driver via a daemon
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.driver import register_driver, register_remote_driver
from repro.core.uri import ConnectionURI
from repro.drivers import nodes
from repro.drivers.esx import EsxDriver
from repro.drivers.lxc import LxcDriver
from repro.drivers.qemu import QemuDriver
from repro.drivers.remote import RemoteDriver
from repro.drivers.stateful import StatefulDriver
from repro.drivers.test import TestDriver
from repro.drivers.xen import XenDriver

__all__ = [
    "StatefulDriver",
    "TestDriver",
    "QemuDriver",
    "XenDriver",
    "LxcDriver",
    "EsxDriver",
    "RemoteDriver",
    "nodes",
]


def _local_factory(kind: str):
    def factory(uri: ConnectionURI, credentials: "Optional[Dict[str, Any]]"):
        return nodes.local_driver(kind, uri.hostname)

    return factory


def _esx_factory(uri: ConnectionURI, credentials: "Optional[Dict[str, Any]]"):
    creds = dict(credentials or {})
    backend = nodes.esx_host(uri.hostname or "localhost")
    return EsxDriver(
        backend,
        username=uri.username or creds.get("username", "root"),
        password=creds.get("password", "vmware"),
    )


def _remote_factory(uri: ConnectionURI, credentials: "Optional[Dict[str, Any]]"):
    return RemoteDriver(uri, credentials)


register_driver("test", _local_factory("test"))
register_driver("qemu", _local_factory("qemu"))
register_driver("xen", _local_factory("xen"))
register_driver("lxc", _local_factory("lxc"))
register_driver("esx", _esx_factory, handles_remote=True)
register_remote_driver(_remote_factory)
