"""The QEMU/KVM driver: uniform API → QMP monitor commands.

Exactly like libvirt's qemu driver, every lifecycle operation is
implemented by talking to the per-guest monitor — no hypervisor-side
agent, no modification of the emulator: the *non-intrusive* premise.
QMP-level failures are translated to the uniform error model.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

from repro.drivers.stateful import StatefulDriver
from repro.errors import OperationFailedError
from repro.hypervisors.host import SimHost
from repro.hypervisors.qemu_backend import QemuBackend, QmpError
from repro.xmlconfig.domain import DomainConfig


def _translate_qmp(func: Callable) -> Callable:
    """Map :class:`QmpError` onto the uniform error model."""

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        try:
            return func(*args, **kwargs)
        except QmpError as exc:
            raise OperationFailedError(f"QMP: {exc.desc}") from exc

    return wrapper


class QemuDriver(StatefulDriver):
    """Stateful driver over the simulated QEMU/KVM backend."""

    name = "qemu"
    accepted_types = ("qemu", "kvm")

    def __init__(self, backend: "Optional[QemuBackend]" = None, kvm: bool = True) -> None:
        super().__init__(
            backend or QemuBackend(host=SimHost(hostname="qemuhost"), kvm=kvm)
        )

    # -- backend adapter: everything goes through the monitor -------------

    def _backend_start(self, config: DomainConfig, paused: bool = False) -> None:
        self.backend.launch(config, paused=paused)

    @_translate_qmp
    def _backend_shutdown(self, name: str) -> None:
        self.backend.monitor(name).execute("system_powerdown")

    def _backend_destroy(self, name: str) -> None:
        # SIGKILL path: works even when the monitor is wedged/crashed
        self.backend.kill(name)

    @_translate_qmp
    def _backend_suspend(self, name: str) -> None:
        self.backend.monitor(name).execute("stop")

    @_translate_qmp
    def _backend_resume(self, name: str) -> None:
        self.backend.monitor(name).execute("cont")

    @_translate_qmp
    def _backend_reboot(self, name: str) -> None:
        self.backend.monitor(name).execute("system_reset")

    @_translate_qmp
    def _backend_set_memory(self, name: str, memory_kib: int) -> None:
        self.backend.monitor(name).execute("balloon", value=memory_kib * 1024)

    @_translate_qmp
    def _backend_set_vcpus(self, name: str, vcpus: int) -> None:
        self.backend.monitor(name).execute("cpu_set", count=vcpus)

    def _backend_save(self, name: str, path: str) -> None:
        self.backend.save_to_file(name, path)

    def _backend_restore(self, config: DomainConfig, path: str) -> None:
        self.backend.restore_from_file(config, path)
