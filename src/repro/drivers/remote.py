"""The remote driver: the uniform API tunnelled over the RPC protocol.

When no client-side driver recognizes a URI — or the URI names an
explicit transport — the connection is carried to a libvirtd daemon:
every Driver method becomes one RPC call, and lifecycle events stream
back as server-pushed frames.  The daemon re-enters the very same
driver interface on its side with a local stateful driver, which is
the architecture trick that makes remote and local management
indistinguishable to applications.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.driver import Driver
from repro.core.events import EventBroker, EventCallback
from repro.core.states import DomainEvent
from repro.core.uri import ConnectionURI
from repro.daemon.registry import lookup_daemon
from repro.rpc.client import RPCClient
from repro.rpc.protocol import EVENT_DOMAIN_LIFECYCLE


class RemoteDriver(Driver):
    """Client-side stub forwarding every call to a daemon."""

    name = "remote"
    stateless = False

    def __init__(self, uri: ConnectionURI, credentials: "Optional[Dict[str, Any]]" = None) -> None:
        hostname = uri.hostname or "localhost"
        transport = uri.transport or "unix"
        daemon = lookup_daemon(hostname)
        listener = daemon.listener(transport)
        channel = listener.connect(credentials)
        self.client = RPCClient(channel)
        self.remote_uri = ConnectionURI(
            driver=uri.driver, path=uri.path, params=uri.params
        ).format()
        self.client.call("connect.open", {"uri": self.remote_uri})
        self.events = EventBroker()
        self._remote_events_armed = False
        self._features: "Optional[List[str]]" = None

    # -- connection -----------------------------------------------------------

    def close(self) -> None:
        if not self.client.closed:
            try:
                self.client.call("connect.close")
            finally:
                self.client.close()

    def get_hostname(self) -> str:
        return self.client.call("connect.get_hostname")

    def get_capabilities(self) -> str:
        return self.client.call("connect.get_capabilities")

    def get_node_info(self) -> Dict[str, int]:
        return self.client.call("connect.get_node_info")

    def get_version(self) -> Tuple[int, int, int]:
        return tuple(self.client.call("connect.get_version"))  # type: ignore[return-value]

    def features(self) -> List[str]:
        if self._features is None:
            self._features = list(self.client.call("connect.supports_feature", {"feature": None}))
        return self._features

    def ping(self) -> str:
        """Round-trip health probe (used by the transport benchmarks)."""
        return self.client.call("connect.ping")

    # -- enumeration --------------------------------------------------------------

    def list_domains(self) -> List[str]:
        return self.client.call("connect.list_domains")

    def list_defined_domains(self) -> List[str]:
        return self.client.call("connect.list_defined_domains")

    def num_of_domains(self) -> int:
        return self.client.call("connect.num_of_domains")

    # -- domain lookup/lifecycle -----------------------------------------------------

    def domain_lookup_by_name(self, name: str) -> Dict[str, Any]:
        return self.client.call("domain.lookup_by_name", {"name": name})

    def domain_lookup_by_uuid(self, uuid: str) -> Dict[str, Any]:
        return self.client.call("domain.lookup_by_uuid", {"uuid": uuid})

    def domain_lookup_by_id(self, domain_id: int) -> Dict[str, Any]:
        return self.client.call("domain.lookup_by_id", {"id": domain_id})

    def domain_define_xml(self, xml: str) -> Dict[str, Any]:
        return self.client.call("domain.define_xml", {"xml": xml})

    def domain_undefine(self, name: str) -> None:
        self.client.call("domain.undefine", {"name": name})

    def domain_create(self, name: str) -> None:
        self.client.call("domain.create", {"name": name})

    def domain_create_xml(self, xml: str) -> Dict[str, Any]:
        return self.client.call("domain.create_xml", {"xml": xml})

    def domain_shutdown(self, name: str) -> None:
        self.client.call("domain.shutdown", {"name": name})

    def domain_destroy(self, name: str) -> None:
        self.client.call("domain.destroy", {"name": name})

    def domain_suspend(self, name: str) -> None:
        self.client.call("domain.suspend", {"name": name})

    def domain_resume(self, name: str) -> None:
        self.client.call("domain.resume", {"name": name})

    def domain_reboot(self, name: str) -> None:
        self.client.call("domain.reboot", {"name": name})

    # -- introspection / tuning ---------------------------------------------------------

    def domain_get_info(self, name: str) -> Dict[str, Any]:
        return self.client.call("domain.get_info", {"name": name})

    def domain_get_state(self, name: str) -> int:
        return self.client.call("domain.get_state", {"name": name})

    def domain_get_xml_desc(self, name: str) -> str:
        return self.client.call("domain.get_xml_desc", {"name": name})

    def domain_get_stats(self, name: str) -> Dict[str, Any]:
        return self.client.call("domain.get_stats", {"name": name})

    def domain_get_scheduler_params(self, name: str) -> List[Any]:
        return self.client.call("domain.get_scheduler_params", {"name": name})

    def domain_set_scheduler_params(self, name: str, params: List[Any]) -> None:
        self.client.call(
            "domain.set_scheduler_params", {"name": name, "params": params}
        )

    def domain_get_job_info(self, name: str) -> Dict[str, Any]:
        return self.client.call("domain.get_job_info", {"name": name})

    def domain_set_memory(self, name: str, memory_kib: int) -> None:
        self.client.call("domain.set_memory", {"name": name, "memory_kib": memory_kib})

    def domain_set_vcpus(self, name: str, vcpus: int) -> None:
        self.client.call("domain.set_vcpus", {"name": name, "vcpus": vcpus})

    def domain_save(self, name: str, path: str) -> None:
        self.client.call("domain.save", {"name": name, "path": path})

    def domain_restore(self, path: str) -> Dict[str, Any]:
        return self.client.call("domain.restore", {"path": path})

    def domain_get_autostart(self, name: str) -> bool:
        return self.client.call("domain.get_autostart", {"name": name})

    def domain_set_autostart(self, name: str, autostart: bool) -> None:
        self.client.call(
            "domain.set_autostart", {"name": name, "autostart": bool(autostart)}
        )

    def domain_attach_device(self, name: str, device_xml: str) -> None:
        self.client.call("domain.attach_device", {"name": name, "xml": device_xml})

    def domain_detach_device(self, name: str, device_xml: str) -> None:
        self.client.call("domain.detach_device", {"name": name, "xml": device_xml})

    # -- snapshots ------------------------------------------------------------------------

    def snapshot_create(self, name: str, snapshot_name: str) -> Dict[str, Any]:
        return self.client.call(
            "domain.snapshot_create", {"name": name, "snapshot": snapshot_name}
        )

    def snapshot_list(self, name: str) -> List[str]:
        return self.client.call("domain.snapshot_list", {"name": name})

    def snapshot_revert(self, name: str, snapshot_name: str) -> None:
        self.client.call(
            "domain.snapshot_revert", {"name": name, "snapshot": snapshot_name}
        )

    def snapshot_delete(self, name: str, snapshot_name: str) -> None:
        self.client.call(
            "domain.snapshot_delete", {"name": name, "snapshot": snapshot_name}
        )

    # -- migration -------------------------------------------------------------------------

    def migrate_begin(self, name: str) -> Dict[str, Any]:
        return self.client.call("domain.migrate_begin", {"name": name})

    def migrate_prepare(self, description: Dict[str, Any]) -> Dict[str, Any]:
        return self.client.call("domain.migrate_prepare", {"description": description})

    def migrate_perform(self, name: str, cookie: Dict[str, Any], params: Dict[str, Any]) -> Dict[str, Any]:
        return self.client.call(
            "domain.migrate_perform",
            {"name": name, "cookie": cookie, "params": params},
        )

    def migrate_finish(self, cookie: Dict[str, Any], stats: Dict[str, Any]) -> Dict[str, Any]:
        return self.client.call(
            "domain.migrate_finish", {"cookie": cookie, "stats": stats}
        )

    def migrate_confirm(self, name: str, cancelled: bool) -> None:
        self.client.call(
            "domain.migrate_confirm", {"name": name, "cancelled": cancelled}
        )

    def migrate_p2p(self, name: str, dest_uri: str, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.client.call(
            "domain.migrate_p2p",
            {"name": name, "dest_uri": dest_uri, "params": params},
        )

    # -- events -------------------------------------------------------------------------------

    def domain_event_register(self, callback: EventCallback) -> int:
        if not self._remote_events_armed:
            self.client.on_event(EVENT_DOMAIN_LIFECYCLE, self._on_remote_event)
            self.client.call("connect.domain_event_register")
            self._remote_events_armed = True
        return self.events.register(callback)

    def domain_event_deregister(self, callback_id: int) -> None:
        self.events.deregister(callback_id)
        if self.events.callback_count == 0 and self._remote_events_armed:
            self.client.call("connect.domain_event_deregister")
            self.client.remove_event_handler(EVENT_DOMAIN_LIFECYCLE)
            self._remote_events_armed = False

    def _on_remote_event(self, body: Any) -> None:
        self.events.emit(
            body["domain"], DomainEvent(body["event"]), body.get("detail", "")
        )

    # -- networks --------------------------------------------------------------------------------

    def network_define_xml(self, xml: str) -> Dict[str, Any]:
        return self.client.call("network.define_xml", {"xml": xml})

    def network_undefine(self, name: str) -> None:
        self.client.call("network.undefine", {"name": name})

    def network_create(self, name: str) -> None:
        self.client.call("network.create", {"name": name})

    def network_destroy(self, name: str) -> None:
        self.client.call("network.destroy", {"name": name})

    def network_list(self) -> List[Dict[str, Any]]:
        return self.client.call("network.list")

    def network_lookup_by_name(self, name: str) -> Dict[str, Any]:
        return self.client.call("network.lookup_by_name", {"name": name})

    def network_get_xml_desc(self, name: str) -> str:
        return self.client.call("network.get_xml_desc", {"name": name})

    def network_dhcp_leases(self, name: str) -> List[Dict[str, Any]]:
        return self.client.call("network.dhcp_leases", {"name": name})

    # -- storage ----------------------------------------------------------------------------------

    def storage_pool_define_xml(self, xml: str) -> Dict[str, Any]:
        return self.client.call("storage.pool_define_xml", {"xml": xml})

    def storage_pool_undefine(self, name: str) -> None:
        self.client.call("storage.pool_undefine", {"name": name})

    def storage_pool_create(self, name: str) -> None:
        self.client.call("storage.pool_create", {"name": name})

    def storage_pool_destroy(self, name: str) -> None:
        self.client.call("storage.pool_destroy", {"name": name})

    def storage_pool_list(self) -> List[Dict[str, Any]]:
        return self.client.call("storage.pool_list")

    def storage_pool_lookup_by_name(self, name: str) -> Dict[str, Any]:
        return self.client.call("storage.pool_lookup_by_name", {"name": name})

    def storage_pool_get_info(self, name: str) -> Dict[str, Any]:
        return self.client.call("storage.pool_get_info", {"name": name})

    def storage_pool_get_xml_desc(self, name: str) -> str:
        return self.client.call("storage.pool_get_xml_desc", {"name": name})

    def storage_vol_create_xml(self, pool: str, xml: str) -> Dict[str, Any]:
        return self.client.call("storage.vol_create_xml", {"pool": pool, "xml": xml})

    def storage_vol_delete(self, pool: str, volume: str) -> None:
        self.client.call("storage.vol_delete", {"pool": pool, "volume": volume})

    def storage_vol_list(self, pool: str) -> List[str]:
        return self.client.call("storage.vol_list", {"pool": pool})

    def storage_vol_get_info(self, pool: str, volume: str) -> Dict[str, Any]:
        return self.client.call("storage.vol_get_info", {"pool": pool, "volume": volume})
