"""The remote driver: the uniform API tunnelled over the RPC protocol.

When no client-side driver recognizes a URI — or the URI names an
explicit transport — the connection is carried to a libvirtd daemon:
every Driver method becomes one RPC call, and lifecycle events stream
back as server-pushed frames.  The daemon re-enters the very same
driver interface on its side with a local stateful driver, which is
the architecture trick that makes remote and local management
indistinguishable to applications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.cache import InvalidationCache
from repro.core.driver import Driver
from repro.core.events import BusCallback, ConnectionResetEvent, EventBroker, EventCallback
from repro.core.states import DomainEvent
from repro.core.uri import ConnectionURI
from repro.daemon.registry import lookup_daemon
from repro.errors import (
    CircuitOpenError,
    ConnectionClosedError,
    ConnectionError_,
    InvalidArgumentError,
    OperationTimeoutError,
    VirtError,
)
from repro.rpc.client import PendingReply, RPCClient
from repro.rpc.protocol import (
    EVENT_BUS_RECORD,
    EVENT_DAEMON_SHUTDOWN,
    EVENT_DOMAIN_LIFECYCLE,
)
from repro.rpc.retry import CircuitBreaker, RetryPolicy, is_idempotent
from repro.stream import StreamConsole

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracing import Tracer

#: URI parameters consumed client-side, never forwarded to the daemon
RESILIENCE_URI_PARAMS = frozenset(
    {
        "keepalive_interval",
        "keepalive_count",
        "call_timeout",
        "auto_reconnect",
        "max_retries",
    }
)

#: all client-side URI parameters (resilience + the read cache toggle)
CLIENT_URI_PARAMS = RESILIENCE_URI_PARAMS | {"cache"}


class ResilienceConfig:
    """Client-side survival policy for one remote connection.

    ``keepalive_interval``/``keepalive_count`` mirror the real remote
    driver's URI parameters of the same names; ``call_timeout`` bounds
    every RPC; ``retry`` (a :class:`RetryPolicy`) re-issues idempotent
    calls after timeouts; ``auto_reconnect`` re-dials a declared-dead
    link with exponential backoff, guarded by a circuit breaker.
    """

    def __init__(
        self,
        call_timeout: "Optional[float]" = None,
        keepalive_interval: "Optional[float]" = None,
        keepalive_count: int = 5,
        retry: "Optional[RetryPolicy]" = None,
        auto_reconnect: bool = True,
        reconnect_attempts: int = 5,
        reconnect_base_delay: float = 0.2,
        reconnect_max_delay: float = 10.0,
        breaker_threshold: int = 3,
        breaker_reset: float = 60.0,
    ) -> None:
        if call_timeout is not None and call_timeout <= 0:
            raise InvalidArgumentError("call_timeout must be positive")
        if keepalive_interval is not None and keepalive_interval <= 0:
            raise InvalidArgumentError("keepalive_interval must be positive")
        if reconnect_attempts < 1:
            raise InvalidArgumentError("reconnect_attempts must be at least 1")
        if reconnect_base_delay <= 0 or reconnect_max_delay < reconnect_base_delay:
            raise InvalidArgumentError(
                "need 0 < reconnect_base_delay <= reconnect_max_delay"
            )
        self.call_timeout = call_timeout
        self.keepalive_interval = keepalive_interval
        self.keepalive_count = keepalive_count
        self.retry = retry
        self.auto_reconnect = auto_reconnect
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_base_delay = reconnect_base_delay
        self.reconnect_max_delay = reconnect_max_delay
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset

    @classmethod
    def from_uri_params(cls, params: Dict[str, str]) -> "Optional[ResilienceConfig]":
        """Build a config from ``?keepalive_interval=5&...`` URI params;
        None when the URI carries no resilience parameter at all."""
        if not RESILIENCE_URI_PARAMS & set(params):
            return None
        try:
            retries = int(params.get("max_retries", "0"))
            return cls(
                call_timeout=(
                    float(params["call_timeout"]) if "call_timeout" in params else None
                ),
                keepalive_interval=(
                    float(params["keepalive_interval"])
                    if "keepalive_interval" in params
                    else None
                ),
                keepalive_count=int(params.get("keepalive_count", "5")),
                retry=RetryPolicy(max_attempts=retries) if retries > 1 else None,
                auto_reconnect=params.get("auto_reconnect", "1") not in ("0", "no", "off"),
            )
        except ValueError as exc:
            raise InvalidArgumentError(f"bad resilience URI parameter: {exc}") from exc

    def reconnect_delay(self, attempt: int) -> float:
        """Exponential backoff for the ``attempt``-th re-dial (1-based)."""
        return min(
            self.reconnect_max_delay,
            self.reconnect_base_delay * (2 ** (attempt - 1)),
        )


class RemoteDriver(Driver):
    """Client-side stub forwarding every call to a daemon."""

    name = "remote"
    stateless = False

    def __init__(
        self,
        uri: ConnectionURI,
        credentials: "Optional[Dict[str, Any]]" = None,
        resilience: "Optional[ResilienceConfig]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
        tracer: "Optional[Tracer]" = None,
    ) -> None:
        self._hostname = uri.hostname or "localhost"
        self._transport = uri.transport or "unix"
        self._credentials = credentials
        if resilience is None:
            resilience = ResilienceConfig.from_uri_params(uri.params)
        self.resilience = resilience
        forwarded = {
            k: v for k, v in uri.params.items() if k not in CLIENT_URI_PARAMS
        }
        self.remote_uri = ConnectionURI(
            driver=uri.driver, path=uri.path, params=forwarded
        ).format()
        self.events = EventBroker()
        self._remote_events_armed = False
        #: invalidation-driven read cache (?cache=1); it only serves
        #: entries while the bus push keeps it coherent
        cache_requested = uri.params.get("cache", "0") not in ("0", "no", "off")
        self.cache = InvalidationCache(enabled=False)
        self._cache_requested = cache_requested
        self._bus_armed = False
        self._bus_handlers: "Dict[int, Tuple[Optional[frozenset], BusCallback]]" = {}
        self._bus_handler_ids = 0
        self._last_bus_seq = 0
        #: local bus handlers that raised (mirrors the daemon-side metric)
        self.bus_callback_errors = 0
        self._features: "Optional[List[str]]" = None
        #: every disconnect this driver handled, oldest first
        self.connection_events: List[ConnectionResetEvent] = []
        #: graceful-shutdown notices pushed by the daemon, oldest first
        self.shutdown_notices: List[Dict[str, Any]] = []
        self._conn_callbacks: "List[Callable[[ConnectionResetEvent], None]]" = []
        self._breaker: "Optional[CircuitBreaker]" = None
        self._clock = None
        self.reconnects = 0
        self.retries = 0
        self.metrics = metrics
        #: optional Tracer shared with (or separate from) the daemon's;
        #: every RPC issued opens an ``rpc.call`` span whose context
        #: rides the CALL frame so the daemon can join the same trace
        self.tracer = tracer
        if metrics is not None:
            self._m_retries = metrics.counter(
                "remote_retries_total", "Idempotent calls re-issued after timeouts"
            )
            self._m_reconnects = metrics.counter(
                "remote_reconnects_total", "Successful re-dials of a dead link"
            )
            self._m_circuit_open = metrics.counter(
                "remote_circuit_open_total", "Calls refused by an open circuit breaker"
            )
        self.client = self._dial()
        if cache_requested:
            self._arm_bus(self.client)
            self.cache.enabled = True

    # -- resilient call path ---------------------------------------------------

    def _dial(self) -> RPCClient:
        """(Re-)establish the RPC session: connect, open, arm keepalive."""
        daemon = lookup_daemon(self._hostname)
        listener = daemon.listener(self._transport)
        channel = listener.connect(self._credentials)
        self._clock = channel.clock
        cfg = self.resilience
        if self.metrics is not None:
            # late-bind: the client-side registry follows the daemon clock
            self.metrics.set_clock(channel.clock.now)
        client = RPCClient(
            channel,
            default_timeout=cfg.call_timeout if cfg is not None else None,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        if cfg is not None and cfg.keepalive_interval is not None:
            client.enable_keepalive(cfg.keepalive_interval, cfg.keepalive_count)
        # a draining daemon announces itself before closing the link;
        # recording the notice lets callers tell a graceful shutdown
        # apart from an abrupt crash
        client.on_event(EVENT_DAEMON_SHUTDOWN, self._on_daemon_shutdown)
        attempts = 0
        backoff: "Optional[float]" = None
        while True:
            attempts += 1
            try:
                client.call("connect.open", {"uri": self.remote_uri})
                return client
            except OperationTimeoutError:
                # connect.open is idempotent; a lossy link may eat the
                # very first frame, so the session open retries too
                if (
                    cfg is None
                    or cfg.retry is None
                    or attempts >= cfg.retry.max_attempts
                ):
                    raise
                backoff = cfg.retry.next_delay(backoff)
                self._clock.sleep(backoff)
                self.retries += 1
                if self.metrics is not None:
                    self._m_retries.inc()

    def _ensure_breaker(self) -> CircuitBreaker:
        if self._breaker is None:
            cfg = self.resilience
            self._breaker = CircuitBreaker(
                self._clock.now,
                threshold=cfg.breaker_threshold,
                reset_timeout=cfg.breaker_reset,
            )
        return self._breaker

    def _call(self, name: str, body: Any = None) -> Any:
        """One RPC through the resilience stack.

        Without a :class:`ResilienceConfig` this is a bare
        ``client.call`` — the seed behaviour.  With one, per-call
        deadlines apply (inside :meth:`RPCClient.call`), a dead
        connection triggers backed-off auto-reconnect with event
        re-subscription, and timeouts on idempotent procedures are
        retried under the policy.
        """
        cfg = self.resilience
        if cfg is None:
            return self.client.call(name, body)
        max_attempts = cfg.retry.max_attempts if cfg.retry is not None else 2
        attempts = 0
        backoff: "Optional[float]" = None
        while True:
            attempts += 1
            if self._breaker is not None and not self._breaker.allow():
                if self.metrics is not None:
                    self._m_circuit_open.inc()
                raise CircuitOpenError(
                    f"circuit open for {self._hostname!r}: reconnect keeps "
                    f"failing; retry after {cfg.breaker_reset:g}s"
                )
            try:
                return self.client.call(name, body)
            except ConnectionClosedError as exc:
                if not cfg.auto_reconnect:
                    raise
                self._reconnect(str(exc) or type(exc).__name__)
                # the link is healthy again; re-issuing is only safe for
                # idempotent procedures — anything else may have executed
                if is_idempotent(name) and attempts < max_attempts:
                    continue
                raise
            except OperationTimeoutError:
                if (
                    cfg.retry is not None
                    and is_idempotent(name)
                    and attempts < cfg.retry.max_attempts
                ):
                    backoff = cfg.retry.next_delay(backoff)
                    self._clock.sleep(backoff)
                    self.retries += 1
                    if self.metrics is not None:
                        self._m_retries.inc()
                    continue
                raise

    def call_async(self, name: str, body: Any = None) -> "PendingReply":
        """Pipeline one RPC: send now, collect the reply later.

        Returns a :class:`~repro.rpc.client.PendingReply` whose
        ``result()`` blocks until the daemon's out-of-order reply
        arrives.  Deliberately single-shot — the retry/reconnect stack
        only wraps synchronous :meth:`_call`, because a pipelined call
        may have executed even if its reply is lost."""
        return self.client.call_async(name, body)

    def _reconnect(self, reason: str) -> None:
        """Re-dial with exponential backoff; raises when the budget is
        exhausted or the circuit breaker refuses to keep trying."""
        cfg = self.resilience
        clock = self._clock
        breaker = self._ensure_breaker()
        t0 = clock.now()
        last_exc: "Optional[VirtError]" = None
        attempts = 0
        for attempt in range(1, cfg.reconnect_attempts + 1):
            if not breaker.allow():
                break
            attempts = attempt
            clock.sleep(cfg.reconnect_delay(attempt))
            try:
                client = self._dial()
                if self._remote_events_armed:
                    client.on_event(EVENT_DOMAIN_LIFECYCLE, self._on_remote_event)
                    client.call("connect.domain_event_register")
                if self._bus_armed:
                    # events during the outage are gone; the fresh
                    # subscription must not replay into stale dedupe state
                    self._last_bus_seq = 0
                    self._arm_bus(client)
            except VirtError as exc:
                last_exc = exc
                breaker.record_failure()
                continue
            self.client.close()  # drop the dead session's timers
            self.client = client
            # anything cached across the outage may be stale: flush
            self.cache.flush("reconnect")
            self.reconnects += 1
            if self.metrics is not None:
                self._m_reconnects.inc()
            breaker.record_success()
            self._emit_connection_event(
                ConnectionResetEvent(
                    reason, attempt, clock.now() - t0, True, clock.now()
                )
            )
            return
        self._emit_connection_event(
            ConnectionResetEvent(
                reason, attempts, clock.now() - t0, False, clock.now()
            )
        )
        raise ConnectionError_(
            f"lost connection to {self._hostname!r} ({reason}); "
            f"reconnect gave up after {attempts} attempts"
        ) from last_exc

    def _emit_connection_event(self, event: ConnectionResetEvent) -> None:
        self.connection_events.append(event)
        for callback in list(self._conn_callbacks):
            try:
                callback(event)
            except Exception:  # noqa: BLE001 - observers must not break recovery
                continue

    def on_connection_event(self, callback: "Callable[[ConnectionResetEvent], None]") -> None:
        """Observe disconnect/reconnect outcomes (monitoring hooks)."""
        self._conn_callbacks.append(callback)

    def tick(self) -> int:
        """Drive the client-side keepalive timers (poll-loop stand-in)."""
        return self.client.tick()

    # -- connection -----------------------------------------------------------

    def close(self) -> None:
        try:
            if not self.client.closed and not self.client.dead:
                self.client.call("connect.close")
        except VirtError:
            pass  # closing a dying link must not raise
        finally:
            self.client.close()

    def get_hostname(self) -> str:
        return self._call("connect.get_hostname")

    def get_capabilities(self) -> str:
        return self._call("connect.get_capabilities")

    def get_node_info(self) -> Dict[str, int]:
        return self._call("connect.get_node_info")

    def get_version(self) -> Tuple[int, int, int]:
        return tuple(self._call("connect.get_version"))  # type: ignore[return-value]

    def features(self) -> List[str]:
        if self._features is None:
            self._features = list(self._call("connect.supports_feature", {"feature": None}))
        return self._features

    def ping(self) -> str:
        """Round-trip health probe (used by the transport benchmarks)."""
        return self._call("connect.ping")

    # -- enumeration --------------------------------------------------------------

    def _cached_call(self, scope: str, key: str, name: str, body: Any, cached: bool) -> Any:
        """Serve from the invalidation cache, falling through to the wire.

        ``cached=False`` is the bypass flag: the caller needs daemon
        truth regardless of coherence state."""
        if cached:
            hit, value = self.cache.get(scope, key)
            if hit:
                return value
        value = self._call(name, body)
        if cached:
            self.cache.put(scope, key, value)
        return value

    def list_domains(self, cached: bool = True) -> List[str]:
        return self._cached_call(
            "list", "active", "connect.list_domains", None, cached
        )

    def list_defined_domains(self, cached: bool = True) -> List[str]:
        return self._cached_call(
            "list", "inactive", "connect.list_defined_domains", None, cached
        )

    def num_of_domains(self, cached: bool = True) -> int:
        return self._cached_call(
            "list", "count", "connect.num_of_domains", None, cached
        )

    # -- domain lookup/lifecycle -----------------------------------------------------

    def domain_lookup_by_name(self, name: str) -> Dict[str, Any]:
        return self._call("domain.lookup_by_name", {"name": name})

    def domain_lookup_by_uuid(self, uuid: str) -> Dict[str, Any]:
        return self._call("domain.lookup_by_uuid", {"uuid": uuid})

    def domain_lookup_by_id(self, domain_id: int) -> Dict[str, Any]:
        return self._call("domain.lookup_by_id", {"id": domain_id})

    def domain_define_xml(self, xml: str) -> Dict[str, Any]:
        return self._call("domain.define_xml", {"xml": xml})

    def domain_undefine(self, name: str) -> None:
        self._call("domain.undefine", {"name": name})

    def domain_create(self, name: str) -> None:
        self._call("domain.create", {"name": name})

    def domain_create_xml(self, xml: str) -> Dict[str, Any]:
        return self._call("domain.create_xml", {"xml": xml})

    def domain_shutdown(self, name: str) -> None:
        self._call("domain.shutdown", {"name": name})

    def domain_destroy(self, name: str) -> None:
        self._call("domain.destroy", {"name": name})

    def domain_suspend(self, name: str) -> None:
        self._call("domain.suspend", {"name": name})

    def domain_resume(self, name: str) -> None:
        self._call("domain.resume", {"name": name})

    def domain_reboot(self, name: str) -> None:
        self._call("domain.reboot", {"name": name})

    # -- introspection / tuning ---------------------------------------------------------

    def domain_get_info(self, name: str) -> Dict[str, Any]:
        return self._call("domain.get_info", {"name": name})

    def domain_get_state(self, name: str, cached: bool = True) -> int:
        return self._cached_call(
            "state", name, "domain.get_state", {"name": name}, cached
        )

    def domain_get_xml_desc(self, name: str, cached: bool = True) -> str:
        return self._cached_call(
            "xml", name, "domain.get_xml_desc", {"name": name}, cached
        )

    def domain_get_stats(self, name: str) -> Dict[str, Any]:
        return self._call("domain.get_stats", {"name": name})

    def domain_get_scheduler_params(self, name: str) -> List[Any]:
        return self._call("domain.get_scheduler_params", {"name": name})

    def domain_set_scheduler_params(self, name: str, params: List[Any]) -> None:
        self._call(
            "domain.set_scheduler_params", {"name": name, "params": params}
        )

    def domain_get_job_info(self, name: str) -> Dict[str, Any]:
        return self._call("domain.get_job_info", {"name": name})

    def domain_set_memory(self, name: str, memory_kib: int) -> None:
        self._call("domain.set_memory", {"name": name, "memory_kib": memory_kib})

    def domain_set_vcpus(self, name: str, vcpus: int) -> None:
        self._call("domain.set_vcpus", {"name": name, "vcpus": vcpus})

    def domain_save(self, name: str, path: str) -> None:
        self._call("domain.save", {"name": name, "path": path})

    def domain_restore(self, path: str) -> Dict[str, Any]:
        return self._call("domain.restore", {"path": path})

    def domain_managed_save(self, name: str) -> None:
        self._call("domain.managed_save", {"name": name})

    def domain_managed_save_remove(self, name: str) -> None:
        self._call("domain.managed_save_remove", {"name": name})

    def domain_has_managed_save(self, name: str) -> bool:
        return bool(self._call("domain.has_managed_save", {"name": name}))

    def domain_abort_job(self, name: str) -> Dict[str, Any]:
        return self._call("domain.abort_job", {"name": name})

    def domain_get_autostart(self, name: str) -> bool:
        return self._call("domain.get_autostart", {"name": name})

    def domain_set_autostart(self, name: str, autostart: bool) -> None:
        self._call(
            "domain.set_autostart", {"name": name, "autostart": bool(autostart)}
        )

    def domain_attach_device(self, name: str, device_xml: str) -> None:
        self._call("domain.attach_device", {"name": name, "xml": device_xml})

    def domain_detach_device(self, name: str, device_xml: str) -> None:
        self._call("domain.detach_device", {"name": name, "xml": device_xml})

    # -- snapshots ------------------------------------------------------------------------

    def snapshot_create(self, name: str, snapshot_name: str) -> Dict[str, Any]:
        return self._call(
            "domain.snapshot_create", {"name": name, "snapshot": snapshot_name}
        )

    def snapshot_list(self, name: str) -> List[str]:
        return self._call("domain.snapshot_list", {"name": name})

    def snapshot_revert(self, name: str, snapshot_name: str) -> None:
        self._call(
            "domain.snapshot_revert", {"name": name, "snapshot": snapshot_name}
        )

    def snapshot_delete(self, name: str, snapshot_name: str) -> None:
        self._call(
            "domain.snapshot_delete", {"name": name, "snapshot": snapshot_name}
        )

    # -- checkpoints & backup ---------------------------------------------------------------

    def checkpoint_create(self, name: str, checkpoint_name: str) -> Dict[str, Any]:
        return self._call(
            "domain.checkpoint_create", {"name": name, "checkpoint": checkpoint_name}
        )

    def checkpoint_list(self, name: str) -> List[str]:
        return self._call("domain.checkpoint_list", {"name": name})

    def checkpoint_delete(self, name: str, checkpoint_name: str) -> None:
        self._call(
            "domain.checkpoint_delete", {"name": name, "checkpoint": checkpoint_name}
        )

    def checkpoint_get_xml_desc(self, name: str, checkpoint_name: str) -> str:
        return self._call(
            "domain.checkpoint_get_xml_desc",
            {"name": name, "checkpoint": checkpoint_name},
        )

    def backup_begin(self, name: str, options: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return self._call(
            "domain.backup_begin", {"name": name, "options": dict(options or {})}
        )

    def backup_begin_pull(self, name: str, options: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        # stream-backed (never retried): the manifest arrives as the
        # opening reply, the block payload rides STREAM frames
        stream = self.client.open_stream(
            "domain.backup_begin_pull",
            {"name": name, "options": dict(options or {})},
        )
        result = dict(stream.info or {})
        result["data"] = stream.drain()
        return result

    def domain_open_console(self, name: str) -> Any:
        stream = self.client.open_stream("domain.open_console", {"name": name})
        return StreamConsole(stream)

    # -- migration -------------------------------------------------------------------------

    def migrate_begin(self, name: str) -> Dict[str, Any]:
        return self._call("domain.migrate_begin", {"name": name})

    def migrate_prepare(self, description: Dict[str, Any]) -> Dict[str, Any]:
        return self._call("domain.migrate_prepare", {"description": description})

    def migrate_perform(self, name: str, cookie: Dict[str, Any], params: Dict[str, Any]) -> Dict[str, Any]:
        return self._call(
            "domain.migrate_perform",
            {"name": name, "cookie": cookie, "params": params},
        )

    def migrate_finish(self, cookie: Dict[str, Any], stats: Dict[str, Any]) -> Dict[str, Any]:
        return self._call(
            "domain.migrate_finish", {"cookie": cookie, "stats": stats}
        )

    def migrate_confirm(self, name: str, cancelled: bool) -> None:
        self._call(
            "domain.migrate_confirm", {"name": name, "cancelled": cancelled}
        )

    def migrate_p2p(self, name: str, dest_uri: str, params: Dict[str, Any]) -> Dict[str, Any]:
        return self._call(
            "domain.migrate_p2p",
            {"name": name, "dest_uri": dest_uri, "params": params},
        )

    # -- events -------------------------------------------------------------------------------

    def domain_event_register(self, callback: EventCallback) -> int:
        if not self._remote_events_armed:
            self.client.on_event(EVENT_DOMAIN_LIFECYCLE, self._on_remote_event)
            self._call("connect.domain_event_register")
            self._remote_events_armed = True
        return self.events.register(callback)

    def domain_event_deregister(self, callback_id: int) -> None:
        self.events.deregister(callback_id)
        if self.events.callback_count == 0 and self._remote_events_armed:
            self._call("connect.domain_event_deregister")
            self.client.remove_event_handler(EVENT_DOMAIN_LIFECYCLE)
            self._remote_events_armed = False

    def _on_remote_event(self, body: Any) -> None:
        self.events.emit(
            body["domain"], DomainEvent(body["event"]), body.get("detail", "")
        )

    def _arm_bus(self, client: RPCClient) -> None:
        """Arm typed-record push on ``client`` (idempotent daemon-side)."""
        client.on_event(EVENT_BUS_RECORD, self._on_bus_record)
        client.call("connect.event_subscribe")
        self._bus_armed = True

    def _on_bus_record(self, body: Any) -> None:
        record = dict(body or {})
        seq = record.get("seq", 0)
        if isinstance(seq, int) and seq > 0:
            if seq <= self._last_bus_seq:
                return  # duplicate push (re-subscription overlap)
            self._last_bus_seq = seq
        self.cache.on_event(record)
        for kinds, handler in list(self._bus_handlers.values()):
            if kinds is not None and record.get("kind") not in kinds:
                continue
            try:
                handler(dict(record))
            except Exception:  # noqa: BLE001 - one bad consumer must not break others
                self.bus_callback_errors += 1

    def event_bus_subscribe(
        self,
        handler: BusCallback,
        kinds: "Optional[Any]" = None,
        max_queue: "Optional[int]" = None,
    ) -> int:
        """Subscribe to pushed bus records; kinds filter applies locally."""
        if not callable(handler):
            raise InvalidArgumentError("bus handler must be callable")
        if not self._bus_armed:
            self._arm_bus(self.client)
        self._bus_handler_ids += 1
        kindset = None if kinds is None else frozenset(kinds)
        self._bus_handlers[self._bus_handler_ids] = (kindset, handler)
        return self._bus_handler_ids

    def event_bus_unsubscribe(self, sub_id: int) -> None:
        if sub_id not in self._bus_handlers:
            raise InvalidArgumentError(f"no bus subscription with id {sub_id}")
        del self._bus_handlers[sub_id]
        if not self._bus_handlers and not self.cache.enabled and self._bus_armed:
            # nothing client-side needs the push stream any more
            self._call("connect.event_unsubscribe")
            self.client.remove_event_handler(EVENT_BUS_RECORD)
            self._bus_armed = False

    def _on_daemon_shutdown(self, body: Any) -> None:
        self.shutdown_notices.append(dict(body or {}))

    # -- networks --------------------------------------------------------------------------------

    def network_define_xml(self, xml: str) -> Dict[str, Any]:
        return self._call("network.define_xml", {"xml": xml})

    def network_undefine(self, name: str) -> None:
        self._call("network.undefine", {"name": name})

    def network_create(self, name: str) -> None:
        self._call("network.create", {"name": name})

    def network_destroy(self, name: str) -> None:
        self._call("network.destroy", {"name": name})

    def network_list(self) -> List[Dict[str, Any]]:
        return self._call("network.list")

    def network_lookup_by_name(self, name: str) -> Dict[str, Any]:
        return self._call("network.lookup_by_name", {"name": name})

    def network_get_xml_desc(self, name: str) -> str:
        return self._call("network.get_xml_desc", {"name": name})

    def network_dhcp_leases(self, name: str) -> List[Dict[str, Any]]:
        return self._call("network.dhcp_leases", {"name": name})

    # -- storage ----------------------------------------------------------------------------------

    def storage_pool_define_xml(self, xml: str) -> Dict[str, Any]:
        return self._call("storage.pool_define_xml", {"xml": xml})

    def storage_pool_undefine(self, name: str) -> None:
        self._call("storage.pool_undefine", {"name": name})

    def storage_pool_create(self, name: str) -> None:
        self._call("storage.pool_create", {"name": name})

    def storage_pool_destroy(self, name: str) -> None:
        self._call("storage.pool_destroy", {"name": name})

    def storage_pool_list(self) -> List[Dict[str, Any]]:
        return self._call("storage.pool_list")

    def storage_pool_lookup_by_name(self, name: str) -> Dict[str, Any]:
        return self._call("storage.pool_lookup_by_name", {"name": name})

    def storage_pool_get_info(self, name: str) -> Dict[str, Any]:
        return self._call("storage.pool_get_info", {"name": name})

    def storage_pool_get_xml_desc(self, name: str) -> str:
        return self._call("storage.pool_get_xml_desc", {"name": name})

    def storage_vol_create_xml(self, pool: str, xml: str) -> Dict[str, Any]:
        return self._call("storage.vol_create_xml", {"pool": pool, "xml": xml})

    def storage_vol_delete(self, pool: str, volume: str) -> None:
        self._call("storage.vol_delete", {"pool": pool, "volume": volume})

    def storage_vol_list(self, pool: str) -> List[str]:
        return self._call("storage.vol_list", {"pool": pool})

    def storage_vol_get_info(self, pool: str, volume: str) -> Dict[str, Any]:
        return self._call("storage.vol_get_info", {"pool": pool, "volume": volume})

    def storage_vol_upload(self, pool: str, volume: str, data: Any, offset: int = 0) -> Dict[str, Any]:
        stream = self.client.open_stream(
            "storage.vol_upload",
            {"pool": pool, "volume": volume, "offset": int(offset)},
        )
        try:
            stream.send(data)
        except VirtError:
            if stream.state == "open":
                stream.abort("upload failed client-side")
            raise
        return stream.finish()

    def storage_vol_download(self, pool: str, volume: str, offset: int = 0, length: "Optional[int]" = None) -> bytes:
        stream = self.client.open_stream(
            "storage.vol_download",
            {"pool": pool, "volume": volume, "offset": int(offset), "length": length},
        )
        return stream.drain()
