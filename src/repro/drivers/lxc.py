"""The LXC driver: uniform API → container engine verbs and cgroup writes.

Containers of the paper's era cannot be checkpointed or live-migrated,
so this driver honestly drops ``save_restore``, ``managed_save``,
``migration``, ``checkpoints`` and ``backup`` from its feature set —
the capability matrix shows the gap rather than papering over it.
Every method behind a dropped feature is listed in
``unsupported_ops`` so ``tools/lint_driver_surface.py`` can verify the
declaration matches the implementation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.drivers.stateful import StatefulDriver
from repro.hypervisors.container_backend import ContainerBackend
from repro.hypervisors.host import SimHost
from repro.xmlconfig.domain import DomainConfig


class LxcDriver(StatefulDriver):
    """Stateful driver over the simulated container engine."""

    name = "lxc"
    accepted_types = ("lxc",)
    unsupported_ops = frozenset(
        {
            "domain_save",
            "domain_restore",
            "domain_managed_save",
            "domain_managed_save_remove",
            "domain_has_managed_save",
            "migrate_begin",
            "migrate_prepare",
            "migrate_perform",
            "migrate_finish",
            "migrate_confirm",
            "migrate_p2p",
            "checkpoint_create",
            "checkpoint_list",
            "checkpoint_delete",
            "checkpoint_get_xml_desc",
            "backup_begin",
            "backup_begin_pull",
            "domain_abort_job",
        }
    )

    def __init__(self, backend: "Optional[ContainerBackend]" = None) -> None:
        super().__init__(backend or ContainerBackend(host=SimHost(hostname="lxchost")))

    def features(self) -> List[str]:
        unsupported = {
            "save_restore",
            "managed_save",
            "migration",
            "checkpoints",
            "backup",
        }
        return [f for f in super().features() if f not in unsupported]

    # -- backend adapter -----------------------------------------------------

    def _backend_start(self, config: DomainConfig, paused: bool = False) -> None:
        self.backend.start_container(config)
        if paused:
            self.backend.write_cgroup(config.name, "freezer.state", "FROZEN")

    def _backend_shutdown(self, name: str) -> None:
        self.backend.stop_container(name)

    def _backend_destroy(self, name: str) -> None:
        self.backend.kill_container(name)

    def _backend_suspend(self, name: str) -> None:
        self.backend.write_cgroup(name, "freezer.state", "FROZEN")

    def _backend_resume(self, name: str) -> None:
        self.backend.write_cgroup(name, "freezer.state", "THAWED")

    def _backend_reboot(self, name: str) -> None:
        self.backend.reboot_container(name)

    def _backend_set_memory(self, name: str, memory_kib: int) -> None:
        self.backend.write_cgroup(name, "memory.limit_in_bytes", str(memory_kib * 1024))

    def _backend_set_vcpus(self, name: str, vcpus: int) -> None:
        spec = "0" if vcpus == 1 else f"0-{vcpus - 1}"
        self.backend.write_cgroup(name, "cpuset.cpus", spec)

    def _backend_info(self, name: str) -> Dict[str, Any]:
        stats = self.backend.container_stats(name)
        runtime = self.backend._get(name)
        return {
            "state": stats["state"],
            "vcpus": stats["vcpus"],
            "memory_kib": stats["memory_kib"],
            "max_memory_kib": runtime.max_memory_kib,
            "cpu_seconds": stats["cpu_seconds"],
        }

    def _apply_scheduler(self, name: str, scheduler) -> None:
        # containers realize cpu_shares as a literal cgroup write
        self.backend.write_cgroup(name, "cpu.shares", str(scheduler["cpu_shares"]))

    def _backend_save(self, name: str, path: str) -> None:
        raise self._unsupported("domain_save (containers cannot be checkpointed)")

    def _backend_restore(self, config: DomainConfig, path: str) -> None:
        raise self._unsupported("domain_restore")

    def migrate_begin(self, name: str) -> Dict[str, Any]:
        raise self._unsupported("migration (containers cannot be live-migrated)")

    def migrate_prepare(self, description: Dict[str, Any]) -> Dict[str, Any]:
        raise self._unsupported("migration")

    def domain_managed_save(self, name: str) -> None:
        raise self._unsupported("managed save (containers cannot be checkpointed)")

    def domain_managed_save_remove(self, name: str) -> None:
        raise self._unsupported("managed save")

    def domain_has_managed_save(self, name: str) -> bool:
        raise self._unsupported("managed save")

    def checkpoint_create(self, name: str, checkpoint_name: str) -> Dict[str, Any]:
        raise self._unsupported("checkpoints (containers have no dirty bitmaps)")

    def checkpoint_list(self, name: str) -> List[str]:
        raise self._unsupported("checkpoints")

    def checkpoint_delete(self, name: str, checkpoint_name: str) -> None:
        raise self._unsupported("checkpoints")

    def checkpoint_get_xml_desc(self, name: str, checkpoint_name: str) -> str:
        raise self._unsupported("checkpoints")

    def backup_begin(self, name: str, options: "Optional[Dict[str, Any]]" = None) -> Dict[str, Any]:
        raise self._unsupported("backup jobs")

    def backup_begin_pull(self, name: str, options: "Optional[Dict[str, Any]]" = None) -> Dict[str, Any]:
        raise self._unsupported("backup jobs (containers have no dirty bitmaps)")

    def domain_abort_job(self, name: str) -> Dict[str, Any]:
        raise self._unsupported("backup jobs")
