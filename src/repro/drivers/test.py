"""The test driver (``test:///default``).

Mirrors libvirt's mock driver: a fully functional in-memory node with a
zero-cost backend, pre-seeded with one running domain named ``test``.
It exists so applications (and the management-layer-overhead benchmark)
can exercise the complete uniform API with no hypervisor latency at
all.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import DomainExistsError, NoDomainError
from repro.hypervisors.base import Backend, GuestRuntime, RunState
from repro.hypervisors.host import SimHost
from repro.drivers.stateful import StatefulDriver
from repro.util import uuidutil
from repro.xmlconfig.domain import DomainConfig


class NullBackend(Backend):
    """A backend whose every operation is free and instantaneous."""

    kind = "test"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._saved: Dict[str, Dict[str, Any]] = {}

    def launch(self, config: DomainConfig, paused: bool = False) -> GuestRuntime:
        self._check_injected_failure(config.name)
        if self.has_guest(config.name):
            raise DomainExistsError(f"guest {config.name!r} already active")
        self.host.allocate(config.name, config.vcpus, config.current_memory_kib)
        runtime = GuestRuntime(
            name=config.name,
            uuid=config.uuid or uuidutil.generate_uuid(self.rng),
            vcpus=config.vcpus,
            memory_kib=config.current_memory_kib,
            clock=self.clock,
            utilization=self._new_utilization(),
        )
        if paused:
            runtime.transition(RunState.PAUSED)
        self._register(runtime)
        self._charge("start")
        return runtime

    def stop(self, name: str, graceful: bool) -> None:
        guest = self._get(name)
        self._check_injected_failure(name)
        if graceful:
            guest.require_state(RunState.RUNNING)
            self._charge("shutdown")
        else:
            self._charge("destroy")
        guest.transition(RunState.SHUTOFF)
        self._teardown(guest)

    def pause(self, name: str) -> None:
        guest = self._get(name)
        guest.require_state(RunState.RUNNING)
        self._charge("suspend")
        guest.transition(RunState.PAUSED)

    def unpause(self, name: str) -> None:
        guest = self._get(name)
        guest.require_state(RunState.PAUSED)
        self._charge("resume")
        guest.transition(RunState.RUNNING)

    def reboot(self, name: str) -> None:
        guest = self._get(name)
        guest.require_state(RunState.RUNNING)
        self._charge("reboot")

    def set_memory(self, name: str, memory_kib: int) -> None:
        guest = self._get(name)
        self._charge("set_memory")
        self.host.resize(name, memory_kib=memory_kib)
        guest.memory_kib = memory_kib

    def set_vcpus(self, name: str, vcpus: int) -> None:
        guest = self._get(name)
        self._charge("set_vcpus")
        self.host.resize(name, vcpus=vcpus)
        guest.vcpus = vcpus

    def save(self, name: str, path: str) -> None:
        guest = self._get(name)
        guest.require_state(RunState.RUNNING, RunState.PAUSED)
        self._charge("save")
        self._saved[path] = {"uuid": guest.uuid, "cpu_seconds": guest.cpu_seconds}
        guest.transition(RunState.SHUTOFF)
        self._teardown(guest)

    def restore(self, config: DomainConfig, path: str) -> None:
        blob = self._saved.get(path)
        if blob is None:
            raise NoDomainError(f"no saved state at {path!r}")
        runtime = self.launch(config)
        self._charge("restore")
        runtime.uuid = blob["uuid"]
        runtime._cpu_seconds = blob["cpu_seconds"]
        del self._saved[path]


class TestDriver(StatefulDriver):
    """Stateful driver over the null backend."""

    __test__ = False  # not a pytest test class, despite the name
    name = "test"
    accepted_types = ("test",)

    def __init__(self, backend: "Optional[NullBackend]" = None, seed_default: bool = True) -> None:
        super().__init__(backend or NullBackend(host=SimHost(hostname="testnode")))
        if seed_default:
            self._seed_default_objects()

    def _seed_default_objects(self) -> None:
        """The canonical test:///default contents: one running domain."""
        config = DomainConfig(
            name="test",
            domain_type="test",
            memory_kib=8 * 1024 * 1024,
            vcpus=2,
        )
        self.domain_define_xml(config.to_xml())
        self.domain_create("test")

    # -- backend adapter ---------------------------------------------------

    def _backend_start(self, config: DomainConfig, paused: bool = False) -> None:
        self.backend.launch(config, paused=paused)

    def _backend_shutdown(self, name: str) -> None:
        self.backend.stop(name, graceful=True)

    def _backend_destroy(self, name: str) -> None:
        self.backend.stop(name, graceful=False)

    def _backend_suspend(self, name: str) -> None:
        self.backend.pause(name)

    def _backend_resume(self, name: str) -> None:
        self.backend.unpause(name)

    def _backend_reboot(self, name: str) -> None:
        self.backend.reboot(name)

    def _backend_set_memory(self, name: str, memory_kib: int) -> None:
        self.backend.set_memory(name, memory_kib)

    def _backend_set_vcpus(self, name: str, vcpus: int) -> None:
        self.backend.set_vcpus(name, vcpus)

    def _backend_save(self, name: str, path: str) -> None:
        self.backend.save(name, path)

    def _backend_restore(self, config: DomainConfig, path: str) -> None:
        self.backend.restore(config, path)
