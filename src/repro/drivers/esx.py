"""The ESX driver — the *stateless*, client-side case.

VMware ESX exposes its own remote management API and persists the VM
inventory itself, so this driver runs entirely in the client process:
no libvirtd in the path, every call is a remote round trip to the
hypervisor host.  Features the remote API does not offer (storage
pools, virtual networks, client-driven migration) are honestly absent
from the capability set.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.driver import Driver
from repro.core.states import DomainState
from repro.errors import InvalidOperationError, NoDomainError
from repro.hypervisors.esx_backend import EsxBackend
from repro.util import uuidutil
from repro.xmlconfig.capabilities import GuestCapability
from repro.xmlconfig.domain import DomainConfig

_POWER_TO_STATE = {
    "poweredOn": DomainState.RUNNING,
    "suspended": DomainState.PAUSED,
    "poweredOff": DomainState.SHUTOFF,
}


class EsxDriver(Driver):
    """Client-side driver speaking the ESX remote API directly."""

    name = "esx"
    stateless = True
    #: core introspection calls the ESX remote API has no analogue for
    unsupported_ops = frozenset(
        {
            "domain_lookup_by_id",
            "domain_get_stats",
            "domain_get_scheduler_params",
            "domain_set_scheduler_params",
            "domain_get_job_info",
        }
    )

    def __init__(
        self,
        backend: EsxBackend,
        username: str = "root",
        password: str = "vmware",
    ) -> None:
        self.backend = backend
        self._session = backend.login(username, password)
        self.api_calls = 0

    def _invoke(self, method: str, **kwargs: Any) -> Any:
        self.api_calls += 1
        return self.backend.invoke(self._session, method, **kwargs)

    def _moid(self, name: str) -> str:
        return self._invoke("FindByName", name=name)

    # -- connection -----------------------------------------------------------

    def close(self) -> None:
        self.backend.logout(self._session)

    def get_hostname(self) -> str:
        return self.backend.host.hostname

    def get_capabilities(self) -> str:
        guests = [GuestCapability("hvm", self.backend.host.arch, ["esx"])]
        return self.backend.host.capabilities(guests).to_xml()

    def get_node_info(self) -> Dict[str, int]:
        return self.backend.host.node_info()

    def get_version(self) -> Tuple[int, int, int]:
        return (4, 0, 0)  # the vSphere generation contemporary to the paper

    def features(self) -> List[str]:
        return ["lifecycle", "pause_resume", "reboot", "set_memory", "set_vcpus"]

    # -- enumeration --------------------------------------------------------------

    def list_domains(self) -> List[str]:
        listing = self._invoke("ListVMs")
        return sorted(
            vm["name"] for vm in listing if vm["powerState"] != "poweredOff"
        )

    def list_defined_domains(self) -> List[str]:
        listing = self._invoke("ListVMs")
        return sorted(
            vm["name"] for vm in listing if vm["powerState"] == "poweredOff"
        )

    def num_of_domains(self) -> int:
        return len(self.list_domains())

    # -- lookup ----------------------------------------------------------------------

    def _public_record(self, moid: str) -> Dict[str, Any]:
        state = self._invoke("GetVMState", vm=moid)
        config = self._invoke("GetVMConfig", vm=moid)
        return {
            "name": config.name,
            "uuid": state["uuid"],
            "id": None,
            "state": int(_POWER_TO_STATE[state["powerState"]]),
            "persistent": True,  # the ESX inventory is always persistent
        }

    def domain_lookup_by_name(self, name: str) -> Dict[str, Any]:
        return self._public_record(self._moid(name))

    def domain_lookup_by_uuid(self, uuid: str) -> Dict[str, Any]:
        wanted = uuidutil.normalize_uuid(uuid)
        for vm in self._invoke("ListVMs"):
            state = self._invoke("GetVMState", vm=vm["moid"])
            if state["uuid"] == wanted:
                return self._public_record(vm["moid"])
        raise NoDomainError(f"no domain with matching uuid {uuid!r}")

    # -- lifecycle ---------------------------------------------------------------------

    def domain_define_xml(self, xml: str) -> Dict[str, Any]:
        config = DomainConfig.from_xml(xml)
        moid = self._invoke("RegisterVM", config=config)
        return self._public_record(moid)

    def domain_undefine(self, name: str) -> None:
        self._invoke("UnregisterVM", vm=self._moid(name))

    def domain_create(self, name: str) -> None:
        self._invoke("PowerOnVM_Task", vm=self._moid(name))

    def domain_create_xml(self, xml: str) -> Dict[str, Any]:
        record = self.domain_define_xml(xml)
        self.domain_create(record["name"])
        return self.domain_lookup_by_name(record["name"])

    def domain_shutdown(self, name: str) -> None:
        self._invoke("ShutdownGuest", vm=self._moid(name))

    def domain_destroy(self, name: str) -> None:
        self._invoke("PowerOffVM_Task", vm=self._moid(name))

    def domain_suspend(self, name: str) -> None:
        self._invoke("SuspendVM_Task", vm=self._moid(name))

    def domain_resume(self, name: str) -> None:
        moid = self._moid(name)
        state = self._invoke("GetVMState", vm=moid)
        if state["powerState"] != "suspended":
            raise InvalidOperationError(f"domain {name!r} is not suspended")
        self._invoke("PowerOnVM_Task", vm=moid)

    def domain_reboot(self, name: str) -> None:
        self._invoke("ResetVM_Task", vm=self._moid(name))

    # -- introspection --------------------------------------------------------------------

    def domain_get_info(self, name: str) -> Dict[str, Any]:
        moid = self._moid(name)
        state = self._invoke("GetVMState", vm=moid)
        config = self._invoke("GetVMConfig", vm=moid)
        return {
            "state": int(_POWER_TO_STATE[state["powerState"]]),
            "max_memory_kib": config.memory_kib,
            "memory_kib": state["memory_kib"],
            "vcpus": state["vcpus"],
            "cpu_seconds": state["cpu_seconds"],
        }

    def domain_get_state(self, name: str) -> int:
        state = self._invoke("GetVMState", vm=self._moid(name))
        return int(_POWER_TO_STATE[state["powerState"]])

    def domain_get_xml_desc(self, name: str) -> str:
        config = self._invoke("GetVMConfig", vm=self._moid(name))
        return config.to_xml()

    # -- tuning ------------------------------------------------------------------------------

    def domain_set_memory(self, name: str, memory_kib: int) -> None:
        self._invoke("ReconfigVM_Task", vm=self._moid(name), memory_kib=memory_kib)

    def domain_set_vcpus(self, name: str, vcpus: int) -> None:
        self._invoke("ReconfigVM_Task", vm=self._moid(name), vcpus=vcpus)
