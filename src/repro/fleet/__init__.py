"""Fleet-scale management: many daemons behind one client.

The package stacks three layers on the single-connection core:

* :class:`~repro.fleet.manager.FleetManager` — pooled, health-checked,
  auto-reopened connections to every daemon URI;
* :class:`~repro.fleet.registry.FleetRegistry` — a sharded fleet-wide
  domain index kept coherent by event-bus invalidation, not polling;
* :class:`~repro.fleet.orchestrator.FleetOrchestrator` — placement-aware
  mass operations: drain, rebalance, rolling restart.
"""

from repro.fleet.manager import FleetError, FleetManager, HostEntry
from repro.fleet.orchestrator import (
    DrainReport,
    FleetOrchestrator,
    MigrationOutcome,
    RebalanceReport,
    RestartReport,
)
from repro.fleet.registry import FleetRegistry

__all__ = [
    "DrainReport",
    "FleetError",
    "FleetManager",
    "FleetOrchestrator",
    "FleetRegistry",
    "HostEntry",
    "MigrationOutcome",
    "RebalanceReport",
    "RestartReport",
]
