"""Placement-aware mass operations over a fleet of daemons.

Three verbs every fleet operator needs, built from the primitives the
earlier layers already provide — live migration (pre-copy with
auto-converge and post-copy fallback), placement strategies, the
crash-safe restart path — composed, not reimplemented:

* :meth:`FleetOrchestrator.drain_host` — evacuate a host for
  maintenance: plan destinations for every running guest in one batch
  (acting on the *partial* plan when the fleet cannot absorb them all),
  then live-migrate in bounded-concurrency waves that share the
  maintenance link's bandwidth.
* :meth:`FleetOrchestrator.rebalance` — shave the most-loaded hosts
  down toward the fleet mean with a bounded number of migrations.
* :meth:`FleetOrchestrator.rolling_restart` — restart daemons one at a
  time, verifying after each that the crash-safe journal brought every
  guest back before touching the next host.

Concurrency is *modelled*: migrations execute serially on the shared
virtual clock, but each wave's transfers share the link (per-migration
bandwidth = link / wave size) and the wave's wall-clock is its slowest
member, so the reported makespan is what a real bounded-parallel drain
would cost.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.core.connection import Connection
from repro.errors import VirtError
from repro.placement.strategies import HostView, PlacementError, strategy as lookup_strategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.manager import FleetManager


@dataclass
class MigrationOutcome:
    """One guest's fate during a mass operation."""

    name: str
    memory_kib: int
    source: str
    dest: "Optional[str]"
    wave: int = 0
    ok: bool = False
    error: "Optional[str]" = None
    total_time_s: float = 0.0
    downtime_s: float = 0.0
    rounds: int = 0
    converged: bool = False
    post_copy: bool = False


@dataclass
class DrainReport:
    """What a drain did: per-guest outcomes plus the modelled schedule."""

    host: str
    outcomes: List[MigrationOutcome] = field(default_factory=list)
    #: guests no destination could absorb (left running on the host)
    unplaced: List[str] = field(default_factory=list)
    waves: int = 0
    #: modelled wall-clock: Σ over waves of the wave's slowest migration
    makespan_s: float = 0.0

    @property
    def migrated(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def postcopy_count(self) -> int:
        return sum(1 for o in self.outcomes if o.ok and o.post_copy)

    def rounds_distribution(self) -> Dict[int, int]:
        """How many migrations needed N copy rounds — the convergence
        picture of the whole drain at a glance."""
        dist: Dict[int, int] = {}
        for outcome in self.outcomes:
            if outcome.ok:
                dist[outcome.rounds] = dist.get(outcome.rounds, 0) + 1
        return dict(sorted(dist.items()))


@dataclass
class RebalanceReport:
    moves: List[MigrationOutcome] = field(default_factory=list)
    imbalance_before: float = 0.0
    imbalance_after: float = 0.0


@dataclass
class RestartReport:
    """One host's pass through a rolling restart."""

    host: str
    guests_before: List[str] = field(default_factory=list)
    guests_after: List[str] = field(default_factory=list)
    ok: bool = False
    error: "Optional[str]" = None

    @property
    def lost(self) -> List[str]:
        return sorted(set(self.guests_before) - set(self.guests_after))


class FleetOrchestrator:
    """Mass operations over the hosts a :class:`FleetManager` manages."""

    def __init__(
        self,
        fleet: "FleetManager",
        strategy: str = "balanced",
        max_parallel: int = 4,
        link_bandwidth_mib_s: float = 1024.0,
        max_downtime_s: float = 0.3,
        auto_converge: bool = True,
        post_copy: bool = True,
        metrics: "Optional[Any]" = None,
        tracer: "Optional[Any]" = None,
    ) -> None:
        if max_parallel < 1:
            raise PlacementError("max_parallel must be >= 1")
        self.fleet = fleet
        self.strategy = lookup_strategy(strategy)
        self.max_parallel = max_parallel
        self.link_bandwidth_mib_s = link_bandwidth_mib_s
        self.max_downtime_s = max_downtime_s
        self.auto_converge = auto_converge
        self.post_copy = post_copy
        # observability rides the fleet's shared instruments by default,
        # so orchestrator spans land in the same trace as the RPC spans
        # the fleet's remote drivers emit
        self.tracer = tracer if tracer is not None else getattr(fleet, "tracer", None)
        self.metrics = metrics if metrics is not None else getattr(fleet, "metrics", None)
        if self.metrics is not None:
            self._m_drain = self.metrics.histogram(
                "fleet_drain_seconds",
                "Modelled makespan of one host drain",
            )
            self._m_migrations = self.metrics.counter(
                "fleet_migrations_total",
                "Guests the orchestrator tried to move, by outcome",
                ("outcome",),
            )
            self._m_waves = self.metrics.counter(
                "fleet_waves_total",
                "Bounded-concurrency migration waves executed",
            )
        else:
            self._m_drain = self._m_migrations = self._m_waves = None

    def _span(self, name: str, **attributes: Any) -> Any:
        """A tracer span when the orchestrator has a tracer, else a no-op."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attributes)

    def _count_migration(self, outcome: str) -> None:
        if self._m_migrations is not None:
            self._m_migrations.labels(outcome=outcome).inc()

    # -- planning ----------------------------------------------------------

    def _destinations(self, exclude: Sequence[str]) -> Dict[str, Connection]:
        excluded = set(exclude)
        return {
            hostname: self.fleet.connection(hostname)
            for hostname, healthy in self.fleet.health_check().items()
            if healthy and hostname not in excluded
        }

    def plan_drain(
        self, guests: "List[Any]", destinations: Dict[str, Connection]
    ) -> "tuple[List[tuple[Any, int, str]], List[str]]":
        """Pick a destination for every guest.

        Returns ``(plan, unplaced)`` where the plan rows are
        ``(guest, memory_kib, dest_hostname)`` — everything the wave
        loop needs without further RPCs, so a host dying mid-drain only
        fails migrations, never the planner's bookkeeping.

        One batch ``place_all`` call plans the whole evacuation with
        each placement accounted against the next.  When the fleet
        cannot absorb everything the strategy's partial plan is kept,
        and the remaining (smaller — guests are sorted largest-first)
        requests are retried one by one against the residual capacity
        before anything is declared unplaced.
        """
        sized = sorted(
            ((g, g.info().memory_kib) for g in guests),
            key=lambda pair: pair[1],
            reverse=True,
        )
        conns = list(destinations.values())
        names = {id(conn): hostname for hostname, conn in destinations.items()}
        requests = [memory_kib for _, memory_kib in sized]
        try:
            chosen = self.strategy.place_all(conns, requests)
            return [
                (guest, memory_kib, names[id(conn)])
                for (guest, memory_kib), conn in zip(sized, chosen)
            ], []
        except PlacementError as exc:
            plan = [
                (guest, memory_kib, names[id(conn)])
                for (guest, memory_kib), conn in zip(sized[: exc.index], exc.partial)
            ]
            # rebuild the residual-capacity view the partial plan implies
            views = [HostView(conn) for conn in conns]
            by_conn = {id(v.connection): v for v in views}
            for (_, memory_kib), conn in zip(sized[: exc.index], exc.partial):
                by_conn[id(conn)].commit(memory_kib)
            unplaced: List[str] = []
            for guest, memory_kib in sized[exc.index :]:
                try:
                    view = self.strategy.choose(views, memory_kib)
                except PlacementError:
                    unplaced.append(guest.name)
                    continue
                view.commit(memory_kib)
                plan.append((guest, memory_kib, names[id(view.connection)]))
            return plan, unplaced

    # -- drain -------------------------------------------------------------

    def drain_host(self, hostname: str) -> DrainReport:
        """Live-migrate every running guest off ``hostname``.

        Migrations run in waves of at most ``max_parallel``; the wave
        shares ``link_bandwidth_mib_s`` equally and the modelled
        makespan charges each wave its slowest member.
        """
        report = DrainReport(host=hostname)
        with self._span("fleet.drain", host=hostname):
            source = self.fleet.connection(hostname)
            guests = source.list_domains(active=True)
            if not guests:
                return report
            destinations = self._destinations(exclude=[hostname])
            if not destinations:
                report.unplaced = sorted(g.name for g in guests)
                for name in report.unplaced:
                    self._count_migration("unplaced")
                return report
            plan, report.unplaced = self.plan_drain(guests, destinations)
            for _ in report.unplaced:
                self._count_migration("unplaced")

            for wave_index in range(0, len(plan), self.max_parallel):
                wave = plan[wave_index : wave_index + self.max_parallel]
                share_mib_s = self.link_bandwidth_mib_s / len(wave)
                wave_time = 0.0
                with self._span(
                    "drain.wave", wave=report.waves, guests=len(wave)
                ):
                    for guest, memory_kib, dest_hostname in wave:
                        outcome = MigrationOutcome(
                            name=guest.name,
                            memory_kib=memory_kib,
                            source=hostname,
                            dest=dest_hostname,
                            wave=report.waves,
                        )
                        report.outcomes.append(outcome)
                        try:
                            with self._span(
                                "fleet.migrate",
                                guest=guest.name,
                                source=hostname,
                                dest=dest_hostname,
                            ):
                                moved = guest.migrate(
                                    destinations[dest_hostname],
                                    live=True,
                                    max_downtime_s=self.max_downtime_s,
                                    bandwidth_mib_s=share_mib_s,
                                    auto_converge=self.auto_converge,
                                    post_copy=self.post_copy,
                                )
                        except VirtError as exc:
                            outcome.error = f"{type(exc).__name__}: {exc}"
                            self._count_migration("failed")
                            continue
                        stats = moved.last_migration_stats or {}
                        outcome.ok = True
                        outcome.total_time_s = stats.get("total_time_s", 0.0)
                        outcome.downtime_s = stats.get("downtime_s", 0.0)
                        outcome.rounds = stats.get("rounds", 0)
                        outcome.converged = stats.get("converged", False)
                        outcome.post_copy = stats.get("post_copy", False)
                        wave_time = max(wave_time, outcome.total_time_s)
                        self._count_migration("ok")
                report.waves += 1
                report.makespan_s += wave_time
                if self._m_waves is not None:
                    self._m_waves.inc()
            if self._m_drain is not None:
                self._m_drain.observe(report.makespan_s)
        return report

    # -- rebalance ---------------------------------------------------------

    @staticmethod
    def _imbalance(views: Sequence[HostView]) -> float:
        """Spread between the most- and least-loaded host (used fraction)."""
        if not views:
            return 0.0
        fractions = [v.used_fraction for v in views]
        return max(fractions) - min(fractions)

    def rebalance(
        self, max_moves: int = 8, threshold: float = 0.10
    ) -> RebalanceReport:
        """Migrate guests off hosts loaded more than ``threshold`` above
        the fleet mean, to wherever the strategy prefers, until every
        donor is back inside the band or ``max_moves`` is spent."""
        report = RebalanceReport()
        with self._span("fleet.rebalance", max_moves=max_moves):
            self._rebalance(report, max_moves, threshold)
        return report

    def _rebalance(
        self, report: RebalanceReport, max_moves: int, threshold: float
    ) -> None:
        connections = {
            hostname: self.fleet.connection(hostname)
            for hostname, healthy in self.fleet.health_check().items()
            if healthy
        }
        if len(connections) < 2:
            return
        views = {h: HostView(c) for h, c in connections.items()}
        report.imbalance_before = self._imbalance(list(views.values()))

        moves = 0
        while moves < max_moves:
            mean = sum(v.used_fraction for v in views.values()) / len(views)
            donors = sorted(
                (v for v in views.values() if v.used_fraction > mean + threshold),
                key=lambda v: v.used_fraction,
                reverse=True,
            )
            if not donors:
                break
            donor = donors[0]
            donor_conn = connections[donor.hostname]
            guests = sorted(
                donor_conn.list_domains(active=True),
                key=lambda g: g.info().memory_kib,
            )
            receivers = [v for v in views.values() if v.hostname != donor.hostname]
            moved_one = False
            for guest in guests:
                memory_kib = guest.info().memory_kib
                try:
                    target = self.strategy.choose(receivers, memory_kib)
                except PlacementError:
                    continue
                # pointless shuffle guard: the move must narrow the gap
                if target.used_fraction >= donor.used_fraction:
                    continue
                outcome = MigrationOutcome(
                    name=guest.name,
                    memory_kib=memory_kib,
                    source=donor.hostname,
                    dest=target.hostname,
                )
                report.moves.append(outcome)
                moves += 1
                try:
                    with self._span(
                        "fleet.migrate",
                        guest=guest.name,
                        source=donor.hostname,
                        dest=target.hostname,
                    ):
                        moved = guest.migrate(
                            connections[target.hostname],
                            live=True,
                            max_downtime_s=self.max_downtime_s,
                            bandwidth_mib_s=self.link_bandwidth_mib_s,
                            auto_converge=self.auto_converge,
                            post_copy=self.post_copy,
                        )
                except VirtError as exc:
                    outcome.error = f"{type(exc).__name__}: {exc}"
                    self._count_migration("failed")
                    break
                stats = moved.last_migration_stats or {}
                outcome.ok = True
                outcome.total_time_s = stats.get("total_time_s", 0.0)
                outcome.downtime_s = stats.get("downtime_s", 0.0)
                outcome.rounds = stats.get("rounds", 0)
                outcome.converged = stats.get("converged", False)
                outcome.post_copy = stats.get("post_copy", False)
                self._count_migration("ok")
                target.commit(memory_kib)
                donor.free_kib += memory_kib
                donor.guests -= 1
                moved_one = True
                break
            if not moved_one:
                break
        report.imbalance_after = self._imbalance(list(views.values()))

    # -- rolling restart ---------------------------------------------------

    def rolling_restart(
        self,
        restart_fn: "Callable[[str], None]",
        hosts: "Optional[Sequence[str]]" = None,
    ) -> List[RestartReport]:
        """Restart each host's daemon in turn via ``restart_fn(hostname)``
        (which must bounce the daemon out of band — the crash harness's
        ``restart``, a process manager...), re-dial it, and verify the
        journal recovery brought every guest back.  The roll stops at
        the first host that loses a guest, leaving the rest untouched.
        """
        reports: List[RestartReport] = []
        with self._span("fleet.rolling_restart"):
            self._rolling_restart(restart_fn, hosts, reports)
        return reports

    def _rolling_restart(
        self,
        restart_fn: "Callable[[str], None]",
        hosts: "Optional[Sequence[str]]",
        reports: List[RestartReport],
    ) -> None:
        for hostname in hosts if hosts is not None else self.fleet.hostnames():
            report = RestartReport(host=hostname)
            reports.append(report)
            try:
                with self._span("restart.host", host=hostname):
                    before = self.fleet.connection(hostname).list_domains()
                    report.guests_before = sorted(d.name for d in before)
                    restart_fn(hostname)
                    after = self.fleet.reopen(hostname).list_domains()
                    report.guests_after = sorted(d.name for d in after)
            except VirtError as exc:
                report.error = f"{type(exc).__name__}: {exc}"
                break
            report.ok = not report.lost
            if not report.ok:
                break
