"""The fleet-wide domain registry: name/uuid → home daemon, sharded.

Scanning every daemon on every "where does web-42 live?" question is
O(hosts) per lookup and hammers the wire.  The registry instead keeps
one *shard* per host — a name→record snapshot of that daemon's domain
list — and keeps it honest with the event bus rather than with polling:
each shard subscribes to lifecycle/config/migration records from its
daemon and marks itself **stale** the moment anything changes.  A stale
shard is only re-fetched when a lookup actually needs it (lazy,
invalidation-driven coherence — the same discipline as the PR-7 client
read cache, lifted to fleet scope).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.errors import NoDomainError, VirtError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.domain import Domain
    from repro.fleet.manager import FleetManager

#: event kinds that can move, create, or destroy a domain — anything
#: else (device hotplug, snapshots, jobs) leaves *where it lives* alone
INVALIDATING_KINDS = ("lifecycle", "config", "migration")


class _Shard:
    """One host's slice of the registry: its domain snapshot + staleness."""

    __slots__ = ("hostname", "by_name", "by_uuid", "stale", "sub_id", "refreshes")

    def __init__(self, hostname: str) -> None:
        self.hostname = hostname
        self.by_name: Dict[str, Dict[str, Any]] = {}
        self.by_uuid: Dict[str, str] = {}
        #: True until first refresh, and again after any invalidating event
        self.stale = True
        self.sub_id: "Optional[int]" = None
        self.refreshes = 0


class FleetRegistry:
    """Sharded name/uuid → home-daemon index over a :class:`FleetManager`.

    Lookups hit the in-memory shards; only shards invalidated by an
    event since their last refresh go back to the wire, and only when a
    lookup misses.  ``locate``/``locate_by_uuid`` answer the placement
    question ("which host?"); ``lookup`` returns a live
    :class:`~repro.core.domain.Domain` handle on the home connection.
    """

    def __init__(self, fleet: "FleetManager") -> None:
        self._fleet = fleet
        self._shards: Dict[str, _Shard] = {}
        self._lock = threading.RLock()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.refreshes = 0
        self.invalidations = 0

    # -- shard lifecycle ---------------------------------------------------

    def attach(self, hostname: str) -> None:
        """Start tracking one host: create its shard and arm the event
        subscription that keeps it honest."""
        with self._lock:
            if hostname in self._shards:
                return
            self._shards[hostname] = _Shard(hostname)
        self.rearm(hostname)

    def detach(self, hostname: str) -> None:
        with self._lock:
            self._shards.pop(hostname, None)

    def rearm(self, hostname: str) -> None:
        """(Re-)subscribe the shard's invalidation handler — needed after
        the fleet re-dials a host, since subscriptions die with the
        connection."""
        with self._lock:
            shard = self._shards.get(hostname)
        if shard is None:
            return
        try:
            connection = self._fleet.connection(hostname)
            shard.sub_id = connection.subscribe_events(
                lambda record, host=hostname: self._invalidate(host),
                kinds=INVALIDATING_KINDS,
            )
        except VirtError:
            # host unreachable right now: leave the shard stale; the next
            # successful reopen rearms it
            shard.sub_id = None
        shard.stale = True

    def _invalidate(self, hostname: str) -> None:
        with self._lock:
            shard = self._shards.get(hostname)
            if shard is not None and not shard.stale:
                shard.stale = True
                self.invalidations += 1

    def invalidate(self, hostname: "Optional[str]" = None) -> None:
        """Manually mark one shard (or all) stale."""
        with self._lock:
            shards = (
                [self._shards[hostname]]
                if hostname is not None
                else list(self._shards.values())
            )
        for shard in shards:
            shard.stale = True

    # -- refresh -----------------------------------------------------------

    def _refresh(self, shard: _Shard) -> None:
        try:
            connection = self._fleet.connection(shard.hostname)
            active = connection.list_domains(active=True)
            inactive = connection.list_domains(active=False)
        except VirtError:
            # unreachable host: keep the last snapshot, stay stale
            return
        by_name: Dict[str, Dict[str, Any]] = {}
        by_uuid: Dict[str, str] = {}
        for dom, is_active in [(d, True) for d in active] + [(d, False) for d in inactive]:
            record = {
                "name": dom.name,
                "uuid": dom.uuid,
                "hostname": shard.hostname,
                "active": is_active,
            }
            by_name[dom.name] = record
            if record["uuid"]:
                by_uuid[record["uuid"]] = dom.name
        with self._lock:
            shard.by_name = by_name
            shard.by_uuid = by_uuid
            shard.stale = False
            shard.refreshes += 1
            self.refreshes += 1

    def _find(self, predicate) -> "Optional[Dict[str, Any]]":
        """Two passes: fresh shards first (pure memory), then refresh the
        stale ones one at a time until something matches.

        A *running* instance always wins: after a migration the source
        host still carries the guest's persistent config as an inactive
        domain, and "where does it live" must answer with the host
        actually running it.  An inactive-only match is remembered and
        returned only when no shard reports the domain active.
        """
        with self._lock:
            shards = list(self._shards.values())
        inactive_match: "Optional[Dict[str, Any]]" = None
        for shard in shards:
            if not shard.stale:
                record = predicate(shard)
                if record is not None:
                    if record.get("active"):
                        return record
                    inactive_match = inactive_match or record
        for shard in shards:
            if shard.stale:
                self._refresh(shard)
                record = predicate(shard)
                if record is not None:
                    if record.get("active"):
                        return record
                    inactive_match = inactive_match or record
        return inactive_match

    # -- lookups -----------------------------------------------------------

    def locate(self, name: str) -> str:
        """The hostname of the daemon where ``name`` lives."""
        return self._locate_record(lambda shard: shard.by_name.get(name), name)[
            "hostname"
        ]

    def locate_by_uuid(self, uuid: str) -> str:
        def by_uuid(shard: _Shard) -> "Optional[Dict[str, Any]]":
            name = shard.by_uuid.get(uuid)
            return shard.by_name.get(name) if name is not None else None

        return self._locate_record(by_uuid, uuid)["hostname"]

    def lookup(self, name: str) -> "Domain":
        """A live handle to ``name`` on its home connection."""
        record = self._locate_record(lambda shard: shard.by_name.get(name), name)
        return self._fleet.connection(record["hostname"]).lookup_domain(name)

    def _locate_record(self, predicate, key: str) -> Dict[str, Any]:
        self.lookups += 1
        record = self._find(predicate)
        if record is None:
            self.misses += 1
            raise NoDomainError(f"no domain {key!r} on any of the fleet's hosts")
        self.hits += 1
        return record

    # -- views -------------------------------------------------------------

    def domains(self) -> List[Dict[str, Any]]:
        """Every known domain record fleet-wide (refreshing stale shards)."""
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            if shard.stale:
                self._refresh(shard)
        records: List[Dict[str, Any]] = []
        for shard in shards:
            records.extend(shard.by_name.values())
        return sorted(records, key=lambda r: (r["hostname"], r["name"]))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            shards = list(self._shards.values())
        return {
            "shards": len(shards),
            "stale_shards": sum(1 for s in shards if s.stale),
            "entries": sum(len(s.by_name) for s in shards),
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "refreshes": self.refreshes,
            "invalidations": self.invalidations,
        }
