"""The fleet connection manager: one client, many daemons.

The real libvirt topology is one ``libvirtd`` per host; managing a
datacentre means holding (and keeping alive) a connection to every one
of them.  :class:`FleetManager` pools connections by hostname, health-
checks them through the cheapest uniform call, and transparently
re-dials hosts whose daemon died and came back — riding the remote
driver's keepalive/reconnect machinery when the URI asks for it.

The shape follows virtui-manager's ``ConnectionManager`` (open, close,
health-check and pool many URIs behind one object), grown fleet-wide:
the manager is the substrate the sharded registry
(:mod:`repro.fleet.registry`) and the orchestrator
(:mod:`repro.fleet.orchestrator`) build on.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.core.connection import Connection, open_connection
from repro.errors import InvalidArgumentError, VirtError
from repro.util.virtlog import LOG_ERROR, Logger


class FleetError(VirtError):
    """A fleet-level operation failed (unknown host, no live hosts...)."""


class HostEntry:
    """One managed daemon: its URI, live connection, and health record."""

    __slots__ = (
        "uri",
        "hostname",
        "connection",
        "healthy",
        "last_error",
        "reopens",
        "probes",
        "failures",
    )

    def __init__(self, uri: str, hostname: str, connection: Connection) -> None:
        self.uri = uri
        self.hostname = hostname
        self.connection = connection
        self.healthy = True
        self.last_error: "Optional[str]" = None
        #: times the manager re-dialled this host after a dead connection
        self.reopens = 0
        self.probes = 0
        self.failures = 0

    def summary(self) -> Dict[str, Any]:
        return {
            "hostname": self.hostname,
            "uri": self.uri,
            "healthy": self.healthy,
            "reopens": self.reopens,
            "last_error": self.last_error,
        }


class FleetManager:
    """Open/pool/health-check/re-dial connections to many daemon URIs.

    >>> fleet = FleetManager(["qemu+tcp://host01/system", ...])
    >>> fleet.connection("host01").list_domains()
    >>> fleet.health_check()          # probes every host, re-dials the dead
    >>> fleet.registry().locate("web-42")   # fleet-wide domain lookup

    Connections are keyed by the daemon's *hostname* (what it answers to
    on the wire), not the URI string, so one host is one entry no matter
    how it was dialled.
    """

    def __init__(
        self,
        uris: "Optional[List[str]]" = None,
        auto_reopen: bool = True,
        log_level: int = LOG_ERROR,
        metrics: "Optional[Any]" = None,
        tracer: "Optional[Any]" = None,
    ) -> None:
        self._hosts: Dict[str, HostEntry] = {}
        self._lock = threading.RLock()
        self.auto_reopen = auto_reopen
        self.logger = Logger(level=log_level)
        self._registry: "Optional[Any]" = None
        #: shared observability plumbed into every remote connection this
        #: manager dials: one registry/tracer sees the whole fleet's
        #: client-side RPC traffic (the substrate for trace stitching)
        self.metrics = metrics
        self.tracer = tracer
        #: optional verdict hook (hostname -> bool) ANDed into
        #: :meth:`health_check` — the scraper's health scorer installs here
        self.health_scorer: "Optional[Any]" = None
        for uri in uris or ():
            self.add_host(uri)

    # -- membership --------------------------------------------------------

    def _open(self, uri: str) -> Connection:
        """Dial one URI, threading the fleet's shared metrics registry
        and tracer into the remote driver when there is a transport."""
        if self.metrics is None and self.tracer is None:
            return open_connection(uri)
        from repro.core.uri import ConnectionURI
        from repro.drivers.remote import RemoteDriver

        parsed = ConnectionURI.parse(uri)
        if not parsed.transport:
            return open_connection(uri)
        return Connection(
            RemoteDriver(parsed, metrics=self.metrics, tracer=self.tracer),
            parsed,
        )

    def add_host(self, uri: str) -> str:
        """Dial ``uri`` and add the daemon to the fleet; returns its hostname."""
        connection = self._open(uri)
        try:
            hostname = connection.hostname()
        except VirtError:
            connection.close()
            raise
        with self._lock:
            if hostname in self._hosts:
                connection.close()
                raise InvalidArgumentError(
                    f"fleet already manages a daemon named {hostname!r}"
                )
            self._hosts[hostname] = HostEntry(uri, hostname, connection)
        if self._registry is not None:
            self._registry.attach(hostname)
        return hostname

    def remove_host(self, hostname: str) -> None:
        with self._lock:
            entry = self._hosts.pop(hostname, None)
        if entry is None:
            raise FleetError(f"fleet does not manage a daemon named {hostname!r}")
        if self._registry is not None:
            self._registry.detach(hostname)
        try:
            entry.connection.close()
        except VirtError:
            pass

    def hostnames(self) -> List[str]:
        with self._lock:
            return sorted(self._hosts)

    def __len__(self) -> int:
        with self._lock:
            return len(self._hosts)

    def __contains__(self, hostname: str) -> bool:
        with self._lock:
            return hostname in self._hosts

    # -- connection access -------------------------------------------------

    def _entry(self, hostname: str) -> HostEntry:
        with self._lock:
            entry = self._hosts.get(hostname)
        if entry is None:
            raise FleetError(f"fleet does not manage a daemon named {hostname!r}")
        return entry

    def entry(self, hostname: str) -> HostEntry:
        """The health record for one host (public, read-mostly view)."""
        return self._entry(hostname)

    def connection(self, hostname: str) -> Connection:
        """The pooled connection to one host, re-dialled if it died."""
        entry = self._entry(hostname)
        if entry.connection.closed or not entry.healthy:
            if not self.auto_reopen:
                raise FleetError(
                    f"connection to {hostname!r} is down (auto_reopen disabled)"
                )
            return self.reopen(hostname)
        return entry.connection

    def connections(self, healthy_only: bool = True) -> List[Connection]:
        """Live connections to every (healthy) host, hostname order."""
        return [
            self.connection(hostname)
            for hostname in self.hostnames()
            if not healthy_only or self._entry(hostname).healthy
        ]

    def reopen(self, hostname: str) -> Connection:
        """Force a fresh dial to one host (daemon restarted, link dead)."""
        entry = self._entry(hostname)
        try:
            entry.connection.close()
        except VirtError:
            pass
        connection = self._open(entry.uri)
        reported = connection.hostname()
        if reported != hostname:
            connection.close()
            raise FleetError(
                f"daemon at {entry.uri!r} now answers as {reported!r}, "
                f"expected {hostname!r}"
            )
        entry.connection = connection
        entry.healthy = True
        entry.last_error = None
        entry.reopens += 1
        if self._registry is not None:
            self._registry.rearm(hostname)
        return connection

    # -- health ------------------------------------------------------------

    def _probe(self, entry: HostEntry) -> bool:
        """One cheap uniform call proves the daemon answers."""
        entry.probes += 1
        try:
            entry.connection.hostname()
            return True
        except VirtError as exc:
            entry.failures += 1
            entry.last_error = f"{type(exc).__name__}: {exc}"
            return False

    def health_check(self) -> Dict[str, bool]:
        """Probe every host; dead connections are re-dialled when
        ``auto_reopen`` is set.  Returns hostname → healthy."""
        results: Dict[str, bool] = {}
        for hostname in self.hostnames():
            entry = self._entry(hostname)
            ok = not entry.connection.closed and self._probe(entry)
            if not ok and self.auto_reopen:
                try:
                    self.reopen(hostname)
                    ok = self._probe(entry)
                except VirtError as exc:
                    entry.last_error = f"{type(exc).__name__}: {exc}"
                    ok = False
            if ok and self.health_scorer is not None:
                # the wire answers, but the scorer looks deeper (scrape
                # freshness, saturation, journal lag): a failing score
                # marks the host unhealthy so placement avoids it
                try:
                    ok = bool(self.health_scorer(hostname))
                    if not ok:
                        entry.last_error = "health score below threshold"
                except VirtError as exc:
                    entry.last_error = f"{type(exc).__name__}: {exc}"
                    ok = False
            if not ok:
                self.logger.error(
                    "fleet", f"host {hostname} unhealthy: {entry.last_error}"
                )
            entry.healthy = ok
            results[hostname] = ok
        return results

    # -- fleet-wide views --------------------------------------------------

    def fleet_status(self) -> List[Dict[str, Any]]:
        """One row per host: health plus the capacity/domain snapshot."""
        rows: List[Dict[str, Any]] = []
        for hostname in self.hostnames():
            entry = self._entry(hostname)
            row = entry.summary()
            if entry.healthy and not entry.connection.closed:
                try:
                    info = entry.connection.node_info()
                    row.update(
                        domains=entry.connection.num_of_domains(),
                        memory_kib=info["memory_kib"],
                        free_memory_kib=info["free_memory_kib"],
                        guests=info["guests"],
                    )
                except VirtError as exc:
                    row["healthy"] = False
                    row["last_error"] = f"{type(exc).__name__}: {exc}"
            rows.append(row)
        return rows

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            entries = list(self._hosts.values())
        return {
            "hosts": len(entries),
            "healthy": sum(1 for e in entries if e.healthy),
            "reopens": sum(e.reopens for e in entries),
            "probes": sum(e.probes for e in entries),
            "probe_failures": sum(e.failures for e in entries),
        }

    # -- registry ----------------------------------------------------------

    def registry(self) -> "Any":
        """The fleet-wide sharded domain registry (created on first use,
        event subscriptions armed against every current host)."""
        if self._registry is None:
            from repro.fleet.registry import FleetRegistry

            registry = FleetRegistry(self)
            self._registry = registry
            for hostname in self.hostnames():
                registry.attach(hostname)
        return self._registry

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            entries = list(self._hosts.values())
            self._hosts.clear()
        for entry in entries:
            try:
                entry.connection.close()
            except VirtError:
                pass
        self._registry = None

    def __enter__(self) -> "FleetManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return f"FleetManager({stats['hosts']} hosts, {stats['healthy']} healthy)"
