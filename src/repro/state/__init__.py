"""Durable daemon state: atomic state directories and the WAL journal."""

from repro.state.journal import StateJournal
from repro.state.statedir import StateDir

__all__ = ["StateDir", "StateJournal"]
