"""Filesystem state directory with atomic write-rename semantics.

Real libvirtd persists driver state under ``/var/lib/libvirt`` and
``/run/libvirt`` so a daemon restart can reattach to running guests.
:class:`StateDir` is the equivalent anchor for this reproduction: a
directory of named files where every full-file write is atomic
(write to a temp name in the same directory, then ``os.replace``), so
a crash can never leave a half-written snapshot behind — readers see
the old bytes or the new bytes, nothing in between.

Appends (the journal path) are deliberately *not* atomic: a torn tail
after a crash is exactly the failure :class:`repro.state.journal`
recovery must tolerate, so :meth:`append` exposes the raw behaviour
and even lets callers write a partial suffix on purpose.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.errors import InvalidArgumentError


class StateDir:
    """One directory of named state files, with atomic replace writes."""

    def __init__(self, root: str) -> None:
        if not root:
            raise InvalidArgumentError("state directory path must be non-empty")
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def path(self, name: str) -> str:
        if not name or os.sep in name or name.startswith("."):
            raise InvalidArgumentError(f"bad state file name {name!r}")
        return os.path.join(self.root, name)

    def exists(self, name: str) -> bool:
        return os.path.exists(self.path(name))

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self.path(name))
        except OSError:
            return 0

    def read_bytes(self, name: str) -> Optional[bytes]:
        """Return the file's bytes, or None if it does not exist."""
        try:
            with open(self.path(name), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def write_atomic(self, name: str, data: bytes) -> None:
        """Replace the file's contents atomically (temp + ``os.replace``).

        The temp file lives in the same directory so the final rename
        never crosses a filesystem boundary; flush+fsync before the
        rename models the write barrier a journalling daemon needs.
        """
        target = self.path(name)
        tmp = f"{target}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)

    def append(self, name: str, data: bytes) -> None:
        """Append raw bytes — intentionally non-atomic (journal tail)."""
        with open(self.path(name), "ab") as handle:
            handle.write(data)
            handle.flush()

    def truncate(self, name: str, size: int = 0) -> None:
        """Cut the file down to ``size`` bytes (recovery discards a torn
        tail this way); creates the file if missing."""
        with open(self.path(name), "ab") as handle:
            pass
        with open(self.path(name), "r+b") as handle:
            handle.truncate(size)

    def remove(self, name: str) -> None:
        try:
            os.remove(self.path(name))
        except FileNotFoundError:
            pass

    def list(self) -> List[str]:
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if not entry.startswith(".") and not entry.endswith(".tmp")
        )
