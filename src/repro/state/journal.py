"""Checksummed append-only write-ahead journal over a :class:`StateDir`.

The durability scheme mirrors what management daemons actually do:

* every state mutation appends one **record** to ``journal.bin`` —
  a 4-byte big-endian payload length, a 4-byte CRC32 of the payload,
  then a compact-JSON payload ``{"lsn", "kind", "key", "data"}``.
  ``data = null`` is a tombstone (the key was deleted);
* the journal is a last-writer-wins key-value log: replay folds it
  into ``{(kind, key): data}``, so re-journalling the same key is
  cheap and idempotent;
* :meth:`checkpoint` collapses history — the folded map is written
  atomically to ``snapshot.json`` and the journal truncated — so
  recovery is *snapshot load + tail replay*, sub-linear in the number
  of appends ever made rather than proportional to full history;
* a crash can tear the final append (short header, short payload, or
  a CRC mismatch).  :meth:`_load` detects the torn tail, truncates it
  away, and keeps everything before it — a partial record was never
  acknowledged, so discarding it is the correct roll-back.

When a :class:`~repro.util.clock.Clock` is supplied, appends, snapshot
writes, and replay charge modelled I/O latency, which is what the
crash-recovery benchmark measures.  Without a clock the journal is
cost-free, so attaching persistence never skews unrelated timings.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import InvalidArgumentError
from repro.state.statedir import StateDir
from repro.util.clock import Clock

_HEADER = struct.Struct(">II")  # payload length, CRC32(payload)

#: modelled I/O latency constants (charged only when a clock is given)
APPEND_COST_S = 50e-6  # one fsync'd journal append
REPLAY_COST_S = 10e-6  # verify + fold one record during recovery
SNAPSHOT_BASE_S = 2e-3  # atomic snapshot rewrite, fixed part
SNAPSHOT_ENTRY_S = 4e-6  # per folded entry serialized into the snapshot
SNAPSHOT_LOAD_S = 1e-3  # snapshot read + parse, fixed part
SNAPSHOT_LOAD_ENTRY_S = 1.5e-6  # per entry loaded from the snapshot


class StateJournal:
    """A write-ahead journal with snapshot checkpoints and CRC recovery."""

    SNAPSHOT_FILE = "snapshot.json"
    JOURNAL_FILE = "journal.bin"

    def __init__(
        self,
        statedir: StateDir,
        clock: "Optional[Clock]" = None,
        checkpoint_every: int = 1024,
    ) -> None:
        if checkpoint_every < 1:
            raise InvalidArgumentError("checkpoint_every must be at least 1")
        self.statedir = statedir
        self.clock = clock
        self.checkpoint_every = checkpoint_every
        #: optional observer called as ``on_append(kind, key, lsn)`` after
        #: every durable append — the daemon's flight recorder rides this
        self.on_append: "Optional[Any]" = None
        #: folded last-writer-wins state: (kind, key) -> data
        self._kv: Dict[Tuple[str, str], Any] = {}
        self.lsn = 0
        #: records currently sitting in the journal tail (since snapshot)
        self.tail_records = 0
        # -- recovery audit (populated by _load) -------------------------
        self.snapshot_lsn = 0
        self.replayed_records = 0
        self.torn_tail_discarded = False
        self.appends = 0
        self._load()

    # -- public KV surface -------------------------------------------------

    def get(self, kind: str, key: str) -> Any:
        return self._kv.get((kind, key))

    def entries(self, kind: str) -> Dict[str, Any]:
        """All live entries of one kind, keyed by record key."""
        return {
            key: data for (k, key), data in self._kv.items() if k == kind
        }

    def __len__(self) -> int:
        return len(self._kv)

    def put(self, kind: str, key: str, data: Any) -> None:
        """Journal an upsert; durable before this method returns."""
        if data is None:
            raise InvalidArgumentError("journal data must not be None (use delete)")
        self._append(kind, key, data)
        self._kv[(kind, key)] = data
        self._maybe_auto_checkpoint()

    def delete(self, kind: str, key: str) -> None:
        """Journal a tombstone for ``(kind, key)``."""
        self._append(kind, key, None)
        self._kv.pop((kind, key), None)
        self._maybe_auto_checkpoint()

    # -- record encoding ---------------------------------------------------

    def _encode(self, kind: str, key: str, data: Any) -> bytes:
        payload = json.dumps(
            {"lsn": self.lsn + 1, "kind": kind, "key": key, "data": data},
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    def _append(self, kind: str, key: str, data: Any) -> None:
        record = self._encode(kind, key, data)
        self.statedir.append(self.JOURNAL_FILE, record)
        self.lsn += 1
        self.tail_records += 1
        self.appends += 1
        if self.clock is not None:
            self.clock.sleep(APPEND_COST_S)
        if self.on_append is not None:
            self.on_append(kind, key, self.lsn)

    def append_torn(self, kind: str, key: str, data: Any) -> int:
        """Write a deliberately torn record: the crash-injection hook.

        Only a prefix of the record's bytes reaches the journal (header
        plus roughly half the payload), exactly what a crash between
        ``write`` and completion leaves behind.  The in-memory map is
        *not* updated — the write never finished.  Returns the number
        of bytes written, for tests to assert against.
        """
        record = self._encode(kind, key, data)
        torn = record[: _HEADER.size + max(1, (len(record) - _HEADER.size) // 2)]
        self.statedir.append(self.JOURNAL_FILE, torn)
        if self.clock is not None:
            self.clock.sleep(APPEND_COST_S)
        return len(torn)

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> None:
        """Fold the journal into ``snapshot.json`` and truncate the tail.

        The snapshot write is atomic (StateDir write-rename), so a crash
        during checkpoint leaves either the old snapshot + full journal
        or the new snapshot + empty journal — both recoverable.
        """
        snapshot = {
            "lsn": self.lsn,
            "entries": [
                [kind, key, data]
                for (kind, key), data in sorted(self._kv.items())
            ],
        }
        blob = json.dumps(snapshot, separators=(",", ":"), sort_keys=True).encode("utf-8")
        self.statedir.write_atomic(self.SNAPSHOT_FILE, blob)
        self.statedir.truncate(self.JOURNAL_FILE, 0)
        self.snapshot_lsn = self.lsn
        self.tail_records = 0
        if self.clock is not None:
            self.clock.sleep(SNAPSHOT_BASE_S + SNAPSHOT_ENTRY_S * len(self._kv))

    def _maybe_auto_checkpoint(self) -> None:
        if self.tail_records >= self.checkpoint_every:
            self.checkpoint()

    # -- recovery ----------------------------------------------------------

    def _load(self) -> None:
        """Snapshot load + journal tail replay, tolerating a torn tail."""
        raw_snapshot = self.statedir.read_bytes(self.SNAPSHOT_FILE)
        if raw_snapshot is not None:
            snapshot = json.loads(raw_snapshot.decode("utf-8"))
            self.lsn = self.snapshot_lsn = int(snapshot.get("lsn", 0))
            for kind, key, data in snapshot.get("entries", ()):
                self._kv[(str(kind), str(key))] = data
            if self.clock is not None:
                self.clock.sleep(
                    SNAPSHOT_LOAD_S + SNAPSHOT_LOAD_ENTRY_S * len(self._kv)
                )
        raw = self.statedir.read_bytes(self.JOURNAL_FILE)
        if not raw:
            return
        good_end = 0
        for offset, payload in self._iter_records(raw):
            record = json.loads(payload.decode("utf-8"))
            kind, key = str(record["kind"]), str(record["key"])
            if record["data"] is None:
                self._kv.pop((kind, key), None)
            else:
                self._kv[(kind, key)] = record["data"]
            self.lsn = max(self.lsn, int(record.get("lsn", 0)))
            self.replayed_records += 1
            self.tail_records += 1
            good_end = offset
            if self.clock is not None:
                self.clock.sleep(REPLAY_COST_S)
        if good_end != len(raw):
            # a partial final record: never acknowledged, so roll it back
            self.torn_tail_discarded = True
            self.statedir.truncate(self.JOURNAL_FILE, good_end)

    @staticmethod
    def _iter_records(raw: bytes) -> "Iterator[Tuple[int, bytes]]":
        """Yield ``(end_offset, payload)`` for each intact record; stop
        at the first torn one (short header/payload or CRC mismatch)."""
        offset = 0
        while offset + _HEADER.size <= len(raw):
            length, crc = _HEADER.unpack_from(raw, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(raw):
                return  # payload torn short
            payload = raw[start:end]
            if zlib.crc32(payload) != crc:
                return  # bit rot or a torn rewrite: stop before it
            yield end, payload
            offset = end
