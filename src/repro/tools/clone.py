"""``clone_domain`` — the virt-clone analogue.

Produces an independent copy of a defined guest: fresh UUID, fresh MAC
addresses, and per-disk handling through the storage API — disks that
live in a storage pool become copy-on-write overlays backed by the
original image; disks outside any pool are re-created blank under a
new path.  The source must be shut off (cloning a live disk image
would corrupt it).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.core.connection import Connection
from repro.core.domain import Domain
from repro.core.states import DomainState
from repro.errors import InvalidOperationError, NoStoragePoolError, VirtError
from repro.xmlconfig.storage import VolumeConfig


def clone_domain(
    source: Domain,
    new_name: str,
    conn: "Optional[Connection]" = None,
    start: bool = False,
) -> Domain:
    """Clone ``source`` as ``new_name`` on ``conn`` (default: same host)."""
    conn = conn or source.connection
    if source.state() != DomainState.SHUTOFF:
        raise InvalidOperationError(
            f"domain {source.name!r} must be shut off to clone "
            f"(is {source.state_text()})"
        )
    config = source.config().copy(name=new_name)
    config.uuid = None  # the driver assigns a fresh one at define time

    for index, interface in enumerate(config.interfaces):
        if interface.mac:
            interface.mac = _derive_mac(new_name, index)

    for disk in config.disks:
        if disk.device != "disk":
            continue  # cdrom/floppy media are shared, not cloned
        cloned = _clone_disk(conn, disk.source, new_name)
        disk.source = cloned
        if disk.driver_format == "raw":
            disk.driver_format = "qcow2"  # overlays are qcow2
    config.validate()

    clone = conn.define_domain(config)
    if start:
        clone.start()
    return clone


def _derive_mac(name: str, index: int) -> str:
    """A stable locally administered MAC derived from the clone name."""
    digest = hashlib.sha256(f"{name}:{index}".encode()).digest()
    return "52:54:00:%02x:%02x:%02x" % (digest[0], digest[1], digest[2])


def _clone_disk(conn: Connection, path: str, new_name: str) -> str:
    """COW-clone a pool volume, or pick a fresh path for loose images."""
    for pool in conn.list_storage_pools():
        for volume in pool.list_volumes():
            info = volume.info()
            if info.path != path:
                continue
            clone_volume = f"{new_name}-{volume.name}"
            if info.volume_format == "raw":
                # raw images cannot back an overlay: full copy
                created = pool.create_volume(
                    VolumeConfig(
                        clone_volume,
                        info.capacity_bytes,
                        allocation_bytes=info.allocation_bytes,
                        volume_format="raw",
                    )
                )
            else:
                created = pool.create_volume(
                    VolumeConfig(
                        clone_volume,
                        info.capacity_bytes,
                        volume_format="qcow2",
                        backing_store=path,
                    )
                )
            return created.info().path
    # not pool-managed: give the clone its own path; the backend
    # materializes it at first boot
    stem, dot, suffix = path.rpartition(".")
    if dot:
        return f"{stem}-{new_name}.{suffix}"
    return f"{path}-{new_name}"
