"""Higher-level provisioning tools over the public API (extension).

``provision_domain`` is the virt-install analogue (simple arguments →
volumes + config + running guest); ``clone_domain`` is the virt-clone
analogue (fresh identity, copy-on-write disks).
"""

from repro.tools.clone import clone_domain
from repro.tools.provision import provision_domain

__all__ = ["provision_domain", "clone_domain"]
