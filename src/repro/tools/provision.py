"""``provision_domain`` — the virt-install analogue.

One call takes simple sizing arguments and produces a ready guest:
ensures the storage pool exists and is active, creates the root
volume, assembles the domain config with sensible devices (disk,
NIC, graphics, console), defines it, and optionally boots it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.connection import Connection
from repro.core.domain import Domain
from repro.errors import NoStoragePoolError, VirtError
from repro.util.units import parse_size, parse_size_kib
from repro.xmlconfig.domain import (
    ConsoleDevice,
    DiskDevice,
    DomainConfig,
    GraphicsDevice,
    InterfaceDevice,
    OSConfig,
)
from repro.xmlconfig.storage import StoragePoolConfig, VolumeConfig

#: domain type → os block appropriate for it
_OS_BY_TYPE = {
    "xen": lambda: OSConfig("xen", "x86_64", ["hd"]),
    "lxc": lambda: OSConfig("exe", "x86_64", [], init="/sbin/init"),
}


def provision_domain(
    conn: Connection,
    name: str,
    memory: "str | int" = "1 GiB",
    vcpus: int = 1,
    disk_size: "str | int" = "10 GiB",
    pool: str = "default",
    network: Optional[str] = "default",
    graphics: bool = True,
    start: bool = True,
    domain_type: Optional[str] = None,
) -> Domain:
    """Create (and by default boot) a fully equipped guest.

    ``memory`` and ``disk_size`` accept human sizes (``"2 GiB"``).
    ``domain_type`` defaults to the first type the connection's
    capabilities advertise.
    """
    if domain_type is None:
        types = conn.capabilities().domain_types()
        if not types:
            raise VirtError(f"connection {conn.uri} advertises no guest types")
        domain_type = types[0]
    memory_kib = parse_size_kib(memory, default_unit="mib")
    disk_bytes = parse_size(disk_size, default_unit="gib")

    disks = []
    if domain_type != "lxc":  # containers share the host filesystem
        storage_pool = _ensure_pool(conn, pool)
        volume = storage_pool.create_volume(
            VolumeConfig(f"{name}-root.qcow2", disk_bytes)
        )
        disks.append(
            DiskDevice(volume.path, "vda", capacity_bytes=disk_bytes)
        )

    interfaces = []
    if network is not None:
        interfaces.append(InterfaceDevice("network", network))

    os_config = _OS_BY_TYPE.get(domain_type, OSConfig)()
    config = DomainConfig(
        name=name,
        domain_type=domain_type,
        memory_kib=memory_kib,
        vcpus=vcpus,
        os=os_config,
        disks=disks,
        interfaces=interfaces,
        graphics=[GraphicsDevice("vnc")] if graphics and domain_type != "lxc" else [],
        consoles=[ConsoleDevice("pty")],
        features=["acpi", "apic"] if domain_type not in ("lxc", "xen") else [],
    )
    domain = conn.define_domain(config)
    if start:
        domain.start()
    return domain


def _ensure_pool(conn: Connection, name: str):
    """Look the pool up, creating and starting a default one if absent."""
    try:
        pool = conn.lookup_storage_pool(name)
    except NoStoragePoolError:
        pool = conn.define_storage_pool(StoragePoolConfig(name=name))
    if not pool.is_active:
        pool.start()
    return pool
