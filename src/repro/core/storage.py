"""``StoragePool`` and ``Volume`` handles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Union

from repro.xmlconfig.storage import StoragePoolConfig, VolumeConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import Connection


@dataclass(frozen=True)
class PoolInfo:
    """``virStoragePoolGetInfo`` result."""

    capacity_bytes: int
    allocation_bytes: int
    available_bytes: int
    active: bool


@dataclass(frozen=True)
class VolumeInfo:
    """``virStorageVolGetInfo`` result."""

    capacity_bytes: int
    allocation_bytes: int
    volume_format: str
    path: str


class Volume:
    """Handle to one volume inside a pool."""

    def __init__(self, pool: "StoragePool", name: str) -> None:
        self._pool = pool
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    @property
    def pool(self) -> "StoragePool":
        return self._pool

    def info(self) -> VolumeInfo:
        raw = self._pool._conn._driver.storage_vol_get_info(self._pool.name, self._name)
        return VolumeInfo(
            capacity_bytes=raw["capacity_bytes"],
            allocation_bytes=raw["allocation_bytes"],
            volume_format=raw["format"],
            path=raw["path"],
        )

    @property
    def path(self) -> str:
        return self.info().path

    def delete(self) -> None:
        self._pool._conn._driver.storage_vol_delete(self._pool.name, self._name)

    def upload(self, data: bytes, offset: int = 0) -> VolumeInfo:
        """``virStorageVolUpload``: write ``data`` at ``offset``.

        Remotely the payload travels over a virStream (chunked STREAM
        frames under credit-based flow control), not a procedure call.
        """
        raw = self._pool._conn._driver.storage_vol_upload(
            self._pool.name, self._name, data, offset
        )
        return VolumeInfo(
            capacity_bytes=raw["capacity_bytes"],
            allocation_bytes=raw["allocation_bytes"],
            volume_format=raw["format"],
            path=raw["path"],
        )

    def download(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        """``virStorageVolDownload``: read ``length`` bytes from ``offset``."""
        return self._pool._conn._driver.storage_vol_download(
            self._pool.name, self._name, offset, length
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Volume({self._name!r} in pool {self._pool.name!r})"


class StoragePool:
    """Handle to one storage pool on a connection."""

    def __init__(self, connection: "Connection", name: str, uuid: Optional[str] = None) -> None:
        self._conn = connection
        self._name = name
        self._uuid = uuid

    @property
    def name(self) -> str:
        return self._name

    @property
    def uuid(self) -> Optional[str]:
        if self._uuid is None:
            record = self._conn._driver.storage_pool_lookup_by_name(self._name)
            self._uuid = record.get("uuid")
        return self._uuid

    @property
    def is_active(self) -> bool:
        record = self._conn._driver.storage_pool_lookup_by_name(self._name)
        return bool(record.get("active", False))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoragePool({self._name!r} on {self._conn.uri})"

    def start(self) -> "StoragePool":
        self._conn._driver.storage_pool_create(self._name)
        return self

    create = start

    def destroy(self) -> "StoragePool":
        self._conn._driver.storage_pool_destroy(self._name)
        return self

    def undefine(self) -> None:
        self._conn._driver.storage_pool_undefine(self._name)

    def info(self) -> PoolInfo:
        raw = self._conn._driver.storage_pool_get_info(self._name)
        return PoolInfo(
            capacity_bytes=raw["capacity_bytes"],
            allocation_bytes=raw["allocation_bytes"],
            available_bytes=raw["available_bytes"],
            active=raw["active"],
        )

    def xml_desc(self) -> str:
        return self._conn._driver.storage_pool_get_xml_desc(self._name)

    def config(self) -> StoragePoolConfig:
        return StoragePoolConfig.from_xml(self.xml_desc())

    def list_volumes(self) -> List[Volume]:
        names = self._conn._driver.storage_vol_list(self._name)
        return [Volume(self, name) for name in names]

    def create_volume(self, config: "Union[VolumeConfig, str]") -> Volume:
        """Create a volume from a :class:`VolumeConfig` or its XML."""
        xml = config.to_xml() if isinstance(config, VolumeConfig) else config
        record = self._conn._driver.storage_vol_create_xml(self._name, xml)
        return Volume(self, record["name"])

    def lookup_volume(self, name: str) -> Volume:
        self._conn._driver.storage_vol_get_info(self._name, name)  # existence check
        return Volume(self, name)
