"""The uniform management API — the paper's primary contribution."""

from repro.core.connection import Connection, open_connection
from repro.core.domain import Domain, DomainInfo
from repro.core.driver import (
    FEATURES,
    Driver,
    open_driver,
    register_driver,
    register_remote_driver,
    registered_schemes,
)
from repro.core.events import EventBroker
from repro.core.network import Network
from repro.core.states import ACTIVE_STATES, DomainEvent, DomainState, state_name
from repro.core.storage import PoolInfo, StoragePool, Volume, VolumeInfo
from repro.core.uri import ConnectionURI

__all__ = [
    "Connection",
    "open_connection",
    "Domain",
    "DomainInfo",
    "Driver",
    "FEATURES",
    "register_driver",
    "register_remote_driver",
    "registered_schemes",
    "open_driver",
    "EventBroker",
    "Network",
    "StoragePool",
    "Volume",
    "PoolInfo",
    "VolumeInfo",
    "DomainState",
    "DomainEvent",
    "ACTIVE_STATES",
    "state_name",
    "ConnectionURI",
]
