"""Connection URI parsing.

Libvirt selects the driver and transport from a URI of the form::

    driver[+transport]://[username@][hostname][:port]/[path][?extraparameters]

e.g. ``qemu:///system``, ``xen+tcp://node7/``, ``esx://admin@vc1/?no_verify=1``.
"""

from __future__ import annotations

import urllib.parse
from typing import Dict, Optional

from repro.errors import InvalidURIError

#: transports accepted in the ``driver+transport`` scheme position
KNOWN_TRANSPORTS = ("unix", "tcp", "tls", "ssh", "libssh2", "ext")


class ConnectionURI:
    """A parsed connection URI."""

    def __init__(
        self,
        driver: str,
        transport: Optional[str] = None,
        username: Optional[str] = None,
        hostname: Optional[str] = None,
        port: Optional[int] = None,
        path: str = "",
        params: Optional[Dict[str, str]] = None,
    ) -> None:
        if not driver:
            raise InvalidURIError("URI driver part must be non-empty")
        if transport is not None and transport not in KNOWN_TRANSPORTS:
            raise InvalidURIError(f"unknown URI transport {transport!r}")
        if port is not None and not 0 < port < 65536:
            raise InvalidURIError(f"URI port out of range: {port}")
        self.driver = driver
        self.transport = transport
        self.username = username
        self.hostname = hostname
        self.port = port
        self.path = path
        self.params = dict(params or {})

    @property
    def is_remote(self) -> bool:
        """True if the URI names a transport or a remote host."""
        return self.transport is not None or bool(self.hostname)

    @staticmethod
    def parse(text: str) -> "ConnectionURI":
        if not text or "://" not in text:
            raise InvalidURIError(f"malformed connection URI {text!r}")
        parsed = urllib.parse.urlparse(text)
        scheme = parsed.scheme
        if not scheme:
            raise InvalidURIError(f"malformed connection URI {text!r}")
        driver, plus, transport = scheme.partition("+")
        if plus and not transport:
            raise InvalidURIError(f"empty transport in URI scheme {scheme!r}")
        if not driver:
            raise InvalidURIError(f"empty driver in URI scheme {scheme!r}")
        try:
            port = parsed.port
        except ValueError as exc:
            raise InvalidURIError(f"bad port in URI {text!r}: {exc}") from exc
        params: Dict[str, str] = {}
        if parsed.query:
            for key, values in urllib.parse.parse_qs(
                parsed.query, keep_blank_values=True
            ).items():
                params[key] = values[-1]
        return ConnectionURI(
            driver=driver,
            transport=transport or None,
            username=parsed.username,
            hostname=parsed.hostname,
            port=port,
            path=parsed.path or "",
            params=params,
        )

    def format(self) -> str:
        """Reassemble the canonical URI string."""
        scheme = self.driver if self.transport is None else f"{self.driver}+{self.transport}"
        authority = ""
        if self.username:
            authority += f"{self.username}@"
        if self.hostname:
            authority += self.hostname
        if self.port:
            authority += f":{self.port}"
        uri = f"{scheme}://{authority}{self.path}"
        if self.params:
            uri += "?" + urllib.parse.urlencode(self.params)
        return uri

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConnectionURI({self.format()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConnectionURI):
            return NotImplemented
        return self.format() == other.format()
