"""Domain lifecycle states and events (``virDomainState`` et al.)."""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

from repro.hypervisors.base import RunState


class DomainState(enum.IntEnum):
    """Public domain states, numbered like libvirt's."""

    NOSTATE = 0
    RUNNING = 1
    BLOCKED = 2
    PAUSED = 3
    SHUTDOWN = 4  # being shut down
    SHUTOFF = 5
    CRASHED = 6
    PMSUSPENDED = 7


class DomainEvent(enum.IntEnum):
    """Lifecycle event kinds delivered to registered callbacks."""

    DEFINED = 0
    UNDEFINED = 1
    STARTED = 2
    SUSPENDED = 3
    RESUMED = 4
    STOPPED = 5
    SHUTDOWN = 6
    CRASHED = 7
    MIGRATED = 8


#: mapping from backend-level run states to the public enum
_RUNSTATE_TO_DOMAIN = {
    RunState.RUNNING: DomainState.RUNNING,
    RunState.PAUSED: DomainState.PAUSED,
    RunState.SHUTOFF: DomainState.SHUTOFF,
    RunState.CRASHED: DomainState.CRASHED,
}


def from_run_state(state: RunState) -> DomainState:
    """Translate a backend run state to the public domain state."""
    return _RUNSTATE_TO_DOMAIN[state]


#: which states count as "active" (the domain has a live instance)
ACTIVE_STATES: FrozenSet[DomainState] = frozenset(
    {DomainState.RUNNING, DomainState.BLOCKED, DomainState.PAUSED, DomainState.CRASHED}
)

#: legal state transitions for the uniform API's lifecycle operations;
#: drivers consult this before touching the backend so every hypervisor
#: rejects the same invalid requests with the same error
VALID_TRANSITIONS: Dict[str, FrozenSet[DomainState]] = {
    "start": frozenset({DomainState.SHUTOFF}),
    "shutdown": frozenset({DomainState.RUNNING}),
    "destroy": ACTIVE_STATES,
    "suspend": frozenset({DomainState.RUNNING}),
    "resume": frozenset({DomainState.PAUSED}),
    "reboot": frozenset({DomainState.RUNNING}),
    "save": frozenset({DomainState.RUNNING, DomainState.PAUSED}),
    "migrate": frozenset({DomainState.RUNNING, DomainState.PAUSED}),
}


def state_name(state: DomainState) -> str:
    """Human name used by the CLI (``running``, ``shut off``, …)."""
    return {
        DomainState.NOSTATE: "no state",
        DomainState.RUNNING: "running",
        DomainState.BLOCKED: "blocked",
        DomainState.PAUSED: "paused",
        DomainState.SHUTDOWN: "in shutdown",
        DomainState.SHUTOFF: "shut off",
        DomainState.CRASHED: "crashed",
        DomainState.PMSUSPENDED: "pmsuspended",
    }[state]
