"""The ``Domain`` handle — the uniform per-VM management surface.

A handle is cheap: it stores the connection and the domain's identity
and forwards every operation to the connection's driver.  The same
handle code manages a KVM guest, a Xen domain, a container, or an ESX
virtual machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.states import DomainState, state_name
from repro.xmlconfig.domain import DomainConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import Connection


@dataclass(frozen=True)
class DomainInfo:
    """The ``virDomainGetInfo`` result."""

    state: DomainState
    max_memory_kib: int
    memory_kib: int
    vcpus: int
    cpu_seconds: float


class Domain:
    """Handle to one domain on a connection."""

    def __init__(self, connection: "Connection", name: str, uuid: Optional[str] = None) -> None:
        self._conn = connection
        self._name = name
        self._uuid = uuid
        #: transfer statistics of the migration that produced this handle
        #: (total_time_s, downtime_s, rounds, converged, transferred_bytes,
        #: and post_copy/throttle details); None for handles not born from
        #: a migration.  Set by :func:`repro.migration.manager.migrate_domain`.
        self.last_migration_stats: Optional[Dict[str, Any]] = None

    # -- identity ---------------------------------------------------------

    @property
    def connection(self) -> "Connection":
        return self._conn

    @property
    def name(self) -> str:
        return self._name

    @property
    def uuid(self) -> Optional[str]:
        if self._uuid is None:
            record = self._conn._driver.domain_lookup_by_name(self._name)
            self._uuid = record.get("uuid")
        return self._uuid

    @property
    def id(self) -> Optional[int]:
        """The hypervisor-assigned numeric id; None while inactive."""
        record = self._conn._driver.domain_lookup_by_name(self._name)
        return record.get("id")

    @property
    def persistent(self) -> bool:
        record = self._conn._driver.domain_lookup_by_name(self._name)
        return bool(record.get("persistent", True))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({self._name!r} on {self._conn.uri})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._conn is other._conn and self._name == other._name

    def __hash__(self) -> int:
        return hash((id(self._conn), self._name))

    # -- state ---------------------------------------------------------------

    def state(self) -> DomainState:
        return DomainState(self._conn._driver.domain_get_state(self._name))

    def state_text(self) -> str:
        return state_name(self.state())

    @property
    def is_active(self) -> bool:
        return self.state() not in (DomainState.SHUTOFF, DomainState.NOSTATE)

    def info(self) -> DomainInfo:
        raw = self._conn._driver.domain_get_info(self._name)
        return DomainInfo(
            state=DomainState(raw["state"]),
            max_memory_kib=raw["max_memory_kib"],
            memory_kib=raw["memory_kib"],
            vcpus=raw["vcpus"],
            cpu_seconds=raw["cpu_seconds"],
        )

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "Domain":
        """Boot a defined domain (``virDomainCreate``)."""
        self._conn._driver.domain_create(self._name)
        return self

    # libvirt calls this virDomainCreate; keep both spellings
    create = start

    def shutdown(self) -> "Domain":
        """Ask the guest to power down cooperatively."""
        self._conn._driver.domain_shutdown(self._name)
        return self

    def destroy(self) -> "Domain":
        """Hard-stop the instance (the virtual power cord)."""
        self._conn._driver.domain_destroy(self._name)
        return self

    def suspend(self) -> "Domain":
        self._conn._driver.domain_suspend(self._name)
        return self

    def resume(self) -> "Domain":
        self._conn._driver.domain_resume(self._name)
        return self

    def reboot(self) -> "Domain":
        self._conn._driver.domain_reboot(self._name)
        return self

    def undefine(self) -> None:
        """Remove the persistent configuration."""
        self._conn._driver.domain_undefine(self._name)

    # -- configuration -------------------------------------------------------------

    def xml_desc(self) -> str:
        return self._conn._driver.domain_get_xml_desc(self._name)

    def get_stats(self) -> Dict[str, Any]:
        """Extended statistics: CPU time, balloon, cumulative I/O counters."""
        return self._conn._driver.domain_get_stats(self._name)

    def scheduler_params(self) -> Dict[str, int]:
        """CPU scheduler tunables (``virsh schedinfo``)."""
        from repro.util.typedparams import to_dict

        return to_dict(self._conn._driver.domain_get_scheduler_params(self._name))

    def set_scheduler_params(self, **values: int) -> None:
        """Update scheduler tunables (``cpu_shares``, ``vcpu_period``,
        ``vcpu_quota``); applied live when the domain is running."""
        from repro.util import typedparams as tp

        params = tp.TypedParamList()
        for field, value in values.items():
            if field == "vcpu_quota":
                tp.add_llong(params, field, value)
            else:
                tp.add_ullong(params, field, value)
        self._conn._driver.domain_set_scheduler_params(self._name, params)

    def job_info(self) -> Dict[str, Any]:
        """The current/last long-running job (migration, save)."""
        return self._conn._driver.domain_get_job_info(self._name)

    def config(self) -> DomainConfig:
        """The parsed configuration document."""
        return DomainConfig.from_xml(self.xml_desc())

    def set_memory(self, memory_kib: int) -> None:
        """Balloon the live guest to ``memory_kib``."""
        self._conn._driver.domain_set_memory(self._name, memory_kib)

    def set_vcpus(self, vcpus: int) -> None:
        self._conn._driver.domain_set_vcpus(self._name, vcpus)

    def attach_device(self, device_xml: str) -> None:
        self._conn._driver.domain_attach_device(self._name, device_xml)

    def detach_device(self, device_xml: str) -> None:
        self._conn._driver.domain_detach_device(self._name, device_xml)

    def abort_job(self) -> Dict[str, Any]:
        """Cancel the active background job; returns its final stats."""
        return self._conn._driver.domain_abort_job(self._name)

    # -- save/restore -----------------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize guest state to a file and stop it (explicit save)."""
        self._conn._driver.domain_save(self._name, path)

    def managed_save(self) -> None:
        """Save guest state to the hypervisor-managed location; the next
        :meth:`start` restores from it automatically."""
        self._conn._driver.domain_managed_save(self._name)

    def managed_save_remove(self) -> None:
        self._conn._driver.domain_managed_save_remove(self._name)

    def has_managed_save(self) -> bool:
        return bool(self._conn._driver.domain_has_managed_save(self._name))

    # -- autostart ----------------------------------------------------------------------

    @property
    def autostart(self) -> bool:
        return self._conn._driver.domain_get_autostart(self._name)

    @autostart.setter
    def autostart(self, value: bool) -> None:
        self._conn._driver.domain_set_autostart(self._name, bool(value))

    # -- snapshots -----------------------------------------------------------------------

    def create_snapshot(self, snapshot_name: str) -> Dict[str, Any]:
        return self._conn._driver.snapshot_create(self._name, snapshot_name)

    def list_snapshots(self) -> List[str]:
        return self._conn._driver.snapshot_list(self._name)

    def revert_to_snapshot(self, snapshot_name: str) -> None:
        self._conn._driver.snapshot_revert(self._name, snapshot_name)

    def delete_snapshot(self, snapshot_name: str) -> None:
        self._conn._driver.snapshot_delete(self._name, snapshot_name)

    # -- checkpoints & backup --------------------------------------------------------------

    def create_checkpoint(self, checkpoint_name: str) -> Dict[str, Any]:
        """Freeze the dirty-block bitmaps into a named checkpoint."""
        return self._conn._driver.checkpoint_create(self._name, checkpoint_name)

    def list_checkpoints(self) -> List[str]:
        return self._conn._driver.checkpoint_list(self._name)

    def delete_checkpoint(self, checkpoint_name: str) -> None:
        self._conn._driver.checkpoint_delete(self._name, checkpoint_name)

    def checkpoint_xml_desc(self, checkpoint_name: str) -> str:
        return self._conn._driver.checkpoint_get_xml_desc(self._name, checkpoint_name)

    def backup_begin(
        self,
        pool: str,
        incremental: Optional[str] = None,
        checkpoint: Optional[str] = None,
        volume: Optional[str] = None,
        bandwidth_mib_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Start a backup job into a volume of ``pool``.

        ``incremental`` names a checkpoint: only blocks dirtied since it
        are transferred.  ``checkpoint`` additionally creates a new
        checkpoint at the moment the backup starts, so the next backup
        can be incremental from this one.  Returns the job description;
        poll :meth:`job_info`, cancel with :meth:`abort_job`.
        """
        options: Dict[str, Any] = {"pool": pool}
        if incremental is not None:
            options["incremental"] = incremental
        if checkpoint is not None:
            options["checkpoint"] = checkpoint
        if volume is not None:
            options["volume"] = volume
        if bandwidth_mib_s is not None:
            options["bandwidth_mib_s"] = float(bandwidth_mib_s)
        return self._conn._driver.backup_begin(self._name, options)

    def backup_pull(
        self,
        incremental: Optional[str] = None,
        disks: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        """Pull-mode backup: read the dirty blocks directly.

        Unlike :meth:`backup_begin` (push mode, daemon writes into a
        pool volume), pull mode hands the block payload to the caller
        NBD-style: remotely it rides a virStream.  ``incremental`` names
        a checkpoint so only blocks dirtied since it are read.  Returns
        a manifest (``disks`` → sorted dirty block lists, block size)
        plus ``data``, the concatenated block payload.
        """
        options: Dict[str, Any] = {}
        if incremental is not None:
            options["incremental"] = incremental
        if disks is not None:
            options["disks"] = list(disks)
        return self._conn._driver.backup_begin_pull(self._name, options)

    def open_console(self) -> Any:
        """``virDomainOpenConsole``: attach to the guest's console.

        Returns a console object with ``send``/``recv``/``close`` —
        a local PTY stand-in or, remotely, a bidirectional virStream.
        """
        return self._conn._driver.domain_open_console(self._name)

    # -- migration ------------------------------------------------------------------------

    def migrate(
        self,
        dest: "Connection",
        live: bool = True,
        max_downtime_s: float = 0.3,
        bandwidth_mib_s: Optional[float] = None,
        auto_converge: bool = False,
        post_copy: bool = False,
    ) -> "Domain":
        """Migrate this domain to another connection's host.

        Returns the handle on the destination.  Managed (client-driven)
        migration: the client orchestrates begin/prepare/perform/finish
        across the two connections, as libvirt does for peer pairs that
        cannot talk to each other directly.

        ``auto_converge`` throttles the guest's vCPUs when copy rounds
        stall; ``post_copy`` switches modes instead of blowing the
        downtime budget when pre-copy cannot converge (the
        VIR_MIGRATE_AUTO_CONVERGE / VIR_MIGRATE_POSTCOPY flags).
        """
        from repro.migration.manager import migrate_domain

        return migrate_domain(
            self,
            dest,
            live=live,
            max_downtime_s=max_downtime_s,
            bandwidth_mib_s=bandwidth_mib_s,
            auto_converge=auto_converge,
            post_copy=post_copy,
        )

    def migrate_to_uri(
        self,
        dest_uri: str,
        live: bool = True,
        max_downtime_s: float = 0.3,
        bandwidth_mib_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Peer-to-peer migration: the *source host* dials ``dest_uri``
        and drives the whole handshake itself — one call from the
        client, no client in the data path (libvirt's P2P mode).

        Returns the migration record (name, uuid, transfer stats); look
        the domain up on a destination connection to manage it further.
        """
        params = {
            "live": live,
            "max_downtime_s": max_downtime_s,
            "bandwidth_mib_s": bandwidth_mib_s,
        }
        return self._conn._driver.migrate_p2p(self._name, dest_uri, params)
