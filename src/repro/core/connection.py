"""The ``Connection`` object — the uniform management entry point.

``repro.open_connection(uri)`` parses the URI, picks a driver through
the registry, and returns a :class:`Connection` whose methods are the
same regardless of what sits behind it: an in-process test driver, a
local hypervisor backend, a remote libvirtd daemon, or a proprietary
hypervisor's own remote API.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.domain import Domain
from repro.core.driver import Driver, open_driver
from repro.core.events import EventCallback
from repro.core.network import Network
from repro.core.states import ACTIVE_STATES, DomainState
from repro.core.storage import StoragePool
from repro.core.uri import ConnectionURI
from repro.errors import ConnectionClosedError
from repro.xmlconfig.capabilities import Capabilities
from repro.xmlconfig.domain import DomainConfig
from repro.xmlconfig.network import NetworkConfig
from repro.xmlconfig.storage import StoragePoolConfig


def open_connection(
    uri: "Union[str, ConnectionURI]",
    credentials: "Optional[Dict[str, Any]]" = None,
) -> "Connection":
    """Open a connection (``virConnectOpen``)."""
    parsed = ConnectionURI.parse(uri) if isinstance(uri, str) else uri
    driver = open_driver(parsed, credentials)
    return Connection(driver, parsed)


class Connection:
    """One open connection to a virtualization node."""

    def __init__(self, driver: Driver, uri: ConnectionURI) -> None:
        self._driver = driver
        self._uri = uri
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def uri(self) -> str:
        return self._uri.format()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._driver.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError(f"connection {self.uri} is closed")

    # -- node introspection ---------------------------------------------------

    def hostname(self) -> str:
        self._check_open()
        return self._driver.get_hostname()

    def capabilities(self) -> Capabilities:
        self._check_open()
        return Capabilities.from_xml(self._driver.get_capabilities())

    def node_info(self) -> Dict[str, int]:
        self._check_open()
        return self._driver.get_node_info()

    def version(self) -> Tuple[int, int, int]:
        self._check_open()
        return tuple(self._driver.get_version())  # type: ignore[return-value]

    def features(self) -> List[str]:
        self._check_open()
        return self._driver.features()

    def supports(self, feature: str) -> bool:
        self._check_open()
        return self._driver.supports_feature(feature)

    @property
    def is_stateless(self) -> bool:
        return self._driver.stateless

    # -- domain enumeration ------------------------------------------------------

    def list_domains(self, active: "Optional[bool]" = None) -> List[Domain]:
        """Domains on this connection.

        ``active=True`` → running/paused only, ``False`` → defined but
        inactive only, ``None`` → both.
        """
        self._check_open()
        names: List[str] = []
        if active is None or active:
            names.extend(self._driver.list_domains())
        if active is None or not active:
            names.extend(self._driver.list_defined_domains())
        return [Domain(self, name) for name in sorted(set(names))]

    def num_of_domains(self) -> int:
        self._check_open()
        return self._driver.num_of_domains()

    def lookup_domain(self, name: str) -> Domain:
        self._check_open()
        record = self._driver.domain_lookup_by_name(name)
        return Domain(self, record["name"], record.get("uuid"))

    def lookup_domain_by_uuid(self, uuid: str) -> Domain:
        self._check_open()
        record = self._driver.domain_lookup_by_uuid(uuid)
        return Domain(self, record["name"], record.get("uuid"))

    def lookup_domain_by_id(self, domain_id: int) -> Domain:
        self._check_open()
        record = self._driver.domain_lookup_by_id(domain_id)
        return Domain(self, record["name"], record.get("uuid"))

    # -- domain creation ------------------------------------------------------------

    def define_domain(self, config: "Union[DomainConfig, str]") -> Domain:
        """Persistently define a domain from a config or its XML."""
        self._check_open()
        xml = config.to_xml() if isinstance(config, DomainConfig) else config
        record = self._driver.domain_define_xml(xml)
        return Domain(self, record["name"], record.get("uuid"))

    def create_domain(self, config: "Union[DomainConfig, str]") -> Domain:
        """Create and immediately start a *transient* domain."""
        self._check_open()
        xml = config.to_xml() if isinstance(config, DomainConfig) else config
        record = self._driver.domain_create_xml(xml)
        return Domain(self, record["name"], record.get("uuid"))

    def restore_domain(self, path: str) -> Domain:
        """Bring a domain back from a managed-save file."""
        self._check_open()
        record = self._driver.domain_restore(path)
        return Domain(self, record["name"], record.get("uuid"))

    # -- events -------------------------------------------------------------------------

    def register_domain_event(self, callback: EventCallback) -> int:
        self._check_open()
        return self._driver.domain_event_register(callback)

    def deregister_domain_event(self, callback_id: int) -> None:
        self._check_open()
        self._driver.domain_event_deregister(callback_id)

    def subscribe_events(self, handler, kinds=None) -> int:
        """Subscribe to typed bus records (lifecycle/config/job/...).

        The handler receives each record dict; ``kinds`` optionally
        narrows to a set of record kinds.  Works against any driver
        exposing the event bus (stateful drivers and remote stubs)."""
        self._check_open()
        return self._driver.event_bus_subscribe(handler, kinds=kinds)

    def unsubscribe_events(self, sub_id: int) -> None:
        self._check_open()
        self._driver.event_bus_unsubscribe(sub_id)

    def cache_stats(self) -> "Optional[Dict[str, Any]]":
        """The remote read cache's hit/miss counters; None when the
        driver keeps no client-side cache (local connections)."""
        cache = getattr(self._driver, "cache", None)
        return None if cache is None else cache.stats()

    # -- networks ---------------------------------------------------------------------------

    def list_networks(self) -> List[Network]:
        self._check_open()
        records = self._driver.network_list()
        return [Network(self, r["name"], r.get("uuid")) for r in records]

    def lookup_network(self, name: str) -> Network:
        self._check_open()
        record = self._driver.network_lookup_by_name(name)
        return Network(self, record["name"], record.get("uuid"))

    def define_network(self, config: "Union[NetworkConfig, str]") -> Network:
        self._check_open()
        xml = config.to_xml() if isinstance(config, NetworkConfig) else config
        record = self._driver.network_define_xml(xml)
        return Network(self, record["name"], record.get("uuid"))

    # -- storage -------------------------------------------------------------------------------

    def list_storage_pools(self) -> List[StoragePool]:
        self._check_open()
        records = self._driver.storage_pool_list()
        return [StoragePool(self, r["name"], r.get("uuid")) for r in records]

    def lookup_storage_pool(self, name: str) -> StoragePool:
        self._check_open()
        record = self._driver.storage_pool_lookup_by_name(name)
        return StoragePool(self, record["name"], record.get("uuid"))

    def define_storage_pool(self, config: "Union[StoragePoolConfig, str]") -> StoragePool:
        self._check_open()
        xml = config.to_xml() if isinstance(config, StoragePoolConfig) else config
        record = self._driver.storage_pool_define_xml(xml)
        return StoragePool(self, record["name"], record.get("uuid"))

    # -- convenience -----------------------------------------------------------------------------

    def get_all_domain_stats(self, active: "Optional[bool]" = True) -> List[Dict[str, Any]]:
        """Bulk statistics for every (active) domain — one monitoring sweep."""
        self._check_open()
        return [domain.get_stats() for domain in self.list_domains(active=active)]

    def active_domain_count(self) -> int:
        """Domains currently holding a live instance."""
        return sum(
            1
            for domain in self.list_domains(active=True)
            if domain.state() in ACTIVE_STATES
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "closed" if self._closed else "open"
        return f"Connection({self.uri!r}, {status})"


#: re-exported for callers that branch on state
__all__ = ["Connection", "open_connection", "DomainState"]
