"""The ``Network`` handle — virtual network management surface."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.xmlconfig.network import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection import Connection


class Network:
    """Handle to one virtual network on a connection."""

    def __init__(self, connection: "Connection", name: str, uuid: Optional[str] = None) -> None:
        self._conn = connection
        self._name = name
        self._uuid = uuid

    @property
    def name(self) -> str:
        return self._name

    @property
    def uuid(self) -> Optional[str]:
        if self._uuid is None:
            record = self._conn._driver.network_lookup_by_name(self._name)
            self._uuid = record.get("uuid")
        return self._uuid

    @property
    def is_active(self) -> bool:
        record = self._conn._driver.network_lookup_by_name(self._name)
        return bool(record.get("active", False))

    @property
    def bridge(self) -> str:
        return self.config().bridge

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network({self._name!r} on {self._conn.uri})"

    def start(self) -> "Network":
        """Bring the network up (create the bridge, start DHCP)."""
        self._conn._driver.network_create(self._name)
        return self

    create = start

    def destroy(self) -> "Network":
        """Tear the live network down."""
        self._conn._driver.network_destroy(self._name)
        return self

    def undefine(self) -> None:
        self._conn._driver.network_undefine(self._name)

    def xml_desc(self) -> str:
        return self._conn._driver.network_get_xml_desc(self._name)

    def config(self) -> NetworkConfig:
        return NetworkConfig.from_xml(self.xml_desc())

    def dhcp_leases(self) -> list:
        """Active DHCP leases on this network (mac, ip, hostname, since)."""
        return self._conn._driver.network_dhcp_leases(self._name)
