"""Domain lifecycle event delivery.

Management applications register callbacks on a connection and receive
``(domain_name, event, detail)`` notifications for every lifecycle
transition — the mechanism monitoring tools build on instead of
polling every domain (the non-intrusive monitoring story).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, List, Tuple

from repro.core.states import DomainEvent
from repro.errors import InvalidArgumentError

EventCallback = Callable[[str, DomainEvent, str], None]


class ConnectionResetEvent:
    """A remote connection died and the driver handled it.

    Surfaced by the remote driver's auto-reconnect machinery: one
    instance per disconnect, whether the re-dial succeeded
    (``reconnected=True``, events re-subscribed) or gave up after
    exhausting its backoff budget.
    """

    __slots__ = ("reason", "attempts", "downtime", "reconnected", "timestamp")

    def __init__(
        self,
        reason: str,
        attempts: int,
        downtime: float,
        reconnected: bool,
        timestamp: float,
    ) -> None:
        self.reason = reason
        #: dial attempts made (including the successful one, if any)
        self.attempts = attempts
        #: modelled seconds between failure detection and recovery/giving up
        self.downtime = downtime
        self.reconnected = reconnected
        self.timestamp = timestamp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        outcome = "reconnected" if self.reconnected else "gave up"
        return (
            f"ConnectionResetEvent({outcome} after {self.attempts} attempts, "
            f"downtime={self.downtime:.3f}s: {self.reason})"
        )


class EventBroker:
    """Callback registry with stable registration ids."""

    def __init__(self) -> None:
        self._callbacks: Dict[int, EventCallback] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self.delivered = 0
        #: log of every event ever emitted (bounded), for introspection
        self.history: List[Tuple[str, DomainEvent, str]] = []
        self._history_limit = 1000

    def register(self, callback: EventCallback) -> int:
        """Register a callback; returns the id used for deregistration."""
        if not callable(callback):
            raise InvalidArgumentError("event callback must be callable")
        with self._lock:
            callback_id = next(self._ids)
            self._callbacks[callback_id] = callback
            return callback_id

    def deregister(self, callback_id: int) -> None:
        with self._lock:
            if callback_id not in self._callbacks:
                raise InvalidArgumentError(f"no event callback with id {callback_id}")
            del self._callbacks[callback_id]

    def emit(self, domain: str, event: DomainEvent, detail: str = "") -> int:
        """Deliver an event to every registered callback.

        Returns the number of callbacks invoked.  A callback raising
        must not prevent delivery to the others.
        """
        with self._lock:
            callbacks = list(self._callbacks.values())
            self.history.append((domain, event, detail))
            if len(self.history) > self._history_limit:
                del self.history[: -self._history_limit]
        count = 0
        for callback in callbacks:
            try:
                callback(domain, event, detail)
                count += 1
            except Exception:  # noqa: BLE001 - one bad consumer must not break others
                continue
        with self._lock:
            self.delivered += count
        return count

    @property
    def callback_count(self) -> int:
        with self._lock:
            return len(self._callbacks)
