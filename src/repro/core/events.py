"""Domain lifecycle event delivery.

Management applications register callbacks on a connection and receive
``(domain_name, event, detail)`` notifications for every lifecycle
transition — the mechanism monitoring tools build on instead of
polling every domain (the non-intrusive monitoring story).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.states import DomainEvent
from repro.errors import InvalidArgumentError

EventCallback = Callable[[str, DomainEvent, str], None]

#: a bus subscriber receives the full event record
BusCallback = Callable[[Dict[str, Any]], None]


class ConnectionResetEvent:
    """A remote connection died and the driver handled it.

    Surfaced by the remote driver's auto-reconnect machinery: one
    instance per disconnect, whether the re-dial succeeded
    (``reconnected=True``, events re-subscribed) or gave up after
    exhausting its backoff budget.
    """

    __slots__ = ("reason", "attempts", "downtime", "reconnected", "timestamp")

    def __init__(
        self,
        reason: str,
        attempts: int,
        downtime: float,
        reconnected: bool,
        timestamp: float,
    ) -> None:
        self.reason = reason
        #: dial attempts made (including the successful one, if any)
        self.attempts = attempts
        #: modelled seconds between failure detection and recovery/giving up
        self.downtime = downtime
        self.reconnected = reconnected
        self.timestamp = timestamp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        outcome = "reconnected" if self.reconnected else "gave up"
        return (
            f"ConnectionResetEvent({outcome} after {self.attempts} attempts, "
            f"downtime={self.downtime:.3f}s: {self.reason})"
        )


class EventBroker:
    """Callback registry with stable registration ids.

    ``logger`` and ``metrics`` are zero-arg suppliers (late-attach: the
    daemon wires observability after the driver — and its broker — are
    built).  Either may return ``None``; the broker then stays silent
    about callback failures beyond its own ``callback_errors`` counter.
    """

    def __init__(
        self,
        logger: "Optional[Callable[[], Any]]" = None,
        metrics: "Optional[Callable[[], Any]]" = None,
    ) -> None:
        self._callbacks: Dict[int, EventCallback] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._logger = logger or (lambda: None)
        self._metrics = metrics or (lambda: None)
        self.delivered = 0
        #: callbacks that raised during delivery (the broken-subscriber count)
        self.callback_errors = 0
        #: log of every event ever emitted (bounded), for introspection
        self.history: List[Tuple[str, DomainEvent, str]] = []
        self._history_limit = 1000

    def attach_observability(
        self,
        logger: "Optional[Callable[[], Any]]" = None,
        metrics: "Optional[Callable[[], Any]]" = None,
    ) -> None:
        """Late-bind the logger/metrics suppliers (daemon start-up order)."""
        if logger is not None:
            self._logger = logger
        if metrics is not None:
            self._metrics = metrics

    def _count_callback_error(self, callback_id: Any, exc: Exception) -> None:
        """A subscriber raised: make it visible instead of swallowing it."""
        with self._lock:
            self.callback_errors += 1
        log = self._logger()
        if log is not None:
            log.error(
                "events",
                f"event callback {callback_id} raised "
                f"{type(exc).__name__}: {exc}",
            )
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter(
                "event_callback_errors_total",
                "Event callbacks that raised during delivery",
            ).inc()

    def register(self, callback: EventCallback) -> int:
        """Register a callback; returns the id used for deregistration."""
        if not callable(callback):
            raise InvalidArgumentError("event callback must be callable")
        with self._lock:
            callback_id = next(self._ids)
            self._callbacks[callback_id] = callback
            return callback_id

    def deregister(self, callback_id: int) -> None:
        with self._lock:
            if callback_id not in self._callbacks:
                raise InvalidArgumentError(f"no event callback with id {callback_id}")
            del self._callbacks[callback_id]

    def emit(self, domain: str, event: DomainEvent, detail: str = "") -> int:
        """Deliver an event to every registered callback.

        Returns the number of callbacks invoked.  A callback raising
        must not prevent delivery to the others.
        """
        with self._lock:
            callbacks = list(self._callbacks.items())
            self.history.append((domain, event, detail))
            if len(self.history) > self._history_limit:
                del self.history[: -self._history_limit]
        count = 0
        for callback_id, callback in callbacks:
            try:
                callback(domain, event, detail)
                count += 1
            except Exception as exc:  # noqa: BLE001 - one bad consumer must not break others
                self._count_callback_error(callback_id, exc)
        with self._lock:
            self.delivered += count
        return count

    @property
    def callback_count(self) -> int:
        with self._lock:
            return len(self._callbacks)


class _BusSubscription:
    """One bus subscriber: a handler plus its bounded pending queue."""

    __slots__ = ("id", "handler", "kinds", "queue", "max_queue", "delivered", "dropped", "paused")

    def __init__(
        self,
        sub_id: int,
        handler: BusCallback,
        kinds: "Optional[frozenset]",
        max_queue: int,
    ) -> None:
        self.id = sub_id
        self.handler = handler
        #: event kinds this subscriber wants; None means everything
        self.kinds = kinds
        self.queue: "Deque[Dict[str, Any]]" = deque()
        self.max_queue = max_queue
        self.delivered = 0
        self.dropped = 0
        #: a paused subscriber models a slow consumer: records queue up
        #: (bounded, drop-oldest) until ``resume`` drains them
        self.paused = False

    def wants(self, kind: str) -> bool:
        return self.kinds is None or kind in self.kinds


class EventBus(EventBroker):
    """The daemon-wide event fabric behind the push-based control plane.

    Extends :class:`EventBroker` (which keeps the legacy per-connection
    lifecycle callbacks working untouched) with typed, sequenced event
    *records* fanned out to bus subscribers:

    - every record carries a global monotonically increasing ``seq``
      plus ``kind`` (lifecycle/config/device/snapshot/checkpoint/job/
      migration/network/storage), so consumers can dedupe and order;
    - each subscriber owns a bounded pending queue — a slow consumer
      (``pause``/``resume``) accumulates records up to ``max_queue`` and
      then drops the oldest, with per-subscriber drop accounting;
    - ``emit`` (the legacy lifecycle entry point) also publishes a
      ``kind="lifecycle"`` record, so bus subscribers see everything the
      old broker callbacks see.
    """

    DEFAULT_MAX_QUEUE = 256

    def __init__(
        self,
        logger: "Optional[Callable[[], Any]]" = None,
        metrics: "Optional[Callable[[], Any]]" = None,
        tracer: "Optional[Callable[[], Any]]" = None,
    ) -> None:
        super().__init__(logger=logger, metrics=metrics)
        self._tracer = tracer or (lambda: None)
        self._subs: Dict[int, _BusSubscription] = {}
        self._sub_ids = itertools.count(1)
        self._seq = itertools.count(1)
        self.published = 0
        self.bus_delivered = 0
        self.dropped = 0
        #: bounded log of published records, for introspection and tests
        self.record_history: List[Dict[str, Any]] = []
        #: synchronous observer fed every published record.  Unlike a
        #: subscription it has no queue, can't pause, never drops, and
        #: does not count in ``subscription_count`` — the slot the
        #: daemon's flight recorder rides without perturbing the
        #: per-client subscription bookkeeping it is meant to observe
        self.tap: "Optional[Callable[[Dict[str, Any]], None]]" = None

    def attach_observability(
        self,
        logger: "Optional[Callable[[], Any]]" = None,
        metrics: "Optional[Callable[[], Any]]" = None,
        tracer: "Optional[Callable[[], Any]]" = None,
    ) -> None:
        super().attach_observability(logger=logger, metrics=metrics)
        if tracer is not None:
            self._tracer = tracer

    # -- subscription management ------------------------------------------

    def subscribe(
        self,
        handler: BusCallback,
        kinds: "Optional[Any]" = None,
        max_queue: "Optional[int]" = None,
    ) -> int:
        """Register a bus subscriber; returns its subscription id."""
        if not callable(handler):
            raise InvalidArgumentError("bus handler must be callable")
        if max_queue is None:
            max_queue = self.DEFAULT_MAX_QUEUE
        if max_queue < 1:
            raise InvalidArgumentError("max_queue must be >= 1")
        kindset = None if kinds is None else frozenset(kinds)
        with self._lock:
            sub_id = next(self._sub_ids)
            self._subs[sub_id] = _BusSubscription(sub_id, handler, kindset, max_queue)
            return sub_id

    def unsubscribe(self, sub_id: int) -> None:
        with self._lock:
            if sub_id not in self._subs:
                raise InvalidArgumentError(f"no bus subscription with id {sub_id}")
            del self._subs[sub_id]

    def pause(self, sub_id: int) -> None:
        """Mark a subscriber slow: records queue instead of delivering."""
        self._sub(sub_id).paused = True

    def resume(self, sub_id: int) -> int:
        """Un-pause a subscriber and drain its pending queue."""
        sub = self._sub(sub_id)
        sub.paused = False
        return self._drain(sub)

    def _sub(self, sub_id: int) -> _BusSubscription:
        with self._lock:
            sub = self._subs.get(sub_id)
        if sub is None:
            raise InvalidArgumentError(f"no bus subscription with id {sub_id}")
        return sub

    @property
    def subscription_count(self) -> int:
        with self._lock:
            return len(self._subs)

    def subscription_stats(self) -> "List[Dict[str, Any]]":
        """Per-subscriber delivery/drop accounting (admin surface)."""
        with self._lock:
            subs = list(self._subs.values())
        return [
            {
                "id": sub.id,
                "delivered": sub.delivered,
                "dropped": sub.dropped,
                "queued": len(sub.queue),
                "max_queue": sub.max_queue,
                "paused": sub.paused,
                "kinds": sorted(sub.kinds) if sub.kinds is not None else None,
            }
            for sub in subs
        ]

    # -- publishing --------------------------------------------------------

    def publish(
        self,
        kind: str,
        domain: str = "",
        event: str = "",
        detail: str = "",
        **extra: Any,
    ) -> Dict[str, Any]:
        """Publish one typed record to every matching subscriber."""
        with self._lock:
            record: Dict[str, Any] = {
                "seq": next(self._seq),
                "kind": kind,
                "domain": domain,
                "event": event,
                "detail": detail,
            }
            record.update(extra)
            self.published += 1
            self.record_history.append(record)
            if len(self.record_history) > self._history_limit:
                del self.record_history[: -self._history_limit]
            subs = [s for s in self._subs.values() if s.wants(kind)]
        if self.tap is not None:
            self.tap(dict(record))
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter(
                "events_published_total",
                "Event records published on the daemon bus",
                ("kind",),
            ).labels(kind=kind).inc()
        tracer = self._tracer() if subs else None
        if tracer is not None:
            # no span without subscribers: an unobserved publish should
            # not add noise to every mutating procedure's trace
            with tracer.span(
                "event.deliver", kind=kind, domain=domain, subscribers=len(subs)
            ):
                self._fan_out(record, subs)
        else:
            self._fan_out(record, subs)
        return dict(record)

    def _fan_out(self, record: Dict[str, Any], subs: "List[_BusSubscription]") -> None:
        for sub in subs:
            sub.queue.append(record)
            if len(sub.queue) > sub.max_queue:
                # slow consumer: shed the oldest pending record
                sub.queue.popleft()
                sub.dropped += 1
                with self._lock:
                    self.dropped += 1
                metrics = self._metrics()
                if metrics is not None:
                    metrics.counter(
                        "events_dropped_total",
                        "Event records dropped on slow-subscriber overflow",
                    ).inc()
            if not sub.paused:
                self._drain(sub)

    def _drain(self, sub: _BusSubscription) -> int:
        """Deliver a subscriber's queued records in order."""
        count = 0
        while sub.queue:
            record = sub.queue.popleft()
            try:
                sub.handler(dict(record))
            except Exception as exc:  # noqa: BLE001 - one bad consumer must not break others
                self._count_callback_error(f"bus:{sub.id}", exc)
                continue
            sub.delivered += 1
            count += 1
        if count:
            with self._lock:
                self.bus_delivered += count
            metrics = self._metrics()
            if metrics is not None:
                metrics.counter(
                    "events_delivered_total",
                    "Event records delivered to bus subscribers",
                ).inc(count)
        return count

    def drain_all(self) -> int:
        """Flush every subscriber's pending queue (graceful shutdown)."""
        with self._lock:
            subs = list(self._subs.values())
        return sum(self._drain(sub) for sub in subs)

    # -- the legacy lifecycle entry point ---------------------------------

    def emit(self, domain: str, event: DomainEvent, detail: str = "") -> int:
        """Lifecycle emit: broker callbacks first, then a bus record."""
        count = super().emit(domain, event, detail)
        self.publish(
            "lifecycle", domain=domain, event=event.name.lower(), detail=detail
        )
        return count
