"""Invalidation-driven client-side cache for remote connections.

With EVENT push armed, a remote client no longer needs to re-ask the
daemon questions whose answers it already heard: domain lists, states,
and XML descriptions are served from this cache until an event record
says otherwise.  The coherence rules are deliberately simple:

* **invalidate-on-event** — every pushed record drops the entries it
  could have changed (lifecycle/config/device records drop that
  domain's entries; define/undefine/start/stop also drop the lists);
* **flush-on-reconnect** — a severed link may have lost events, so the
  whole cache is discarded when the transport is re-dialled;
* **bypass** — callers that need daemon truth pass ``cached=False``
  and go straight to the wire.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class InvalidationCache:
    """A keyed read cache whose entries die by invalidation, not TTL.

    Keys are ``(scope, name)`` tuples: ``("list", "active")`` for the
    connection-level lists, ``("state", domain)`` / ``("xml", domain)``
    for per-domain answers.  The cache never expires entries on its own
    — correctness comes entirely from the event stream driving
    :meth:`invalidate_domain` / :meth:`invalidate_lists` / :meth:`flush`.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._entries: Dict[Tuple[str, str], Any] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.flushes = 0
        #: reason -> count, for introspection ("reconnect", "event", ...)
        self.flush_reasons: Dict[str, int] = {}

    # -- read/write --------------------------------------------------------

    def get(self, scope: str, name: str = "") -> Tuple[bool, Any]:
        """``(hit, value)`` — a miss returns ``(False, None)``."""
        if not self.enabled:
            return False, None
        key = (scope, name)
        if key in self._entries:
            self.hits += 1
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def put(self, scope: str, name: str, value: Any) -> None:
        if self.enabled:
            self._entries[(scope, name)] = value

    # -- coherence ---------------------------------------------------------

    def invalidate_domain(self, domain: str) -> int:
        """Drop every per-domain entry for ``domain``."""
        dead = [k for k in self._entries if k[1] == domain and k[0] != "list"]
        for key in dead:
            del self._entries[key]
        self.invalidations += len(dead)
        return len(dead)

    def invalidate_lists(self) -> int:
        """Drop the connection-level list entries (membership changed)."""
        dead = [k for k in self._entries if k[0] == "list"]
        for key in dead:
            del self._entries[key]
        self.invalidations += len(dead)
        return len(dead)

    def flush(self, reason: str = "") -> int:
        """Drop everything (reconnect, explicit request)."""
        count = len(self._entries)
        self._entries.clear()
        self.flushes += 1
        if reason:
            self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        return count

    def on_event(self, record: Dict[str, Any]) -> None:
        """Apply one pushed event record's invalidation consequences."""
        kind = record.get("kind", "")
        domain = record.get("domain", "")
        if domain:
            self.invalidate_domain(domain)
        if kind == "lifecycle":
            # membership or id columns may have changed
            self.invalidate_lists()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> "List[Tuple[str, str]]":
        return sorted(self._entries)

    def stats(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "flushes": self.flushes,
            "flush_reasons": dict(self.flush_reasons),
        }
