"""The abstract driver interface and the driver registry.

This is the heart of libvirt's architecture: one internal interface
that every hypervisor driver implements, with a registry that maps a
connection URI to the driver able to serve it.  Drivers come in two
flavours (the paper's stateless/stateful split):

* *stateless* drivers run entirely client-side and talk to a
  hypervisor that manages its own state (ESX, the test driver);
* *stateful* drivers keep domain configurations themselves and
  normally live inside the libvirtd daemon (qemu/kvm, xen, lxc);
  clients reach them through the *remote* driver.

Any method a driver does not implement raises
:class:`~repro.errors.UnsupportedError` — that graceful degradation is
what the capability matrix (experiment E1) queries.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.events import EventCallback
from repro.core.uri import ConnectionURI
from repro.errors import InvalidURIError, UnsupportedError

#: optional capabilities a driver can advertise (drives experiment E1)
FEATURES = (
    "lifecycle",  # define/start/stop/destroy
    "pause_resume",
    "reboot",
    "save_restore",
    "managed_save",
    "set_memory",
    "set_vcpus",
    "snapshots",
    "checkpoints",
    "backup",
    "bulk_streams",  # stream-backed vol upload/download + console
    "migration",
    "networks",
    "storage",
    "events",
    "device_hotplug",
    "remote",  # reachable through the remote protocol
    "autostart",
)

#: which driver methods each optional capability promises.  A driver
#: that advertises a feature must implement every method in its group;
#: a driver that implements a method outside its advertised features
#: must list it in ``unsupported_ops`` (it exists but refuses at
#: runtime).  ``tools/lint_driver_surface.py`` enforces both rules.
FEATURE_METHODS: Dict[str, Tuple[str, ...]] = {
    "lifecycle": (
        "domain_define_xml",
        "domain_undefine",
        "domain_create",
        "domain_create_xml",
        "domain_shutdown",
        "domain_destroy",
    ),
    "pause_resume": ("domain_suspend", "domain_resume"),
    "reboot": ("domain_reboot",),
    "save_restore": ("domain_save", "domain_restore"),
    "managed_save": (
        "domain_managed_save",
        "domain_managed_save_remove",
        "domain_has_managed_save",
    ),
    "set_memory": ("domain_set_memory",),
    "set_vcpus": ("domain_set_vcpus",),
    "snapshots": (
        "snapshot_create",
        "snapshot_list",
        "snapshot_revert",
        "snapshot_delete",
    ),
    "checkpoints": (
        "checkpoint_create",
        "checkpoint_list",
        "checkpoint_delete",
        "checkpoint_get_xml_desc",
    ),
    "backup": ("backup_begin", "backup_begin_pull", "domain_abort_job"),
    "bulk_streams": (
        "storage_vol_upload",
        "storage_vol_download",
        "domain_open_console",
    ),
    "migration": (
        "migrate_begin",
        "migrate_prepare",
        "migrate_perform",
        "migrate_finish",
        "migrate_confirm",
        "migrate_p2p",
    ),
    "networks": (
        "network_define_xml",
        "network_undefine",
        "network_create",
        "network_destroy",
        "network_list",
        "network_lookup_by_name",
        "network_get_xml_desc",
        "network_dhcp_leases",
    ),
    "storage": (
        "storage_pool_define_xml",
        "storage_pool_undefine",
        "storage_pool_create",
        "storage_pool_destroy",
        "storage_pool_list",
        "storage_pool_lookup_by_name",
        "storage_pool_get_info",
        "storage_pool_get_xml_desc",
        "storage_vol_create_xml",
        "storage_vol_delete",
        "storage_vol_list",
        "storage_vol_get_info",
    ),
    "events": ("domain_event_register", "domain_event_deregister"),
    "device_hotplug": ("domain_attach_device", "domain_detach_device"),
    "autostart": ("domain_get_autostart", "domain_set_autostart"),
    "remote": (),
}


class Driver:
    """Internal driver interface (``virDriver``).

    Every public ``Connection``/``Domain`` method maps 1:1 onto one of
    these.  The base class implements nothing: each method raises
    :class:`UnsupportedError` so capability probing is uniform.
    """

    #: URI scheme(s) this driver answers to
    name = "abstract"
    #: True when the driver runs client-side against a self-managing hypervisor
    stateless = False
    #: methods this driver deliberately leaves unimplemented (or
    #: implements only to raise) even though related features exist —
    #: the honest-capability declaration ``lint_driver_surface`` checks
    unsupported_ops: FrozenSet[str] = frozenset()

    def _unsupported(self, what: str) -> "UnsupportedError":
        return UnsupportedError(f"driver {self.name!r} does not support {what}")

    # -- connection ------------------------------------------------------

    def close(self) -> None:
        raise self._unsupported("close")

    def get_hostname(self) -> str:
        raise self._unsupported("get_hostname")

    def get_capabilities(self) -> str:
        raise self._unsupported("get_capabilities")

    def get_node_info(self) -> Dict[str, int]:
        raise self._unsupported("get_node_info")

    def get_version(self) -> Tuple[int, int, int]:
        raise self._unsupported("get_version")

    def features(self) -> List[str]:
        """The optional capabilities this driver implements."""
        return []

    def supports_feature(self, feature: str) -> bool:
        return feature in self.features()

    # -- domain enumeration ----------------------------------------------

    def list_domains(self) -> List[str]:
        """Names of active domains."""
        raise self._unsupported("list_domains")

    def list_defined_domains(self) -> List[str]:
        """Names of defined-but-inactive domains."""
        raise self._unsupported("list_defined_domains")

    def num_of_domains(self) -> int:
        raise self._unsupported("num_of_domains")

    # -- domain lookup/lifecycle -------------------------------------------

    def domain_lookup_by_name(self, name: str) -> Dict[str, Any]:
        raise self._unsupported("domain_lookup_by_name")

    def domain_lookup_by_uuid(self, uuid: str) -> Dict[str, Any]:
        raise self._unsupported("domain_lookup_by_uuid")

    def domain_lookup_by_id(self, domain_id: int) -> Dict[str, Any]:
        raise self._unsupported("domain_lookup_by_id")

    def domain_define_xml(self, xml: str) -> Dict[str, Any]:
        raise self._unsupported("domain_define_xml")

    def domain_undefine(self, name: str) -> None:
        raise self._unsupported("domain_undefine")

    def domain_create(self, name: str) -> None:
        """Start a defined domain."""
        raise self._unsupported("domain_create")

    def domain_create_xml(self, xml: str) -> Dict[str, Any]:
        """Create and start a transient domain."""
        raise self._unsupported("domain_create_xml")

    def domain_shutdown(self, name: str) -> None:
        raise self._unsupported("domain_shutdown")

    def domain_destroy(self, name: str) -> None:
        raise self._unsupported("domain_destroy")

    def domain_suspend(self, name: str) -> None:
        raise self._unsupported("domain_suspend")

    def domain_resume(self, name: str) -> None:
        raise self._unsupported("domain_resume")

    def domain_reboot(self, name: str) -> None:
        raise self._unsupported("domain_reboot")

    # -- domain introspection -----------------------------------------------

    def domain_get_info(self, name: str) -> Dict[str, Any]:
        raise self._unsupported("domain_get_info")

    def domain_get_state(self, name: str) -> int:
        raise self._unsupported("domain_get_state")

    def domain_get_xml_desc(self, name: str) -> str:
        raise self._unsupported("domain_get_xml_desc")

    def domain_get_stats(self, name: str) -> Dict[str, Any]:
        """Extended statistics: cpu, balloon, and cumulative I/O counters."""
        raise self._unsupported("domain_get_stats")

    def domain_get_scheduler_params(self, name: str) -> List[Any]:
        """CPU scheduler tunables as a typed-parameter list."""
        raise self._unsupported("domain_get_scheduler_params")

    def domain_set_scheduler_params(self, name: str, params: List[Any]) -> None:
        raise self._unsupported("domain_set_scheduler_params")

    def domain_get_job_info(self, name: str) -> Dict[str, Any]:
        """The current or most recently completed long-running job."""
        raise self._unsupported("domain_get_job_info")

    # -- domain tuning --------------------------------------------------------

    def domain_set_memory(self, name: str, memory_kib: int) -> None:
        raise self._unsupported("domain_set_memory")

    def domain_set_vcpus(self, name: str, vcpus: int) -> None:
        raise self._unsupported("domain_set_vcpus")

    def domain_save(self, name: str, path: str) -> None:
        raise self._unsupported("domain_save")

    def domain_restore(self, path: str) -> Dict[str, Any]:
        raise self._unsupported("domain_restore")

    def domain_managed_save(self, name: str) -> None:
        """Save to a driver-managed path; the next start auto-restores."""
        raise self._unsupported("domain_managed_save")

    def domain_managed_save_remove(self, name: str) -> None:
        raise self._unsupported("domain_managed_save_remove")

    def domain_has_managed_save(self, name: str) -> bool:
        raise self._unsupported("domain_has_managed_save")

    def domain_get_autostart(self, name: str) -> bool:
        raise self._unsupported("domain_get_autostart")

    def domain_set_autostart(self, name: str, autostart: bool) -> None:
        raise self._unsupported("domain_set_autostart")

    def domain_attach_device(self, name: str, device_xml: str) -> None:
        raise self._unsupported("domain_attach_device")

    def domain_detach_device(self, name: str, device_xml: str) -> None:
        raise self._unsupported("domain_detach_device")

    # -- snapshots --------------------------------------------------------------

    def snapshot_create(self, name: str, snapshot_name: str) -> Dict[str, Any]:
        raise self._unsupported("snapshot_create")

    def snapshot_list(self, name: str) -> List[str]:
        raise self._unsupported("snapshot_list")

    def snapshot_revert(self, name: str, snapshot_name: str) -> None:
        raise self._unsupported("snapshot_revert")

    def snapshot_delete(self, name: str, snapshot_name: str) -> None:
        raise self._unsupported("snapshot_delete")

    # -- checkpoints & backup ------------------------------------------------------

    def checkpoint_create(self, name: str, checkpoint_name: str) -> Dict[str, Any]:
        """Freeze the domain's dirty-block bitmaps into a new checkpoint."""
        raise self._unsupported("checkpoint_create")

    def checkpoint_list(self, name: str) -> List[str]:
        raise self._unsupported("checkpoint_list")

    def checkpoint_delete(self, name: str, checkpoint_name: str) -> None:
        raise self._unsupported("checkpoint_delete")

    def checkpoint_get_xml_desc(self, name: str, checkpoint_name: str) -> str:
        raise self._unsupported("checkpoint_get_xml_desc")

    def backup_begin(self, name: str, options: Dict[str, Any]) -> Dict[str, Any]:
        """Start a full or incremental backup as a background job."""
        raise self._unsupported("backup_begin")

    def backup_begin_pull(self, name: str, options: Dict[str, Any]) -> Dict[str, Any]:
        """Pull-mode backup: return the dirty-block manifest and the
        block contents so the *client* drives extraction (NBD-style),
        instead of the daemon writing a target file."""
        raise self._unsupported("backup_begin_pull")

    def domain_abort_job(self, name: str) -> Dict[str, Any]:
        """Cancel the domain's active background job."""
        raise self._unsupported("domain_abort_job")

    def domain_open_console(self, name: str) -> Any:
        """Attach to the domain's serial console; returns an object
        with ``send``/``recv``/``close``."""
        raise self._unsupported("domain_open_console")

    # -- migration ----------------------------------------------------------------

    def migrate_begin(self, name: str) -> Dict[str, Any]:
        """Source side: validate and describe the guest for migration."""
        raise self._unsupported("migrate_begin")

    def migrate_prepare(self, description: Dict[str, Any]) -> Dict[str, Any]:
        """Destination side: reserve resources, return a cookie."""
        raise self._unsupported("migrate_prepare")

    def migrate_perform(self, name: str, cookie: Dict[str, Any], params: Dict[str, Any]) -> Dict[str, Any]:
        """Source side: run the memory copy, return transfer stats."""
        raise self._unsupported("migrate_perform")

    def migrate_finish(self, cookie: Dict[str, Any], stats: Dict[str, Any]) -> Dict[str, Any]:
        """Destination side: activate the incoming guest."""
        raise self._unsupported("migrate_finish")

    def migrate_confirm(self, name: str, cancelled: bool) -> None:
        """Source side: kill (or keep, on failure) the original guest."""
        raise self._unsupported("migrate_confirm")

    def migrate_p2p(self, name: str, dest_uri: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Peer-to-peer mode: the source host drives the whole handshake
        itself, dialling ``dest_uri`` directly — the client stays out of
        the data path entirely."""
        raise self._unsupported("migrate_p2p")

    # -- events ---------------------------------------------------------------------

    def domain_event_register(self, callback: EventCallback) -> int:
        raise self._unsupported("domain_event_register")

    def domain_event_deregister(self, callback_id: int) -> None:
        raise self._unsupported("domain_event_deregister")

    def event_bus_subscribe(self, handler, kinds=None, max_queue=None) -> int:
        raise self._unsupported("event_bus_subscribe")

    def event_bus_unsubscribe(self, sub_id: int) -> None:
        raise self._unsupported("event_bus_unsubscribe")

    # -- networks ---------------------------------------------------------------------

    def network_define_xml(self, xml: str) -> Dict[str, Any]:
        raise self._unsupported("network_define_xml")

    def network_undefine(self, name: str) -> None:
        raise self._unsupported("network_undefine")

    def network_create(self, name: str) -> None:
        raise self._unsupported("network_create")

    def network_destroy(self, name: str) -> None:
        raise self._unsupported("network_destroy")

    def network_list(self) -> List[Dict[str, Any]]:
        raise self._unsupported("network_list")

    def network_lookup_by_name(self, name: str) -> Dict[str, Any]:
        raise self._unsupported("network_lookup_by_name")

    def network_get_xml_desc(self, name: str) -> str:
        raise self._unsupported("network_get_xml_desc")

    def network_dhcp_leases(self, name: str) -> List[Dict[str, Any]]:
        """Active DHCP leases handed out on a network."""
        raise self._unsupported("network_dhcp_leases")

    # -- storage ------------------------------------------------------------------------

    def storage_pool_define_xml(self, xml: str) -> Dict[str, Any]:
        raise self._unsupported("storage_pool_define_xml")

    def storage_pool_undefine(self, name: str) -> None:
        raise self._unsupported("storage_pool_undefine")

    def storage_pool_create(self, name: str) -> None:
        raise self._unsupported("storage_pool_create")

    def storage_pool_destroy(self, name: str) -> None:
        raise self._unsupported("storage_pool_destroy")

    def storage_pool_list(self) -> List[Dict[str, Any]]:
        raise self._unsupported("storage_pool_list")

    def storage_pool_lookup_by_name(self, name: str) -> Dict[str, Any]:
        raise self._unsupported("storage_pool_lookup_by_name")

    def storage_pool_get_info(self, name: str) -> Dict[str, Any]:
        raise self._unsupported("storage_pool_get_info")

    def storage_pool_get_xml_desc(self, name: str) -> str:
        raise self._unsupported("storage_pool_get_xml_desc")

    def storage_vol_create_xml(self, pool: str, xml: str) -> Dict[str, Any]:
        raise self._unsupported("storage_vol_create_xml")

    def storage_vol_delete(self, pool: str, volume: str) -> None:
        raise self._unsupported("storage_vol_delete")

    def storage_vol_list(self, pool: str) -> List[str]:
        raise self._unsupported("storage_vol_list")

    def storage_vol_get_info(self, pool: str, volume: str) -> Dict[str, Any]:
        raise self._unsupported("storage_vol_get_info")

    def storage_vol_upload(
        self,
        pool: str,
        volume: str,
        data: "bytes | bytearray | memoryview",
        offset: int = 0,
    ) -> Dict[str, Any]:
        """Write ``data`` into a volume at ``offset``; returns the
        refreshed volume info."""
        raise self._unsupported("storage_vol_upload")

    def storage_vol_download(
        self, pool: str, volume: str, offset: int = 0, length: "Optional[int]" = None
    ) -> bytes:
        """Read ``length`` bytes (default: to end of capacity) from a
        volume starting at ``offset``."""
        raise self._unsupported("storage_vol_download")


# -- driver registry ---------------------------------------------------------

DriverFactory = Callable[[ConnectionURI, Optional[Dict[str, Any]]], Driver]

_FACTORIES: Dict[str, "Tuple[DriverFactory, bool]"] = {}
_REMOTE_FACTORY: "Optional[DriverFactory]" = None
_REGISTRY_LOCK = threading.Lock()


def register_driver(scheme: str, factory: DriverFactory, handles_remote: bool = False) -> None:
    """Register a driver factory for a URI scheme (``qemu``, ``esx``, …).

    ``handles_remote=True`` marks a client-side driver that reaches
    remote hosts itself (the stateless case, e.g. ESX): a hostname in
    the URI does not push the connection through the remote driver.
    """
    with _REGISTRY_LOCK:
        _FACTORIES[scheme] = (factory, handles_remote)


def register_remote_driver(factory: DriverFactory) -> None:
    """Register the fallback driver that tunnels unrecognized URIs."""
    global _REMOTE_FACTORY
    with _REGISTRY_LOCK:
        _REMOTE_FACTORY = factory


def registered_schemes() -> List[str]:
    with _REGISTRY_LOCK:
        return sorted(_FACTORIES)


def open_driver(uri: "ConnectionURI | str", credentials: "Optional[Dict[str, Any]]" = None) -> Driver:
    """URI → driver: the probing logic the paper describes.

    A URI with an explicit transport always goes through the remote
    driver.  Otherwise the scheme is offered to the registered local/
    stateless drivers; if none claims it, the remote driver is the
    fallback (and if there is none, the URI is invalid).
    """
    if isinstance(uri, str):
        uri = ConnectionURI.parse(uri)
    with _REGISTRY_LOCK:
        entry = _FACTORIES.get(uri.driver)
        remote_factory = _REMOTE_FACTORY
    local_factory, handles_remote = entry if entry is not None else (None, False)
    needs_remote = uri.transport is not None or (
        bool(uri.hostname) and not handles_remote
    )
    if needs_remote:
        if remote_factory is None:
            raise InvalidURIError(
                f"URI {uri.format()!r} requires the remote driver, none registered"
            )
        return remote_factory(uri, credentials)
    if local_factory is not None:
        return local_factory(uri, credentials)
    if remote_factory is not None:
        return remote_factory(uri, credentials)
    raise InvalidURIError(f"no driver recognizes URI scheme {uri.driver!r}")
