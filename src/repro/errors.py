"""Error model for pyvirt.

Mirrors libvirt's ``virError`` facility: every failure raised by the
library carries a stable numeric :class:`ErrorCode`, the subsystem
(:class:`ErrorDomain`) it originated in, a severity level, and a
human-readable message.  Callers that need to branch on failure kind
should match on ``exc.code`` rather than on message text.
"""

from __future__ import annotations

import enum


class ErrorLevel(enum.IntEnum):
    """Severity of a reported error (``virErrorLevel``)."""

    NONE = 0
    WARNING = 1
    ERROR = 2


class ErrorDomain(enum.IntEnum):
    """Subsystem an error originated from (``virErrorDomain`` subset)."""

    NONE = 0
    XML = 1
    CONF = 2
    DOM = 3
    NET = 4
    STORAGE = 5
    NODE = 6
    RPC = 7
    QEMU = 8
    XEN = 9
    LXC = 10
    ESX = 11
    REMOTE = 12
    EVENT = 13
    ADMIN = 14
    MIGRATION = 15
    SECURITY = 16
    SNAPSHOT = 17
    THREAD = 18
    LOGGING = 19
    CLI = 20
    TEST = 21
    URI = 22
    CHECKPOINT = 23


class ErrorCode(enum.IntEnum):
    """Stable numeric error codes (``virErrorNumber`` subset)."""

    OK = 0
    INTERNAL_ERROR = 1
    NO_MEMORY = 2
    NO_SUPPORT = 3
    UNKNOWN_HOST = 4
    NO_CONNECT = 5
    INVALID_CONN = 6
    INVALID_DOMAIN = 7
    INVALID_ARG = 8
    OPERATION_FAILED = 9
    NO_DOMAIN = 10
    DOM_EXIST = 11
    OPERATION_DENIED = 12
    OPERATION_INVALID = 13
    XML_ERROR = 14
    XML_DETAIL = 15
    NO_NETWORK = 16
    NETWORK_EXIST = 17
    SYSTEM_ERROR = 18
    RPC_ERROR = 19
    AUTH_FAILED = 20
    INVALID_STORAGE_POOL = 21
    INVALID_STORAGE_VOL = 22
    NO_STORAGE_POOL = 23
    NO_STORAGE_VOL = 24
    STORAGE_POOL_EXIST = 25
    STORAGE_VOL_EXIST = 26
    INVALID_NETWORK = 27
    OPERATION_TIMEOUT = 28
    MIGRATE_PERSIST_FAILED = 29
    CONFIG_UNSUPPORTED = 30
    OPERATION_ABORTED = 31
    NO_DOMAIN_SNAPSHOT = 32
    SNAPSHOT_EXIST = 33
    INVALID_SNAPSHOT = 34
    RESOURCE_BUSY = 35
    ACCESS_DENIED = 36
    MIGRATE_UNSAFE = 37
    OVERFLOW = 38
    NO_SERVER = 39
    NO_CLIENT = 40
    AGENT_UNRESPONSIVE = 41
    LIBSSH = 42
    DEVICE_MISSING = 43
    INVALID_URI = 44
    CONNECTION_CLOSED = 45
    INSUFFICIENT_RESOURCES = 46
    MIGRATE_INCOMPATIBLE = 47
    GUEST_CRASHED = 48
    NO_DOMAIN_CHECKPOINT = 49
    CHECKPOINT_EXIST = 50
    DAEMON_CRASHED = 51


class VirtError(Exception):
    """Base exception for all pyvirt failures.

    Parameters
    ----------
    code:
        Stable :class:`ErrorCode` identifying the failure kind.
    message:
        Human readable description.
    domain:
        Subsystem the error originated from.
    level:
        Severity; defaults to :attr:`ErrorLevel.ERROR`.
    """

    default_code = ErrorCode.INTERNAL_ERROR
    default_domain = ErrorDomain.NONE

    def __init__(
        self,
        message: str,
        code: "ErrorCode | None" = None,
        domain: "ErrorDomain | None" = None,
        level: ErrorLevel = ErrorLevel.ERROR,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.code = self.default_code if code is None else ErrorCode(code)
        self.domain = self.default_domain if domain is None else ErrorDomain(domain)
        self.level = ErrorLevel(level)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(code={self.code.name}, "
            f"domain={self.domain.name}, message={self.message!r})"
        )

    def to_dict(self) -> dict:
        """Serialize to a plain dict (used by the RPC error reply path)."""
        return {
            "code": int(self.code),
            "domain": int(self.domain),
            "level": int(self.level),
            "message": self.message,
        }

    @staticmethod
    def from_dict(data: dict) -> "VirtError":
        """Rebuild the most specific known exception type from a dict."""
        code = ErrorCode(int(data.get("code", ErrorCode.INTERNAL_ERROR)))
        domain = ErrorDomain(int(data.get("domain", ErrorDomain.NONE)))
        level = ErrorLevel(int(data.get("level", ErrorLevel.ERROR)))
        message = str(data.get("message", "unknown error"))
        cls = _CODE_TO_CLASS.get(code, VirtError)
        return cls(message, code=code, domain=domain, level=level)


class XMLError(VirtError):
    """Malformed or semantically invalid XML configuration."""

    default_code = ErrorCode.XML_ERROR
    default_domain = ErrorDomain.XML


class InvalidArgumentError(VirtError):
    """A caller-supplied argument was rejected."""

    default_code = ErrorCode.INVALID_ARG


class UnsupportedError(VirtError):
    """The driver or backend does not implement the requested feature."""

    default_code = ErrorCode.NO_SUPPORT


class InvalidURIError(VirtError):
    """A connection URI could not be parsed or matched to a driver."""

    default_code = ErrorCode.INVALID_URI
    default_domain = ErrorDomain.URI


class ConnectionError_(VirtError):
    """Connection establishment failed or the connection is unusable."""

    default_code = ErrorCode.NO_CONNECT


class ConnectionClosedError(VirtError):
    """Operation attempted on a closed connection."""

    default_code = ErrorCode.CONNECTION_CLOSED


class NoDomainError(VirtError):
    """Lookup failed: no domain with the given name/UUID/ID."""

    default_code = ErrorCode.NO_DOMAIN
    default_domain = ErrorDomain.DOM


class DomainExistsError(VirtError):
    """A domain with the same name or UUID already exists."""

    default_code = ErrorCode.DOM_EXIST
    default_domain = ErrorDomain.DOM


class InvalidOperationError(VirtError):
    """Operation not valid for the object's current state."""

    default_code = ErrorCode.OPERATION_INVALID


class OperationFailedError(VirtError):
    """The backend reported a failure while executing the operation."""

    default_code = ErrorCode.OPERATION_FAILED


class OperationTimeoutError(VirtError):
    """The operation did not complete within its deadline."""

    default_code = ErrorCode.OPERATION_TIMEOUT


class OperationAbortedError(VirtError):
    """The operation was cancelled by the caller."""

    default_code = ErrorCode.OPERATION_ABORTED


class ResourceBusyError(VirtError):
    """The resource is locked by a concurrent job."""

    default_code = ErrorCode.RESOURCE_BUSY


class InsufficientResourcesError(VirtError):
    """The host cannot satisfy the requested CPU/memory/disk allocation."""

    default_code = ErrorCode.INSUFFICIENT_RESOURCES
    default_domain = ErrorDomain.NODE


class NoNetworkError(VirtError):
    """Lookup failed: no network with the given name/UUID."""

    default_code = ErrorCode.NO_NETWORK
    default_domain = ErrorDomain.NET


class NetworkExistsError(VirtError):
    """A network with the same name or UUID already exists."""

    default_code = ErrorCode.NETWORK_EXIST
    default_domain = ErrorDomain.NET


class NoStoragePoolError(VirtError):
    """Lookup failed: no storage pool with the given name/UUID."""

    default_code = ErrorCode.NO_STORAGE_POOL
    default_domain = ErrorDomain.STORAGE


class StoragePoolExistsError(VirtError):
    """A storage pool with the same name or UUID already exists."""

    default_code = ErrorCode.STORAGE_POOL_EXIST
    default_domain = ErrorDomain.STORAGE


class NoStorageVolumeError(VirtError):
    """Lookup failed: no volume with the given name/key."""

    default_code = ErrorCode.NO_STORAGE_VOL
    default_domain = ErrorDomain.STORAGE


class StorageVolumeExistsError(VirtError):
    """A volume with the same name already exists in the pool."""

    default_code = ErrorCode.STORAGE_VOL_EXIST
    default_domain = ErrorDomain.STORAGE


class NoSnapshotError(VirtError):
    """Lookup failed: no snapshot with the given name."""

    default_code = ErrorCode.NO_DOMAIN_SNAPSHOT
    default_domain = ErrorDomain.SNAPSHOT


class SnapshotExistsError(VirtError):
    """A snapshot with the same name already exists."""

    default_code = ErrorCode.SNAPSHOT_EXIST
    default_domain = ErrorDomain.SNAPSHOT


class NoCheckpointError(VirtError):
    """Lookup failed: no checkpoint with the given name."""

    default_code = ErrorCode.NO_DOMAIN_CHECKPOINT
    default_domain = ErrorDomain.CHECKPOINT


class CheckpointExistsError(VirtError):
    """A checkpoint with the same name already exists."""

    default_code = ErrorCode.CHECKPOINT_EXIST
    default_domain = ErrorDomain.CHECKPOINT


class RPCError(VirtError):
    """Wire-protocol failure: framing, serialization, or dispatch."""

    default_code = ErrorCode.RPC_ERROR
    default_domain = ErrorDomain.RPC


class TransportStalledError(VirtError):
    """A frame got no reply within the caller's wait bound.

    Raised by the transport layer; the RPC client translates it into
    either :class:`OperationTimeoutError` (per-call deadline) or
    :class:`KeepaliveTimeoutError` (connection declared dead).
    """

    default_code = ErrorCode.OPERATION_TIMEOUT
    default_domain = ErrorDomain.RPC


class TransportHangError(TransportStalledError):
    """A frame got no reply and the caller set no bound at all.

    The deterministic model of "hangs forever": the channel charges
    :data:`repro.rpc.transport.HANG_SECONDS` of modelled time before
    raising, so a client without keepalive or deadlines visibly loses a
    day of simulated time on a dead link.
    """


class KeepaliveTimeoutError(ConnectionClosedError):
    """The client-side keepalive declared the connection dead."""

    default_domain = ErrorDomain.RPC


class CircuitOpenError(ConnectionError_):
    """The reconnect circuit breaker is open: failing fast."""

    default_domain = ErrorDomain.RPC


class AuthenticationError(VirtError):
    """The transport-level authentication handshake failed."""

    default_code = ErrorCode.AUTH_FAILED
    default_domain = ErrorDomain.RPC


class AccessDeniedError(VirtError):
    """The client is not permitted to perform the operation."""

    default_code = ErrorCode.ACCESS_DENIED


class MigrationError(VirtError):
    """Live migration failed."""

    default_code = ErrorCode.OPERATION_FAILED
    default_domain = ErrorDomain.MIGRATION


class MigrationIncompatibleError(VirtError):
    """Source and destination are incompatible (arch/hypervisor/features)."""

    default_code = ErrorCode.MIGRATE_INCOMPATIBLE
    default_domain = ErrorDomain.MIGRATION


class GuestCrashedError(VirtError):
    """The simulated guest crashed during the operation."""

    default_code = ErrorCode.GUEST_CRASHED
    default_domain = ErrorDomain.DOM


class DaemonCrashError(VirtError):
    """The daemon process died mid-operation (crash fault injection).

    Never crosses the wire as an error reply: the RPC dispatch layer
    re-raises it so the whole call tears down like a killed process —
    the triggering client sees a dead link, not a failure reply.
    """

    default_code = ErrorCode.DAEMON_CRASHED
    default_domain = ErrorDomain.RPC


_CODE_TO_CLASS = {
    ErrorCode.XML_ERROR: XMLError,
    ErrorCode.XML_DETAIL: XMLError,
    ErrorCode.INVALID_ARG: InvalidArgumentError,
    ErrorCode.NO_SUPPORT: UnsupportedError,
    ErrorCode.INVALID_URI: InvalidURIError,
    ErrorCode.NO_CONNECT: ConnectionError_,
    ErrorCode.CONNECTION_CLOSED: ConnectionClosedError,
    ErrorCode.NO_DOMAIN: NoDomainError,
    ErrorCode.DOM_EXIST: DomainExistsError,
    ErrorCode.OPERATION_INVALID: InvalidOperationError,
    ErrorCode.OPERATION_FAILED: OperationFailedError,
    ErrorCode.OPERATION_TIMEOUT: OperationTimeoutError,
    ErrorCode.OPERATION_ABORTED: OperationAbortedError,
    ErrorCode.RESOURCE_BUSY: ResourceBusyError,
    ErrorCode.INSUFFICIENT_RESOURCES: InsufficientResourcesError,
    ErrorCode.NO_NETWORK: NoNetworkError,
    ErrorCode.NETWORK_EXIST: NetworkExistsError,
    ErrorCode.NO_STORAGE_POOL: NoStoragePoolError,
    ErrorCode.STORAGE_POOL_EXIST: StoragePoolExistsError,
    ErrorCode.NO_STORAGE_VOL: NoStorageVolumeError,
    ErrorCode.STORAGE_VOL_EXIST: StorageVolumeExistsError,
    ErrorCode.NO_DOMAIN_SNAPSHOT: NoSnapshotError,
    ErrorCode.SNAPSHOT_EXIST: SnapshotExistsError,
    ErrorCode.NO_DOMAIN_CHECKPOINT: NoCheckpointError,
    ErrorCode.CHECKPOINT_EXIST: CheckpointExistsError,
    ErrorCode.RPC_ERROR: RPCError,
    ErrorCode.AUTH_FAILED: AuthenticationError,
    ErrorCode.ACCESS_DENIED: AccessDeniedError,
    ErrorCode.MIGRATE_INCOMPATIBLE: MigrationIncompatibleError,
    ErrorCode.GUEST_CRASHED: GuestCrashedError,
    ErrorCode.DAEMON_CRASHED: DaemonCrashError,
}
