"""Retry policy, idempotency allowlist, and circuit breaker.

A transient transport failure (deadline hit, link declared dead) is
only safe to retry when the procedure is idempotent: re-running
``domain.get_info`` is free, re-running ``domain.create`` after a lost
*reply* would double-start the guest.  The allowlist below names every
procedure whose effect is the same executed once or twice; resilient
callers consult it before retrying.

Backoff uses *decorrelated jitter* (delay drawn uniformly between the
base and three times the previous delay, capped), seeded for
deterministic replay under the virtual clock.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, FrozenSet, Optional

from repro.errors import InvalidArgumentError
from repro.rpc.protocol import STREAM_PROCEDURES

#: procedures safe to re-issue after a transport failure
IDEMPOTENT_PROCEDURES: FrozenSet[str] = frozenset(
    {
        "connect.open",
        "connect.get_capabilities",
        "connect.get_hostname",
        "connect.get_node_info",
        "connect.list_domains",
        "connect.list_defined_domains",
        "connect.num_of_domains",
        "connect.get_version",
        "connect.ping",
        "connect.supports_feature",
        "connect.domain_event_register",
        "connect.domain_event_deregister",
        "domain.lookup_by_name",
        "domain.lookup_by_uuid",
        "domain.lookup_by_id",
        "domain.get_info",
        "domain.get_state",
        "domain.get_xml_desc",
        "domain.get_stats",
        "domain.get_autostart",
        "domain.get_job_info",
        "domain.get_scheduler_params",
        "domain.snapshot_list",
        "domain.checkpoint_list",
        "domain.checkpoint_get_xml_desc",
        "domain.has_managed_save",
        "network.lookup_by_name",
        "network.list",
        "network.get_xml_desc",
        "network.dhcp_leases",
        "storage.pool_lookup_by_name",
        "storage.pool_list",
        "storage.pool_get_info",
        "storage.pool_get_xml_desc",
        "storage.vol_list",
        "storage.vol_get_info",
    }
)


# Stream-opening procedures must never be retried: a "lost" reply may
# mean the stream is half-open server-side, and re-issuing the CALL
# would attach a second stream to a payload already partially moved.
_STREAM_OVERLAP = IDEMPOTENT_PROCEDURES & STREAM_PROCEDURES
if _STREAM_OVERLAP:  # pragma: no cover - import-time invariant
    raise AssertionError(
        "stream procedures may not be marked idempotent: "
        f"{sorted(_STREAM_OVERLAP)}"
    )


def is_idempotent(procedure: str) -> bool:
    return procedure in IDEMPOTENT_PROCEDURES


class RetryPolicy:
    """Exponential backoff with decorrelated jitter, seeded.

    ``max_attempts`` counts the total tries including the first; the
    policy therefore allows ``max_attempts - 1`` retries.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.1,
        max_delay: float = 5.0,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise InvalidArgumentError("max_attempts must be at least 1")
        if base_delay <= 0 or max_delay < base_delay:
            raise InvalidArgumentError(
                "need 0 < base_delay <= max_delay for backoff"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def next_delay(self, previous: "Optional[float]" = None) -> float:
        """Decorrelated jitter: uniform in [base, 3*previous], capped."""
        prev = self.base_delay if previous is None else max(previous, self.base_delay)
        with self._lock:
            return min(self.max_delay, self._rng.uniform(self.base_delay, prev * 3))

    def max_total_delay(self) -> float:
        """Upper bound on the backoff time one call can accumulate."""
        return self.max_delay * (self.max_attempts - 1)


class CircuitBreaker:
    """Fail fast after repeated failures; probe again after a cooldown.

    States follow the classic pattern: CLOSED (normal) → OPEN after
    ``threshold`` consecutive failures (every request refused) →
    HALF_OPEN once ``reset_timeout`` modelled seconds pass (one probe
    allowed; success closes, failure re-opens).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        now: Callable[[], float],
        threshold: int = 3,
        reset_timeout: float = 30.0,
    ) -> None:
        if threshold < 1:
            raise InvalidArgumentError("breaker threshold must be at least 1")
        if reset_timeout <= 0:
            raise InvalidArgumentError("breaker reset_timeout must be positive")
        self._now = now
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: "Optional[float]" = None
        self.times_opened = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._now() - self._opened_at >= self.reset_timeout:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """May a request proceed right now?"""
        return self.state != self.OPEN

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            half_open = self._state_locked() == self.HALF_OPEN
            self._failures += 1
            if half_open or self._failures >= self.threshold:
                if self._opened_at is None or half_open:
                    self.times_opened += 1
                self._opened_at = self._now()
