"""RPC server: procedure dispatch on the daemon side.

Each incoming CALL frame is unpacked, routed to the registered handler
(optionally through a workerpool, with per-procedure priority — the
guaranteed-finish lane for critical operations like ``domain.destroy``),
and answered with a REPLY frame.  Failures travel as structured error
bodies, rebuilt into the matching exception class client-side.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.errors import RPCError, VirtError
from repro.rpc.protocol import (
    KEEPALIVE_PING,
    MessageType,
    ReplyStatus,
    RPCMessage,
    is_keepalive,
    make_pong,
    procedure_name,
    procedure_number,
)
from repro.rpc.transport import ServerConnection
from repro.util.threadpool import WorkerPool

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracing import Tracer

Handler = Callable[[ServerConnection, Any], Any]


class RPCServer:
    """Routes unpacked calls to handlers and packs the replies."""

    def __init__(
        self,
        pool: "Optional[WorkerPool]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
        tracer: "Optional[Tracer]" = None,
        name: str = "rpc",
    ) -> None:
        self._procedures: Dict[int, Tuple[Handler, bool]] = {}
        self._pool = pool
        self._lock = threading.Lock()
        self.calls_served = 0
        self.calls_failed = 0
        self.pings_answered = 0
        #: optional hook fired on every keepalive PING (activity tracking)
        self.on_ping: "Optional[Callable[[ServerConnection], None]]" = None
        self.metrics = metrics
        self.tracer = tracer
        #: label value distinguishing server objects sharing one registry
        self.name = name
        if metrics is not None:
            self._m_calls = metrics.counter(
                "rpc_server_calls_total",
                "Dispatched calls by server, procedure, and outcome",
                ("server", "procedure", "status"),
            )
            self._m_latency = metrics.histogram(
                "rpc_server_dispatch_seconds",
                "Modelled dispatch latency (queue wait + handler service)",
                ("server", "procedure"),
            )
            self._m_pings = metrics.counter(
                "rpc_server_keepalive_pings_total",
                "Keepalive PINGs answered inline",
                ("server",),
            )

    def _procedure_label(self, number: int) -> str:
        try:
            return procedure_name(number)
        except RPCError:
            return f"unknown:{number}"

    def reset_counters(self) -> None:
        """Zero the aggregate counters (``reset-stats``)."""
        with self._lock:
            self.calls_served = 0
            self.calls_failed = 0
            self.pings_answered = 0

    def register(self, name: str, handler: Handler, priority: bool = False) -> None:
        """Bind ``handler`` to a procedure name from the protocol table.

        ``priority=True`` marks the procedure for the guaranteed lane:
        it is dispatched to priority workers and must never block on a
        hypervisor (libvirt's high-priority procedure tagging).
        """
        number = procedure_number(name)
        with self._lock:
            self._procedures[number] = (handler, priority)

    def registered(self, name: str) -> bool:
        return procedure_number(name) in self._procedures

    def attach(self, conn: ServerConnection) -> None:
        """Wire a freshly accepted connection into this dispatcher."""
        conn.set_handler(lambda data: self.dispatch(conn, data))

    # -- dispatch pipeline ------------------------------------------------

    def dispatch(self, conn: ServerConnection, data: bytes) -> bytes:
        """The full server-side path: unpack → execute → pack reply."""
        try:
            message = RPCMessage.unpack(data)
        except VirtError as exc:
            # can't even recover a serial; answer with serial 0
            return self._error_reply(0, 0, exc)
        if is_keepalive(message):
            return self._handle_keepalive(conn, message)
        if message.mtype != MessageType.CALL:
            return self._error_reply(
                message.procedure,
                message.serial,
                RPCError(f"expected CALL, got {message.mtype.name}"),
            )
        entry = self._procedures.get(message.procedure)
        if entry is None:
            return self._error_reply(
                message.procedure,
                message.serial,
                RPCError(f"procedure {message.procedure} not registered"),
            )
        handler, priority = entry
        label = self._procedure_label(message.procedure)
        started = conn.channel.clock.now()
        span = (
            self.tracer.span("rpc.dispatch", procedure=label, priority=priority)
            if self.tracer is not None
            else None
        )
        try:
            if self._pool is not None:
                future = self._pool.submit(handler, conn, message.body, priority=priority)
                result = future.result()
            else:
                result = handler(conn, message.body)
        except VirtError as exc:
            if span is not None:
                span.__exit__(type(exc), exc, None)
            return self._error_reply(message.procedure, message.serial, exc)
        except Exception as exc:  # noqa: BLE001 - internal errors cross the wire too
            if span is not None:
                span.__exit__(type(exc), exc, None)
            wrapped = VirtError(f"internal error: {exc}")
            return self._error_reply(message.procedure, message.serial, wrapped)
        if span is not None:
            span.__exit__(None, None, None)
        with self._lock:
            self.calls_served += 1
        if self.metrics is not None:
            self._m_calls.labels(server=self.name, procedure=label, status="ok").inc()
            self._m_latency.labels(server=self.name, procedure=label).observe(
                conn.channel.clock.now() - started
            )
        reply = RPCMessage(
            message.procedure,
            MessageType.REPLY,
            message.serial,
            ReplyStatus.OK,
            result,
        )
        return reply.pack()

    def _handle_keepalive(self, conn: ServerConnection, message: RPCMessage) -> Optional[bytes]:
        """Answer PING with PONG on the spot — never through the pool,
        so a daemon with every worker wedged still proves liveness
        (mirroring ``virKeepAlive`` running from the event loop)."""
        if message.mtype != MessageType.CALL or message.procedure != KEEPALIVE_PING:
            return None  # keepalive carries no errors; ignore strays
        with self._lock:
            self.pings_answered += 1
        if self.metrics is not None:
            self._m_pings.labels(server=self.name).inc()
        if self.on_ping is not None:
            self.on_ping(conn)
        return make_pong(message.serial).pack()

    def _error_reply(self, procedure: int, serial: int, exc: VirtError) -> bytes:
        with self._lock:
            self.calls_failed += 1
        if self.metrics is not None:
            self._m_calls.labels(
                server=self.name,
                procedure=self._procedure_label(procedure),
                status="error",
            ).inc()
        reply = RPCMessage(
            procedure,
            MessageType.REPLY,
            serial,
            ReplyStatus.ERROR,
            exc.to_dict(),
        )
        return reply.pack()

    # -- server push -------------------------------------------------------

    def emit_event(self, conn: ServerConnection, event_id: int, body: Any) -> None:
        """Push an EVENT frame to one connected client."""
        message = RPCMessage(event_id, MessageType.EVENT, 0, ReplyStatus.OK, body)
        conn.push(message.pack())
