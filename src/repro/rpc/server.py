"""RPC server: procedure dispatch on the daemon side.

Each incoming CALL frame is unpacked, routed to the registered handler,
and answered with a REPLY frame.  Failures travel as structured error
bodies, rebuilt into the matching exception class client-side.

With a workerpool attached, dispatch is *asynchronous*: the call is
submitted to the pool and the dispatcher returns immediately, so one
slow handler never head-of-line-blocks the connection.  The REPLY frame
is delivered when the job completes — replies may therefore leave in
any order, correlated by serial on the client (exactly how libvirtd
dispatches through ``virThreadPool``).  Each connection gets an
in-flight window mirroring libvirtd's ``max_client_requests``: calls
beyond the window queue (up to a bound) and are rejected past that,
providing backpressure instead of unbounded memory growth.  Without a
pool, dispatch stays fully synchronous (handler runs inline, reply is
the return value).

Bulk data: STREAM frames are peeked off the dispatch entry *before*
full unpack and routed straight to their
:class:`~repro.stream.core.ServerStream` (never through the pool — like
libvirt, stream traffic bypasses procedure dispatch once the opening
call set the stream up).  Handlers create streams with
:meth:`RPCServer.open_stream` during the opening CALL's dispatch;
connection teardown aborts every stream the connection owned so a
disconnect or daemon crash never leaves one dangling.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, Optional, Tuple

from repro.errors import DaemonCrashError, InvalidArgumentError, RPCError, VirtError
from repro.observability.tracing import SpanContext
from repro.rpc.protocol import (
    KEEPALIVE_PING,
    MessageType,
    ReplyStatus,
    RPCMessage,
    is_keepalive,
    make_pong,
    peek_message_type,
    procedure_name,
    procedure_number,
)
from repro.rpc.transport import ASYNC_REPLY, ServerConnection
from repro.stream.core import DEFAULT_WINDOW, ServerStream
from repro.util.threadpool import WorkerPool

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracing import Tracer

Handler = Callable[[ServerConnection, Any], Any]

#: libvirtd's default ``max_client_requests``
DEFAULT_MAX_CLIENT_REQUESTS = 5
#: queued-call bound beyond the window before calls are rejected
DEFAULT_MAX_QUEUED_REQUESTS = 64


class _DispatchJob:
    """One unpacked call travelling through the pooled dispatch path."""

    __slots__ = (
        "handler", "message", "label", "priority",
        "frame_index", "started", "trace_ctx",
    )

    def __init__(
        self,
        handler: Handler,
        message: RPCMessage,
        label: str,
        priority: bool,
        frame_index: "Optional[int]",
        started: float,
        trace_ctx: "Optional[SpanContext]" = None,
    ) -> None:
        self.handler = handler
        self.message = message
        self.label = label
        self.priority = priority
        self.frame_index = frame_index
        self.started = started
        #: trace context the CALL frame carried, if any — rides the job
        #: across the read-loop → window-queue → worker handoffs
        self.trace_ctx = trace_ctx


class _InflightWindow:
    """Per-connection in-flight accounting (``max_client_requests``)."""

    __slots__ = ("lock", "inflight", "queue", "peak")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.inflight = 0
        self.queue: "Deque[_DispatchJob]" = deque()
        self.peak = 0


class RPCServer:
    """Routes unpacked calls to handlers and packs the replies."""

    def __init__(
        self,
        pool: "Optional[WorkerPool]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
        tracer: "Optional[Tracer]" = None,
        name: str = "rpc",
        max_client_requests: int = DEFAULT_MAX_CLIENT_REQUESTS,
        max_queued_requests: int = DEFAULT_MAX_QUEUED_REQUESTS,
    ) -> None:
        _validate_window(max_client_requests, max_queued_requests)
        self._procedures: Dict[int, Tuple[Handler, bool]] = {}
        self._pool = pool
        self._lock = threading.Lock()
        self._windows: "weakref.WeakKeyDictionary[ServerConnection, _InflightWindow]" = (
            weakref.WeakKeyDictionary()
        )
        #: open streams per connection, keyed by opening-call serial
        self._streams: "weakref.WeakKeyDictionary[ServerConnection, Dict[int, ServerStream]]" = (
            weakref.WeakKeyDictionary()
        )
        #: (conn, message) of the CALL being dispatched on this thread,
        #: so a handler can call :meth:`open_stream` with no arguments
        self._dispatch_ctx = threading.local()
        self.max_client_requests = max_client_requests
        self.max_queued_requests = max_queued_requests
        self.calls_served = 0
        self.calls_failed = 0
        self.calls_queued = 0
        self.calls_rejected = 0
        self.pings_answered = 0
        #: optional hook fired on every keepalive PING (activity tracking)
        self.on_ping: "Optional[Callable[[ServerConnection], None]]" = None
        #: optional flight recorder: every dispatch records its frame
        #: header on entry (``rpc.begin``) and outcome on exit
        #: (``rpc.end``) — a begin with no end is a dispatch a crash
        #: cut short (see repro.observability.flightrec)
        self.recorder: "Optional[Any]" = None
        self.metrics = metrics
        self.tracer = tracer
        #: label value distinguishing server objects sharing one registry
        self.name = name
        if metrics is not None:
            self._m_calls = metrics.counter(
                "rpc_server_calls_total",
                "Dispatched calls by server, procedure, and outcome",
                ("server", "procedure", "status"),
            )
            self._m_latency = metrics.histogram(
                "rpc_server_dispatch_seconds",
                "Modelled dispatch latency (queue wait + handler service)",
                ("server", "procedure"),
            )
            self._m_pings = metrics.counter(
                "rpc_server_keepalive_pings_total",
                "Keepalive PINGs answered inline",
                ("server",),
            )
            self._m_backpressure = metrics.counter(
                "rpc_server_backpressure_total",
                "Calls that hit the per-connection in-flight window",
                ("server", "outcome"),
            )
            inflight = metrics.gauge(
                "rpc_server_inflight_calls",
                "Calls executing or queued behind the in-flight window",
                ("server",),
            )
            inflight.labels(server=name).set_function(self.inflight_calls)
            self._m_stream_bytes = metrics.counter(
                "stream_bytes_total",
                "Bulk bytes moved over streams by direction (daemon view)",
                ("server", "direction"),
            )
            stream_active = metrics.gauge(
                "stream_active",
                "Streams currently open on the daemon",
                ("server",),
            )
            stream_active.labels(server=name).set_function(self.active_streams)

    def _procedure_label(self, number: int) -> str:
        try:
            return procedure_name(number)
        except RPCError:
            return f"unknown:{number}"

    def reset_counters(self) -> None:
        """Zero the aggregate counters (``reset-stats``)."""
        with self._lock:
            self.calls_served = 0
            self.calls_failed = 0
            self.calls_queued = 0
            self.calls_rejected = 0
            self.pings_answered = 0

    def register(self, name: str, handler: Handler, priority: bool = False) -> None:
        """Bind ``handler`` to a procedure name from the protocol table.

        ``priority=True`` marks the procedure for the guaranteed lane:
        it is dispatched to priority workers and must never block on a
        hypervisor (libvirt's high-priority procedure tagging).
        """
        number = procedure_number(name)
        with self._lock:
            self._procedures[number] = (handler, priority)

    def registered(self, name: str) -> bool:
        return procedure_number(name) in self._procedures

    def attach(self, conn: ServerConnection) -> None:
        """Wire a freshly accepted connection into this dispatcher."""
        conn.set_handler(lambda data: self.dispatch(conn, data))
        self._window(conn)

    # -- in-flight window --------------------------------------------------

    def _window(self, conn: ServerConnection) -> _InflightWindow:
        with self._lock:
            window = self._windows.get(conn)
            if window is None:
                window = _InflightWindow()
                self._windows[conn] = window
            return window

    def set_max_client_requests(self, value: int) -> None:
        """Adjust the per-connection window at runtime (admin API);
        queued calls that now fit are dispatched immediately."""
        _validate_window(value, self.max_queued_requests)
        with self._lock:
            self.max_client_requests = value
            pairs = list(self._windows.items())
        for conn, window in pairs:
            self._pump(conn, window)

    def inflight_calls(self) -> int:
        """Calls currently executing or queued, across all connections."""
        with self._lock:
            windows = list(self._windows.values())
        total = 0
        for window in windows:
            with window.lock:
                total += window.inflight + len(window.queue)
        return total

    def _record_backpressure(self, outcome: str) -> None:
        with self._lock:
            if outcome == "queued":
                self.calls_queued += 1
            else:
                self.calls_rejected += 1
        if self.metrics is not None:
            self._m_backpressure.labels(server=self.name, outcome=outcome).inc()

    # -- dispatch pipeline ------------------------------------------------

    def dispatch(self, conn: ServerConnection, data: bytes) -> Any:
        """The server-side entry: unpack → route → reply.

        Returns the packed REPLY bytes when the call was answered
        inline (no pool, keepalive, early errors), or
        :data:`~repro.rpc.transport.ASYNC_REPLY` when the reply will be
        delivered through :meth:`ServerConnection.send_reply` once a
        worker finishes the job.

        STREAM frames never enter the pool: they are routed straight to
        the stream object the opening call registered, keeping data
        chunks ordered relative to each other and to the flow-control
        grants they answer.
        """
        if peek_message_type(data) == MessageType.STREAM:
            return self._handle_stream_frame(conn, data)
        try:
            message = RPCMessage.unpack(data)
        except VirtError as exc:
            # can't even recover a serial; answer with serial 0
            return self._error_reply(0, 0, exc)
        if is_keepalive(message):
            return self._handle_keepalive(conn, message)
        if message.mtype != MessageType.CALL:
            return self._error_reply(
                message.procedure,
                message.serial,
                RPCError(f"expected CALL, got {message.mtype.name}"),
            )
        entry = self._procedures.get(message.procedure)
        if entry is None:
            return self._error_reply(
                message.procedure,
                message.serial,
                RPCError(f"procedure {message.procedure} not registered"),
            )
        handler, priority = entry
        trace_ctx = (
            SpanContext.from_wire(message.trace)
            if self.tracer is not None and message.trace is not None
            else None
        )
        job = _DispatchJob(
            handler,
            message,
            self._procedure_label(message.procedure),
            priority,
            conn.current_frame_index,
            conn.channel.clock.now(),
            trace_ctx=trace_ctx,
        )
        if self._pool is None:
            return self._execute(conn, job)
        window = self._window(conn)
        with window.lock:
            if window.inflight >= self.max_client_requests:
                if len(window.queue) >= self.max_queued_requests:
                    self._record_backpressure("rejected")
                    return self._error_reply(
                        message.procedure,
                        message.serial,
                        RPCError(
                            f"max_client_requests exceeded: "
                            f"{self.max_client_requests} calls in flight and "
                            f"{len(window.queue)} queued on this connection"
                        ),
                    )
                window.queue.append(job)
                self._record_backpressure("queued")
                return ASYNC_REPLY
            window.inflight += 1
            window.peak = max(window.peak, window.inflight)
        self._submit_job(conn, window, job)
        return ASYNC_REPLY

    def _submit_job(self, conn: ServerConnection, window: _InflightWindow, job: _DispatchJob) -> bool:
        try:
            self._pool.submit(self._run_async, conn, window, job, priority=job.priority)
            return True
        except VirtError as exc:
            # pool shut down under us: answer instead of leaving the
            # client to wait out its deadline
            with window.lock:
                window.inflight -= 1
            conn.send_reply(
                self._error_reply(job.message.procedure, job.message.serial, exc),
                job.frame_index,
            )
            return False

    def _run_async(self, conn: ServerConnection, window: _InflightWindow, job: _DispatchJob) -> None:
        """Pool-job body: execute, reply, then let a queued call in.

        The wire trace context rode the job object across the
        read-loop → queue → worker handoff; attach it to this worker
        thread for the duration so anything the handler spawns inherits
        the caller's trace, and restore whatever was attached before.
        """
        attached = self.tracer is not None and job.trace_ctx is not None
        token = self.tracer.attach(job.trace_ctx) if attached else None
        try:
            conn.send_reply(self._execute(conn, job), job.frame_index)
        finally:
            if attached:
                self.tracer.detach(token)
            with window.lock:
                window.inflight -= 1
            self._pump(conn, window)

    def _pump(self, conn: ServerConnection, window: _InflightWindow) -> None:
        """Move queued calls into the pool while the window has room."""
        while True:
            with window.lock:
                if not window.queue or window.inflight >= self.max_client_requests:
                    return
                job = window.queue.popleft()
                window.inflight += 1
                window.peak = max(window.peak, window.inflight)
            if not self._submit_job(conn, window, job):
                return

    def _execute(self, conn: ServerConnection, job: _DispatchJob) -> bytes:
        """Run the handler and pack the REPLY; records span, counters,
        and dispatch latency on both the OK and the error outcome.

        The dispatch span parents into the trace context the CALL frame
        carried (one trace across the wire); without one it roots a
        local trace, exactly as before.  ``queue_wait`` — modelled time
        between unpack and a worker picking the job up — is recorded as
        a span attribute.
        """
        message = job.message
        scope = (
            self.tracer.span(
                "rpc.dispatch",
                parent=job.trace_ctx,
                procedure=job.label,
                priority=job.priority,
            )
            if self.tracer is not None
            else nullcontext(None)
        )
        with scope as span:
            if span is not None:
                span.set_attribute("serial", message.serial)
                span.set_attribute(
                    "queue_wait", conn.channel.clock.now() - job.started
                )
            if self.recorder is not None:
                self.recorder.record(
                    "rpc.begin",
                    server=self.name,
                    procedure=job.label,
                    serial=message.serial,
                    start=job.started,
                    span_id=span.span_id if span is not None else None,
                    trace_id=span.trace_id if span is not None else None,
                    parent_id=span.parent_id if span is not None else None,
                )
            failure: "Optional[VirtError]" = None
            result: Any = None
            self._dispatch_ctx.conn = conn
            self._dispatch_ctx.message = message
            try:
                result = job.handler(conn, message.body)
            except DaemonCrashError:
                # a crashed daemon sends nothing: re-raise so the whole
                # call tears down like a killed process, never an
                # error reply
                raise
            except VirtError as exc:
                failure = exc
            except Exception as exc:  # noqa: BLE001 - internal errors cross the wire too
                failure = VirtError(f"internal error: {exc}")
            finally:
                self._dispatch_ctx.conn = None
                self._dispatch_ctx.message = None
            if span is not None:
                span.set_attribute("status", "ok" if failure is None else "error")
                if failure is not None:
                    span.error = repr(failure)
            if failure is not None:
                reply = self._error_reply(message.procedure, message.serial, failure)
            else:
                with self._lock:
                    self.calls_served += 1
                if self.metrics is not None:
                    self._m_calls.labels(
                        server=self.name, procedure=job.label, status="ok"
                    ).inc()
                reply = RPCMessage(
                    message.procedure,
                    MessageType.REPLY,
                    message.serial,
                    ReplyStatus.OK,
                    result,
                ).pack()
            if self.metrics is not None:
                self._m_latency.labels(server=self.name, procedure=job.label).observe(
                    conn.channel.clock.now() - job.started
                )
            if self.recorder is not None:
                self.recorder.record(
                    "rpc.end",
                    server=self.name,
                    procedure=job.label,
                    serial=message.serial,
                    status="ok" if failure is None else "error",
                )
        return reply

    def _handle_keepalive(self, conn: ServerConnection, message: RPCMessage) -> Optional[bytes]:
        """Answer PING with PONG on the spot — never through the pool,
        so a daemon with every worker wedged still proves liveness
        (mirroring ``virKeepAlive`` running from the event loop)."""
        if message.mtype != MessageType.CALL or message.procedure != KEEPALIVE_PING:
            return None  # keepalive carries no errors; ignore strays
        with self._lock:
            self.pings_answered += 1
        if self.metrics is not None:
            self._m_pings.labels(server=self.name).inc()
        if self.on_ping is not None:
            self.on_ping(conn)
        return make_pong(message.serial).pack()

    def _error_reply(self, procedure: int, serial: int, exc: VirtError) -> bytes:
        with self._lock:
            self.calls_failed += 1
        if self.metrics is not None:
            self._m_calls.labels(
                server=self.name,
                procedure=self._procedure_label(procedure),
                status="error",
            ).inc()
        reply = RPCMessage(
            procedure,
            MessageType.REPLY,
            serial,
            ReplyStatus.ERROR,
            exc.to_dict(),
        )
        return reply.pack()

    # -- server push -------------------------------------------------------

    def emit_event(self, conn: ServerConnection, event_id: int, body: Any) -> None:
        """Push an EVENT frame to one connected client."""
        message = RPCMessage(event_id, MessageType.EVENT, 0, ReplyStatus.OK, body)
        conn.push(message.pack())

    # -- streams -----------------------------------------------------------

    def open_stream(
        self,
        conn: "Optional[ServerConnection]" = None,
        message: "Optional[RPCMessage]" = None,
        window: int = DEFAULT_WINDOW,
    ) -> ServerStream:
        """Create the daemon half of a stream for the CALL being
        dispatched on this thread (both arguments default from the
        dispatch context, so handlers just call ``server.open_stream()``).

        The stream registers under its opening serial before the
        handler returns, so chunks the client fires right behind the
        CALL find it; the opening reply itself still travels the normal
        REPLY path.
        """
        if conn is None:
            conn = getattr(self._dispatch_ctx, "conn", None)
        if message is None:
            message = getattr(self._dispatch_ctx, "message", None)
        if conn is None or message is None:
            raise RPCError("open_stream called outside a CALL dispatch")
        label = self._procedure_label(message.procedure)
        stream = ServerStream(
            self, conn, message.procedure, message.serial, label, window=window
        )
        with self._lock:
            streams = self._streams.get(conn)
            if streams is None:
                streams = {}
                self._streams[conn] = streams
            streams[message.serial] = stream
        if self.tracer is not None:
            # detached: the transfer outlives the opening call's dispatch
            stream.span = self.tracer.start_span(
                "stream.transfer",
                server=self.name,
                procedure=label,
                serial=message.serial,
            )
        if self.recorder is not None:
            self.recorder.record(
                "stream.open",
                server=self.name,
                procedure=label,
                serial=message.serial,
            )
        return stream

    def _handle_stream_frame(self, conn: ServerConnection, data: bytes) -> None:
        # memoryview: chunk bodies decode as sub-views of the frame
        # buffer — no per-chunk copy on the receive path
        try:
            message = RPCMessage.unpack(memoryview(data))
        except VirtError:
            return None  # corrupt stream frame: the stream stalls out
        with self._lock:
            streams = self._streams.get(conn)
            stream = streams.get(message.serial) if streams else None
        if stream is None:
            return None  # late frame for an already torn-down stream
        stream.handle_frame(message)
        return None

    def active_streams(self) -> int:
        """Streams currently open across all connections."""
        with self._lock:
            return sum(len(streams) for streams in self._streams.values())

    def connection_streams(self, conn: ServerConnection) -> "list[ServerStream]":
        with self._lock:
            return list((self._streams.get(conn) or {}).values())

    def abort_connection_streams(self, conn: ServerConnection, reason: str) -> int:
        """Tear down every stream a dying connection owns (no wire
        traffic — the link is already gone).  Returns how many died."""
        streams = self.connection_streams(conn)
        for stream in streams:
            stream.local_abort(reason)
        return len(streams)

    def _count_stream_bytes(self, direction: str, amount: int) -> None:
        if self.metrics is not None:
            self._m_stream_bytes.labels(server=self.name, direction=direction).inc(
                amount
            )

    def _stream_closed(self, stream: ServerStream, outcome: str) -> None:
        """Bookkeeping for any stream teardown (finish and abort)."""
        with self._lock:
            streams = self._streams.get(stream._conn)
            if streams is not None:
                streams.pop(stream.serial, None)
        if self.recorder is not None:
            fields = {
                "server": self.name,
                "procedure": stream.label,
                "serial": stream.serial,
                "bytes_in": stream.bytes_in,
                "bytes_out": stream.bytes_out,
            }
            if stream.error is not None:
                fields["error"] = stream.error
            self.recorder.record(
                "stream.finish" if outcome == "finish" else "stream.abort",
                **fields,
            )
        if stream.span is not None and self.tracer is not None:
            stream.span.set_attribute("bytes_in", stream.bytes_in)
            stream.span.set_attribute("bytes_out", stream.bytes_out)
            stream.span.set_attribute(
                "status", "ok" if outcome == "finish" else "error"
            )
            self.tracer.finish_span(stream.span, error=stream.error)


def _validate_window(max_client_requests: int, max_queued_requests: int) -> None:
    if not isinstance(max_client_requests, int) or max_client_requests < 1:
        raise InvalidArgumentError(
            f"max_client_requests must be a positive integer, got {max_client_requests!r}"
        )
    if not isinstance(max_queued_requests, int) or max_queued_requests < 0:
        raise InvalidArgumentError(
            f"max_queued_requests must be a non-negative integer, got {max_queued_requests!r}"
        )
