"""Message header, framing, and the procedure number space.

A wire message is::

    uint32 length        (whole message, header included)
    uint32 program
    uint32 version
    uint32 procedure
    uint32 type          (CALL / REPLY / EVENT / STREAM)
    uint32 serial        (matches replies to calls)
    uint32 status        (OK / ERROR / CONTINUE; replies and streams)
    <XDR value body>
    [<XDR trace-context map>]    optional, appended after the body

mirroring libvirt's ``virNetMessageHeader``.  Procedures are named in
Python and mapped to stable numbers here; both sides share this table,
and unknown numbers are rejected at dispatch.

The trailing trace-context value is the distributed-tracing carrier: a
``{"trace_id": uint, "span_id": uint}`` map identifying the sender's
active span, so the receiver can parent its dispatch span into the same
trace.  Frames without it are byte-identical to the pre-tracing wire
format, and decoders that predate the field never looked past the body
— the extension is invisible to both old senders and old receivers.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional, Tuple

from repro.errors import RPCError
from repro.rpc.xdr import XdrDecoder, XdrEncoder, decode_value, encode_value

#: the main program (libvirt's REMOTE_PROGRAM analogue)
PROGRAM_REMOTE = 0x20008086
#: the keepalive program (libvirt's KEEPALIVE_PROGRAM, literally "keep")
PROGRAM_KEEPALIVE = 0x6B656570
PROTOCOL_VERSION = 1

KNOWN_PROGRAMS = frozenset({PROGRAM_REMOTE, PROGRAM_KEEPALIVE})

HEADER_BYTES = 7 * 4
MAX_MESSAGE = 16 * 1024 * 1024

#: keepalive procedures (``virKeepAliveMessage``)
KEEPALIVE_PING = 1
KEEPALIVE_PONG = 2


class MessageType(enum.IntEnum):
    CALL = 0
    REPLY = 1
    EVENT = 2
    #: bulk-data frame belonging to a stream opened by an earlier CALL
    #: (libvirt's ``VIR_NET_STREAM``); correlated by (procedure, serial)
    STREAM = 3


class ReplyStatus(enum.IntEnum):
    OK = 0
    ERROR = 1
    #: stream frame carrying data or flow-control (``VIR_NET_CONTINUE``)
    CONTINUE = 2


#: stable procedure numbers — append-only, never renumber
PROCEDURES: Dict[str, int] = {
    "connect.open": 1,
    "connect.close": 2,
    "connect.get_capabilities": 3,
    "connect.get_hostname": 4,
    "connect.get_node_info": 5,
    "connect.list_domains": 6,
    "connect.list_defined_domains": 7,
    "connect.num_of_domains": 8,
    "connect.get_version": 9,
    "domain.lookup_by_name": 10,
    "domain.lookup_by_uuid": 11,
    "domain.lookup_by_id": 12,
    "domain.define_xml": 13,
    "domain.undefine": 14,
    "domain.create": 15,
    "domain.create_xml": 16,
    "domain.shutdown": 17,
    "domain.destroy": 18,
    "domain.suspend": 19,
    "domain.resume": 20,
    "domain.reboot": 21,
    "domain.get_info": 22,
    "domain.get_state": 23,
    "domain.get_xml_desc": 24,
    "domain.set_memory": 25,
    "domain.set_vcpus": 26,
    "domain.save": 27,
    "domain.restore": 28,
    "domain.get_autostart": 29,
    "domain.set_autostart": 30,
    "domain.snapshot_create": 31,
    "domain.snapshot_list": 32,
    "domain.snapshot_revert": 33,
    "domain.snapshot_delete": 34,
    "domain.migrate_begin": 35,
    "domain.migrate_perform": 36,
    "domain.migrate_finish": 37,
    "domain.attach_device": 38,
    "domain.detach_device": 39,
    "network.lookup_by_name": 40,
    "network.define_xml": 41,
    "network.undefine": 42,
    "network.create": 43,
    "network.destroy": 44,
    "network.list": 45,
    "network.get_xml_desc": 46,
    "storage.pool_lookup_by_name": 47,
    "storage.pool_define_xml": 48,
    "storage.pool_undefine": 49,
    "storage.pool_create": 50,
    "storage.pool_destroy": 51,
    "storage.pool_list": 52,
    "storage.pool_get_info": 53,
    "storage.pool_get_xml_desc": 54,
    "storage.vol_create_xml": 55,
    "storage.vol_delete": 56,
    "storage.vol_list": 57,
    "storage.vol_get_info": 58,
    "connect.domain_event_register": 59,
    "connect.domain_event_deregister": 60,
    "connect.ping": 61,
    "domain.get_job_info": 62,
    "domain.abort_job": 63,
    "domain.migrate_prepare": 64,
    "connect.supports_feature": 65,
    "domain.migrate_confirm": 66,
    "domain.get_stats": 67,
    "domain.migrate_p2p": 68,
    "network.dhcp_leases": 69,
    "domain.get_scheduler_params": 70,
    "domain.set_scheduler_params": 71,
    "domain.checkpoint_create": 72,
    "domain.checkpoint_list": 73,
    "domain.checkpoint_delete": 74,
    "domain.checkpoint_get_xml_desc": 75,
    "domain.backup_begin": 76,
    "domain.managed_save": 77,
    "domain.managed_save_remove": 78,
    "domain.has_managed_save": 79,
    "connect.event_subscribe": 80,
    "connect.event_unsubscribe": 81,
    # -- stream-carrying procedures (each CALL opens a virStream)
    "storage.vol_upload": 82,
    "storage.vol_download": 83,
    "domain.open_console": 84,
    "domain.backup_begin_pull": 85,
    # -- administration interface (separate 'admin' server in the daemon)
    "admin.connect_open": 100,
    "admin.srv_list": 101,
    "admin.srv_threadpool_info": 102,
    "admin.srv_threadpool_set": 103,
    "admin.srv_clients_info": 104,
    "admin.srv_clients_set": 105,
    "admin.client_list": 106,
    "admin.client_info": 107,
    "admin.client_disconnect": 108,
    "admin.dmn_log_info": 109,
    "admin.dmn_log_define": 110,
    "admin.srv_stats": 111,
    "admin.client_stats": 112,
    "admin.reset_stats": 113,
    "admin.metrics_export": 114,
    "admin.trace_list": 115,
    "admin.trace_get": 116,
    "admin.daemon_shutdown": 117,
    "admin.flight_dump": 118,
}

_NUMBER_TO_NAME = {number: name for name, number in PROCEDURES.items()}

#: procedures whose CALL opens a virStream on the same serial.  Data
#: frames ride the connection outside request/response correlation, so
#: these can NEVER sit on the idempotent-retry allowlist: re-issuing an
#: upload after a lost reply would append the bytes twice.
STREAM_PROCEDURES = frozenset(
    {
        "storage.vol_upload",
        "storage.vol_download",
        "domain.open_console",
        "domain.backup_begin_pull",
    }
)

#: the server-push event procedure numbers
EVENT_DOMAIN_LIFECYCLE = 1000
#: the daemon is draining: finish up, expect a clean close
EVENT_DAEMON_SHUTDOWN = 1001
#: one typed event-bus record ({"seq", "kind", "domain", "event", "detail", ...})
EVENT_BUS_RECORD = 1002


def procedure_number(name: str) -> int:
    try:
        return PROCEDURES[name]
    except KeyError:
        raise RPCError(f"unknown RPC procedure {name!r}") from None


def procedure_name(number: int) -> str:
    try:
        return _NUMBER_TO_NAME[number]
    except KeyError:
        raise RPCError(f"unknown RPC procedure number {number}") from None


class RPCMessage:
    """One framed wire message."""

    def __init__(
        self,
        procedure: int,
        mtype: MessageType,
        serial: int,
        status: ReplyStatus = ReplyStatus.OK,
        body: Any = None,
        program: int = PROGRAM_REMOTE,
        version: int = PROTOCOL_VERSION,
        trace: "Optional[Dict[str, int]]" = None,
    ) -> None:
        self.procedure = procedure
        self.mtype = MessageType(mtype)
        self.serial = serial
        self.status = ReplyStatus(status)
        self.body = body
        self.program = program
        self.version = version
        #: optional trace context ({"trace_id": .., "span_id": ..})
        self.trace = trace

    def pack(self) -> bytes:
        """Serialize to the framed wire form."""
        body = encode_value(self.body)
        if self.trace is not None:
            body += encode_value(dict(self.trace))
        enc = XdrEncoder()
        enc.pack_uint(HEADER_BYTES + len(body))
        enc.pack_uint(self.program)
        enc.pack_uint(self.version)
        enc.pack_uint(self.procedure)
        enc.pack_uint(int(self.mtype))
        enc.pack_uint(self.serial)
        enc.pack_uint(int(self.status))
        data = enc.data() + body
        if len(data) > MAX_MESSAGE:
            raise RPCError(f"message too large: {len(data)} bytes")
        return data

    @staticmethod
    def unpack(data: bytes) -> "RPCMessage":
        """Parse one framed message; the buffer must hold exactly one."""
        if len(data) < HEADER_BYTES:
            raise RPCError(f"short message: {len(data)} bytes")
        dec = XdrDecoder(data)
        length = dec.unpack_uint()
        if length != len(data):
            raise RPCError(f"frame length {length} != buffer length {len(data)}")
        program = dec.unpack_uint()
        if program not in KNOWN_PROGRAMS:
            raise RPCError(f"unknown program 0x{program:x}")
        version = dec.unpack_uint()
        if version != PROTOCOL_VERSION:
            raise RPCError(f"unsupported protocol version {version}")
        procedure = dec.unpack_uint()
        try:
            mtype = MessageType(dec.unpack_uint())
        except ValueError as exc:
            raise RPCError(f"bad message type: {exc}") from exc
        serial = dec.unpack_uint()
        try:
            status = ReplyStatus(dec.unpack_uint())
        except ValueError as exc:
            raise RPCError(f"bad reply status: {exc}") from exc
        payload = XdrDecoder(data[HEADER_BYTES:])
        body = decode_value(payload)
        trace = None
        if payload.remaining():
            # optional trailing trace-context value; anything malformed
            # degrades to "no context" rather than failing the frame
            extra = decode_value(payload)
            payload.done()
            if isinstance(extra, dict):
                trace_id = extra.get("trace_id")
                span_id = extra.get("span_id")
                if isinstance(trace_id, int) and isinstance(span_id, int):
                    trace = {"trace_id": trace_id, "span_id": span_id}
        return RPCMessage(
            procedure, mtype, serial, status, body, program, version, trace=trace
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RPCMessage({self.mtype.name}, proc={self.procedure}, "
            f"serial={self.serial}, status={self.status.name})"
        )


def make_ping(serial: int) -> RPCMessage:
    """A keepalive PING frame (client → server)."""
    return RPCMessage(
        KEEPALIVE_PING, MessageType.CALL, serial, program=PROGRAM_KEEPALIVE
    )


def make_pong(serial: int) -> RPCMessage:
    """The keepalive PONG answering the PING with ``serial``."""
    return RPCMessage(
        KEEPALIVE_PONG, MessageType.REPLY, serial, program=PROGRAM_KEEPALIVE
    )


def is_keepalive(message: RPCMessage) -> bool:
    return message.program == PROGRAM_KEEPALIVE


def peek_message_type(data: "bytes | memoryview") -> "Optional[MessageType]":
    """Read the type word of a packed frame without unpacking the body.

    Demultiplexers use this to route STREAM frames off the hot
    reply/event paths before paying for a full decode.  Returns
    ``None`` for frames too short or with an unknown type value.
    """
    if len(data) < HEADER_BYTES:
        return None
    try:
        return MessageType(int.from_bytes(bytes(data[16:20]), "big"))
    except ValueError:
        return None


def split_frames(buffer: bytes) -> "Tuple[list, bytes]":
    """Split a byte stream into complete frames + leftover bytes.

    Models how a socket reader reassembles messages from arbitrary
    read boundaries.
    """
    frames = []
    pos = 0
    while True:
        if len(buffer) - pos < 4:
            break
        length = int.from_bytes(buffer[pos : pos + 4], "big")
        if length < HEADER_BYTES or length > MAX_MESSAGE:
            raise RPCError(f"insane frame length {length}")
        if len(buffer) - pos < length:
            break
        frames.append(buffer[pos : pos + length])
        pos += length
    return frames, buffer[pos:]
