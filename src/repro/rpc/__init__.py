"""The RPC substrate: libvirt's client↔daemon wire protocol.

Four layers, bottom-up:

* :mod:`repro.rpc.xdr` — RFC 4506 XDR primitive serialization plus a
  tagged self-describing value codec built on it (libvirt uses XDR for
  all payloads);
* :mod:`repro.rpc.protocol` — message header, framing, and the
  program/procedure number space;
* :mod:`repro.rpc.transport` — connection channels with per-transport
  latency models (unix/tcp/tls/ssh), authentication hooks, and
  server-push support;
* :mod:`repro.rpc.client` / :mod:`repro.rpc.server` — call dispatch,
  serial matching, error propagation, and event delivery.
"""

from repro.rpc.client import RPCClient
from repro.rpc.protocol import MessageType, ReplyStatus, RPCMessage
from repro.rpc.server import RPCServer
from repro.rpc.transport import TRANSPORT_SPECS, Channel, Listener, TransportSpec
from repro.rpc.xdr import XdrDecoder, XdrEncoder, decode_value, encode_value

__all__ = [
    "XdrEncoder",
    "XdrDecoder",
    "encode_value",
    "decode_value",
    "RPCMessage",
    "MessageType",
    "ReplyStatus",
    "TransportSpec",
    "TRANSPORT_SPECS",
    "Channel",
    "Listener",
    "RPCClient",
    "RPCServer",
]
