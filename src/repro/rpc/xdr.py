"""XDR (RFC 4506) serialization.

Libvirt's wire protocol serializes everything with XDR.  This module
implements the primitive codecs — 4-byte alignment, big-endian, padded
opaques — and, on top of them, a tagged *value* codec (a discriminated
union in XDR terms) that can carry the JSON-like structures the RPC
layer passes around: None, bools, integers, doubles, strings, bytes,
lists, string-keyed maps, and typed-parameter lists.

Zero-copy opaque path: the encoder accepts ``memoryview``/``bytearray``
payloads and keeps them *by reference* until the final join, and a
decoder constructed over a ``memoryview`` hands opaques back as
sub-views of the caller's buffer.  Stream frames use both directions so
bulk chunks are never copied per frame just to cross the codec.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List

from repro.errors import RPCError
from repro.util.typedparams import ParamType, TypedParameter, TypedParamList

_PAD = b"\x00\x00\x00"

#: value-codec type tags (the union discriminants)
_TAG_NULL = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_HYPER = 3
_TAG_DOUBLE = 4
_TAG_STRING = 5
_TAG_BYTES = 6
_TAG_LIST = 7
_TAG_DICT = 8
_TAG_TYPED_PARAMS = 9

#: hard cap on string/opaque sizes, guards against corrupt length words
MAX_OPAQUE = 64 * 1024 * 1024


class XdrEncoder:
    """Append-only XDR stream writer."""

    def __init__(self) -> None:
        # may hold memoryview/bytearray entries (zero-copy opaque path);
        # bytes.join accepts any buffer object at materialization time
        self._parts: "List[bytes | bytearray | memoryview]" = []

    def data(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(p) for p in self._parts)

    # -- primitives -----------------------------------------------------

    def pack_int(self, value: int) -> "XdrEncoder":
        if not -(2**31) <= value < 2**31:
            raise RPCError(f"int32 out of range: {value}")
        self._parts.append(struct.pack(">i", value))
        return self

    def pack_uint(self, value: int) -> "XdrEncoder":
        if not 0 <= value < 2**32:
            raise RPCError(f"uint32 out of range: {value}")
        self._parts.append(struct.pack(">I", value))
        return self

    def pack_hyper(self, value: int) -> "XdrEncoder":
        if not -(2**63) <= value < 2**63:
            raise RPCError(f"int64 out of range: {value}")
        self._parts.append(struct.pack(">q", value))
        return self

    def pack_uhyper(self, value: int) -> "XdrEncoder":
        if not 0 <= value < 2**64:
            raise RPCError(f"uint64 out of range: {value}")
        self._parts.append(struct.pack(">Q", value))
        return self

    def pack_bool(self, value: bool) -> "XdrEncoder":
        return self.pack_uint(1 if value else 0)

    def pack_double(self, value: float) -> "XdrEncoder":
        self._parts.append(struct.pack(">d", value))
        return self

    def pack_opaque(self, value: "bytes | bytearray | memoryview") -> "XdrEncoder":
        """Variable-length opaque: uint32 length + data + pad to 4.

        Buffer-typed payloads (``memoryview``, ``bytearray``) are held
        by reference — the bytes are only touched once, at the final
        :meth:`data` join, never copied per pack call.
        """
        if len(value) > MAX_OPAQUE:
            raise RPCError(f"opaque too large: {len(value)} bytes")
        self.pack_uint(len(value))
        self._parts.append(value)
        pad = (-len(value)) % 4
        if pad:
            self._parts.append(_PAD[:pad])
        return self

    def pack_fixed_opaque(self, value: bytes, size: int) -> "XdrEncoder":
        """Fixed-length opaque: no length word, padded to 4."""
        if len(value) != size:
            raise RPCError(f"fixed opaque needs {size} bytes, got {len(value)}")
        self._parts.append(value)
        pad = (-size) % 4
        if pad:
            self._parts.append(_PAD[:pad])
        return self

    def pack_string(self, value: str) -> "XdrEncoder":
        return self.pack_opaque(value.encode("utf-8"))


class XdrDecoder:
    """Sequential XDR stream reader; raises :class:`RPCError` on underrun."""

    def __init__(self, data: "bytes | memoryview") -> None:
        # a memoryview input makes every _take a zero-copy sub-view of
        # the caller's buffer (the stream receive path relies on this)
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise RPCError(
                f"XDR underrun: need {count} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def done(self) -> None:
        """Assert the stream was fully consumed."""
        if self.remaining():
            raise RPCError(f"{self.remaining()} trailing bytes after XDR decode")

    # -- primitives -----------------------------------------------------

    def unpack_int(self) -> int:
        return struct.unpack(">i", self._take(4))[0]

    def unpack_uint(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def unpack_hyper(self) -> int:
        return struct.unpack(">q", self._take(8))[0]

    def unpack_uhyper(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def unpack_bool(self) -> bool:
        value = self.unpack_uint()
        if value not in (0, 1):
            raise RPCError(f"bool must be 0 or 1, got {value}")
        return bool(value)

    def unpack_double(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def unpack_opaque(self) -> bytes:
        length = self.unpack_uint()
        if length > MAX_OPAQUE:
            raise RPCError(f"opaque length {length} exceeds limit")
        value = self._take(length)
        pad = (-length) % 4
        if pad:
            padding = self._take(pad)
            if padding != _PAD[:pad]:
                raise RPCError("non-zero XDR padding")
        return value

    def unpack_fixed_opaque(self, size: int) -> bytes:
        value = self._take(size)
        pad = (-size) % 4
        if pad:
            padding = self._take(pad)
            if padding != _PAD[:pad]:
                raise RPCError("non-zero XDR padding")
        return value

    def unpack_string(self) -> str:
        raw = self.unpack_opaque()
        try:
            return bytes(raw).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise RPCError(f"invalid UTF-8 in XDR string: {exc}") from exc


# -- tagged value codec ---------------------------------------------------


def encode_value(value: Any, encoder: "XdrEncoder | None" = None) -> bytes:
    """Serialize a JSON-like value (plus typed params) to XDR bytes."""
    enc = encoder or XdrEncoder()
    _encode_into(enc, value)
    return enc.data()


def _encode_into(enc: XdrEncoder, value: Any) -> None:
    if value is None:
        enc.pack_uint(_TAG_NULL)
    elif value is True:
        enc.pack_uint(_TAG_TRUE)
    elif value is False:
        enc.pack_uint(_TAG_FALSE)
    elif isinstance(value, int):
        enc.pack_uint(_TAG_HYPER)
        enc.pack_hyper(value)
    elif isinstance(value, float):
        enc.pack_uint(_TAG_DOUBLE)
        enc.pack_double(value)
    elif isinstance(value, str):
        enc.pack_uint(_TAG_STRING)
        enc.pack_string(value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        enc.pack_uint(_TAG_BYTES)
        enc.pack_opaque(value)
    elif isinstance(value, TypedParamList):
        if not all(isinstance(v, TypedParameter) for v in value):
            raise RPCError("TypedParamList may only hold TypedParameter items")
        _encode_typed_params(enc, list(value))
    elif isinstance(value, (list, tuple)):
        if value and all(isinstance(v, TypedParameter) for v in value):
            _encode_typed_params(enc, list(value))
        else:
            enc.pack_uint(_TAG_LIST)
            enc.pack_uint(len(value))
            for item in value:
                _encode_into(enc, item)
    elif isinstance(value, dict):
        enc.pack_uint(_TAG_DICT)
        enc.pack_uint(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise RPCError(f"dict keys must be strings, got {key!r}")
            enc.pack_string(key)
            _encode_into(enc, item)
    else:
        raise RPCError(f"cannot XDR-encode value of type {type(value).__name__}")


def _encode_typed_params(enc: XdrEncoder, params: List[TypedParameter]) -> None:
    enc.pack_uint(_TAG_TYPED_PARAMS)
    enc.pack_uint(len(params))
    for param in params:
        enc.pack_string(param.field)
        enc.pack_uint(int(param.type))
        if param.type == ParamType.INT:
            enc.pack_int(param.value)
        elif param.type == ParamType.UINT:
            enc.pack_uint(param.value)
        elif param.type == ParamType.LLONG:
            enc.pack_hyper(param.value)
        elif param.type == ParamType.ULLONG:
            enc.pack_uhyper(param.value)
        elif param.type == ParamType.DOUBLE:
            enc.pack_double(param.value)
        elif param.type == ParamType.BOOLEAN:
            enc.pack_bool(param.value)
        else:  # STRING
            enc.pack_string(param.value)


def decode_value(data: "bytes | XdrDecoder") -> Any:
    """Inverse of :func:`encode_value`.

    When given raw bytes, the whole buffer must be consumed.
    """
    if isinstance(data, XdrDecoder):
        return _decode_from(data)
    dec = XdrDecoder(data)
    value = _decode_from(dec)
    dec.done()
    return value


def _decode_from(dec: XdrDecoder) -> Any:
    tag = dec.unpack_uint()
    if tag == _TAG_NULL:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_HYPER:
        return dec.unpack_hyper()
    if tag == _TAG_DOUBLE:
        return dec.unpack_double()
    if tag == _TAG_STRING:
        return dec.unpack_string()
    if tag == _TAG_BYTES:
        return dec.unpack_opaque()
    if tag == _TAG_LIST:
        count = dec.unpack_uint()
        return [_decode_from(dec) for _ in range(count)]
    if tag == _TAG_DICT:
        count = dec.unpack_uint()
        result: Dict[str, Any] = {}
        for _ in range(count):
            key = dec.unpack_string()
            result[key] = _decode_from(dec)
        return result
    if tag == _TAG_TYPED_PARAMS:
        return _decode_typed_params(dec)
    raise RPCError(f"unknown XDR value tag {tag}")


def _decode_typed_params(dec: XdrDecoder) -> "TypedParamList":
    count = dec.unpack_uint()
    params = TypedParamList()
    for _ in range(count):
        field = dec.unpack_string()
        ptype = ParamType(dec.unpack_uint())
        if ptype == ParamType.INT:
            value: Any = dec.unpack_int()
        elif ptype == ParamType.UINT:
            value = dec.unpack_uint()
        elif ptype == ParamType.LLONG:
            value = dec.unpack_hyper()
        elif ptype == ParamType.ULLONG:
            value = dec.unpack_uhyper()
        elif ptype == ParamType.DOUBLE:
            value = dec.unpack_double()
        elif ptype == ParamType.BOOLEAN:
            value = dec.unpack_bool()
        else:
            value = dec.unpack_string()
        params.append(TypedParameter(field, ptype, value))
    return params
