"""RPC client: call serialization, serial matching, event delivery,
per-call deadlines, and the client half of the keepalive protocol.

Resilience additions over the bare wire client:

* ``call(..., timeout=...)`` bounds how long one call may block; a lost
  reply costs exactly the deadline and raises
  :class:`~repro.errors.OperationTimeoutError`.
* ``enable_keepalive(interval, count)`` arms the PING/PONG program
  (mirroring libvirt's ``virKeepAlive``): an event-loop timer probes the
  daemon every ``interval`` modelled seconds, and after ``count``
  consecutive missed PONGs the connection is *declared dead* — in-flight
  and subsequent calls fail with
  :class:`~repro.errors.KeepaliveTimeoutError` instead of hanging.
* A desynchronized reply stream (serial mismatch, non-REPLY frame,
  unparsable reply) closes the channel: mispairing replies silently
  would be worse than failing every later call with
  :class:`~repro.errors.ConnectionClosedError`.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.errors import (
    ConnectionClosedError,
    InvalidArgumentError,
    KeepaliveTimeoutError,
    OperationTimeoutError,
    RPCError,
    TransportStalledError,
    VirtError,
)
from repro.rpc.protocol import (
    KEEPALIVE_PONG,
    MessageType,
    ReplyStatus,
    RPCMessage,
    is_keepalive,
    make_ping,
    procedure_number,
)
from repro.rpc.transport import Channel
from repro.util.eventloop import EventLoop

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.observability.metrics import MetricsRegistry


class RPCClient:
    """The client end of one RPC connection."""

    def __init__(
        self,
        channel: Channel,
        default_timeout: "Optional[float]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        self._channel = channel
        self._serials = itertools.count(1)
        self._event_handlers: Dict[int, Callable[[Any], None]] = {}
        self._lock = threading.Lock()
        self.calls_made = 0
        self.timeouts = 0
        #: per-call deadline applied when ``call`` gets no explicit one
        self.default_timeout = default_timeout
        self.metrics = metrics
        if metrics is not None:
            self._m_calls = metrics.counter(
                "rpc_client_calls_total", "RPC calls issued", ("procedure",)
            )
            self._m_latency = metrics.histogram(
                "rpc_client_call_seconds",
                "Modelled round-trip latency of successful RPC calls",
                ("procedure",),
            )
            self._m_timeouts = metrics.counter(
                "rpc_client_timeouts_total", "Calls that hit their deadline", ("procedure",)
            )
            self._m_errors = metrics.counter(
                "rpc_client_errors_total", "Structured error replies", ("procedure",)
            )
            self._m_pings = metrics.counter(
                "rpc_client_keepalive_pings_total", "Keepalive PINGs sent"
            )
            self._m_pongs = metrics.counter(
                "rpc_client_keepalive_pongs_total", "Keepalive PONGs received"
            )
            self._m_deaths = metrics.counter(
                "rpc_client_keepalive_deaths_total",
                "Connections declared dead (keepalive or desync)",
            )
        # -- keepalive state
        self.eventloop: "Optional[EventLoop]" = None
        self._ka_interval: "Optional[float]" = None
        self._ka_count = 0
        self._ka_missed = 0
        self._ka_timer: "Optional[int]" = None
        self._dead_reason: "Optional[str]" = None
        self.pings_sent = 0
        self.pongs_received = 0
        channel.set_event_handler(self._on_event_frame)

    @property
    def transport(self) -> str:
        return self._channel.spec.name

    @property
    def closed(self) -> bool:
        return self._channel.closed

    @property
    def dead(self) -> bool:
        """True once keepalive (or a desync) declared this link dead."""
        return self._dead_reason is not None

    @property
    def dead_reason(self) -> "Optional[str]":
        return self._dead_reason

    # -- keepalive ---------------------------------------------------------

    def enable_keepalive(
        self,
        interval: float,
        count: int = 5,
        eventloop: "Optional[EventLoop]" = None,
    ) -> None:
        """Arm client-side keepalive (``virConnectSetKeepAlive``).

        Every ``interval`` modelled seconds the event loop sends a PING;
        ``count`` consecutive missed PONGs declare the connection dead.
        Drive the timers with :meth:`tick` (or ``eventloop.drive``).
        """
        if interval <= 0:
            raise InvalidArgumentError("keepalive interval must be positive")
        if count < 1:
            raise InvalidArgumentError("keepalive count must be at least 1")
        self.disable_keepalive()
        self._ka_interval = interval
        self._ka_count = count
        self._ka_missed = 0
        self.eventloop = eventloop or EventLoop(self._channel.clock.now)
        self._ka_timer = self.eventloop.add_interval(interval, self._keepalive_probe)

    def disable_keepalive(self) -> None:
        if self._ka_timer is not None and self.eventloop is not None:
            self.eventloop.cancel(self._ka_timer)
        self._ka_timer = None
        self._ka_interval = None
        self._ka_count = 0
        self._ka_missed = 0

    @property
    def keepalive_enabled(self) -> bool:
        return self._ka_interval is not None

    @property
    def missed_pings(self) -> int:
        return self._ka_missed

    def tick(self) -> int:
        """Run due keepalive timers; returns how many fired."""
        if self.eventloop is None:
            return 0
        return self.eventloop.run_due()

    def send_ping(self, timeout: "Optional[float]" = None) -> bool:
        """One PING/PONG round trip; True when the PONG arrived."""
        if self._dead_reason is not None:
            raise KeepaliveTimeoutError(self._dead_reason)
        if self._channel.closed:
            raise ConnectionClosedError("RPC connection is closed")
        with self._lock:
            serial = next(self._serials)
            self.pings_sent += 1
        if self.metrics is not None:
            self._m_pings.inc()
        bound_in = timeout if timeout is not None else self._ka_interval
        wait_bound = (
            self._channel.clock.now() + bound_in if bound_in is not None else None
        )
        raw = self._channel.call_bytes(make_ping(serial).pack(), wait_bound=wait_bound)
        if raw is None:
            return False
        pong = RPCMessage.unpack(raw)
        if not is_keepalive(pong) or pong.procedure != KEEPALIVE_PONG:
            return False
        with self._lock:
            self.pongs_received += 1
        if self.metrics is not None:
            self._m_pongs.inc()
        return True

    def _keepalive_probe(self) -> None:
        """The interval-timer body: probe, count misses, declare death."""
        if self._dead_reason is not None or self._channel.closed:
            return
        try:
            if self.send_ping():
                self._ka_missed = 0
                return
        except TransportStalledError:
            pass
        except ConnectionClosedError as exc:
            self._declare_dead(f"keepalive probe failed: {exc}")
            return
        self._ka_missed += 1
        if self._ka_missed >= self._ka_count:
            self._declare_dead(
                f"keepalive: no response to {self._ka_missed} consecutive pings "
                f"({self._ka_interval:g}s apart)"
            )

    def _declare_dead(self, reason: str) -> None:
        self._dead_reason = reason
        if self.metrics is not None:
            self._m_deaths.inc()
        self._channel.abandon()
        if self._ka_timer is not None and self.eventloop is not None:
            self.eventloop.cancel(self._ka_timer)
            self._ka_timer = None

    # -- calls -------------------------------------------------------------

    def call(self, procedure: str, body: Any = None, timeout: "Optional[float]" = None) -> Any:
        """Invoke a remote procedure and return its result body.

        Server-side failures arrive as structured error replies and are
        re-raised here as the matching :class:`VirtError` subclass.

        ``timeout`` (defaulting to ``default_timeout``) bounds the wait
        for the reply.  With keepalive armed, the wait is additionally
        bounded by ``interval * count`` — the point at which the probe
        loop would have declared the connection dead under a blocked
        call, mirroring how libvirt aborts in-flight calls when
        ``virKeepAlive`` trips.
        """
        if self._dead_reason is not None:
            raise KeepaliveTimeoutError(f"connection declared dead: {self._dead_reason}")
        if self._channel.closed:
            raise ConnectionClosedError("RPC connection is closed")
        number = procedure_number(procedure)
        with self._lock:
            serial = next(self._serials)
            self.calls_made += 1
        if self.metrics is not None:
            self._m_calls.labels(procedure=procedure).inc()
        request = RPCMessage(number, MessageType.CALL, serial)
        request.body = body
        if timeout is None:
            timeout = self.default_timeout
        now = self._channel.clock.now()
        wait_bound: "Optional[float]" = None
        bound_is_keepalive = False
        if timeout is not None:
            if timeout <= 0:
                raise InvalidArgumentError("call timeout must be positive")
            wait_bound = now + timeout
        if self._ka_interval is not None:
            ka_bound = now + self._ka_interval * self._ka_count
            if wait_bound is None or ka_bound < wait_bound:
                wait_bound = ka_bound
                bound_is_keepalive = True
        try:
            raw_reply = self._channel.call_bytes(request.pack(), wait_bound=wait_bound)
        except TransportStalledError as exc:
            if wait_bound is None:
                raise  # TransportHangError: the unprotected client hung
            if bound_is_keepalive:
                self._declare_dead(
                    f"keepalive: connection unresponsive during {procedure!r} "
                    f"({self._ka_count} probe intervals elapsed)"
                )
                raise KeepaliveTimeoutError(self._dead_reason) from exc
            with self._lock:
                self.timeouts += 1
            if self.metrics is not None:
                self._m_timeouts.labels(procedure=procedure).inc()
            raise OperationTimeoutError(
                f"{procedure} got no reply within its {timeout:g}s deadline"
            ) from exc
        if raw_reply is None:
            self._desynchronize(f"no reply to {procedure}")
        try:
            reply = RPCMessage.unpack(raw_reply)
        except RPCError as exc:
            self._desynchronize(f"unparsable reply to {procedure}: {exc}")
        if reply.mtype != MessageType.REPLY:
            self._desynchronize(f"expected REPLY, got {reply.mtype.name}")
        if reply.serial != serial:
            self._desynchronize(
                f"serial mismatch: sent {serial}, got {reply.serial}"
            )
        if reply.status == ReplyStatus.ERROR:
            if not isinstance(reply.body, dict):
                self._desynchronize(f"malformed error body: {reply.body!r}")
            if self.metrics is not None:
                self._m_errors.labels(procedure=procedure).inc()
            raise VirtError.from_dict(reply.body)
        if self.metrics is not None:
            self._m_latency.labels(procedure=procedure).observe(
                self._channel.clock.now() - now
            )
        return reply.body

    def _desynchronize(self, why: str) -> None:
        """The reply stream can no longer be trusted: close the channel
        so every subsequent call fails loudly with
        ``ConnectionClosedError`` instead of silently mispairing
        replies, and raise for the current call."""
        self._channel.abandon()
        raise RPCError(f"{why} (channel closed: reply stream desynchronized)")

    # -- events -----------------------------------------------------------

    def on_event(self, event_id: int, handler: Callable[[Any], None]) -> None:
        """Register a callback for server-pushed EVENT frames."""
        with self._lock:
            self._event_handlers[event_id] = handler

    def remove_event_handler(self, event_id: int) -> None:
        with self._lock:
            self._event_handlers.pop(event_id, None)

    def _on_event_frame(self, data: bytes) -> None:
        try:
            message = RPCMessage.unpack(data)
        except RPCError:
            return  # a corrupted event frame is dropped, not fatal
        if message.mtype != MessageType.EVENT:
            return
        with self._lock:
            handler = self._event_handlers.get(message.procedure)
        if handler is not None:
            handler(message.body)

    def close(self) -> None:
        self.disable_keepalive()
        self._channel.close()
