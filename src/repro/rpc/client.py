"""RPC client: call serialization, serial matching, event delivery."""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, Optional

from repro.errors import ConnectionClosedError, RPCError, VirtError
from repro.rpc.protocol import (
    MessageType,
    ReplyStatus,
    RPCMessage,
    procedure_number,
)
from repro.rpc.transport import Channel


class RPCClient:
    """The client end of one RPC connection."""

    def __init__(self, channel: Channel) -> None:
        self._channel = channel
        self._serials = itertools.count(1)
        self._event_handlers: Dict[int, Callable[[Any], None]] = {}
        self._lock = threading.Lock()
        self.calls_made = 0
        channel.set_event_handler(self._on_event_frame)

    @property
    def transport(self) -> str:
        return self._channel.spec.name

    @property
    def closed(self) -> bool:
        return self._channel.closed

    def call(self, procedure: str, body: Any = None) -> Any:
        """Invoke a remote procedure and return its result body.

        Server-side failures arrive as structured error replies and are
        re-raised here as the matching :class:`VirtError` subclass.
        """
        if self._channel.closed:
            raise ConnectionClosedError("RPC connection is closed")
        number = procedure_number(procedure)
        with self._lock:
            serial = next(self._serials)
            self.calls_made += 1
        request = RPCMessage(number, MessageType.CALL, serial)
        request.body = body
        raw_reply = self._channel.call_bytes(request.pack())
        if raw_reply is None:
            raise RPCError(f"no reply to {procedure}")
        reply = RPCMessage.unpack(raw_reply)
        if reply.mtype != MessageType.REPLY:
            raise RPCError(f"expected REPLY, got {reply.mtype.name}")
        if reply.serial != serial:
            raise RPCError(f"serial mismatch: sent {serial}, got {reply.serial}")
        if reply.status == ReplyStatus.ERROR:
            if not isinstance(reply.body, dict):
                raise RPCError(f"malformed error body: {reply.body!r}")
            raise VirtError.from_dict(reply.body)
        return reply.body

    # -- events -----------------------------------------------------------

    def on_event(self, event_id: int, handler: Callable[[Any], None]) -> None:
        """Register a callback for server-pushed EVENT frames."""
        with self._lock:
            self._event_handlers[event_id] = handler

    def remove_event_handler(self, event_id: int) -> None:
        with self._lock:
            self._event_handlers.pop(event_id, None)

    def _on_event_frame(self, data: bytes) -> None:
        message = RPCMessage.unpack(data)
        if message.mtype != MessageType.EVENT:
            return
        with self._lock:
            handler = self._event_handlers.get(message.procedure)
        if handler is not None:
            handler(message.body)

    def close(self) -> None:
        self._channel.close()
