"""RPC client: call serialization, serial matching, event delivery,
per-call deadlines, and the client half of the keepalive protocol.

Resilience additions over the bare wire client:

* ``call(..., timeout=...)`` bounds how long one call may block; a lost
  reply costs exactly the deadline and raises
  :class:`~repro.errors.OperationTimeoutError`.
* ``enable_keepalive(interval, count)`` arms the PING/PONG program
  (mirroring libvirt's ``virKeepAlive``): an event-loop timer probes the
  daemon every ``interval`` modelled seconds, and after ``count``
  consecutive missed PONGs the connection is *declared dead* — in-flight
  and subsequent calls fail with
  :class:`~repro.errors.KeepaliveTimeoutError` instead of hanging.
* A desynchronized reply stream (serial mismatch, non-REPLY frame,
  unparsable reply) closes the channel: mispairing replies silently
  would be worse than failing every later call with
  :class:`~repro.errors.ConnectionClosedError`.

Concurrency: a server that dispatches through a workerpool answers
*asynchronously* and may deliver replies in any order.  The client
keeps a serial → pending-call correlation table; each REPLY frame is
matched to its call by serial, so several calls can be in flight on one
connection at once (``call_async`` starts a call without blocking, and
the returned handle's ``result()`` collects it).  Deadline and
keepalive semantics are unchanged: a reply that can never arrive
charges exactly the remaining wait on the caller's own clock.

Bulk data additions:

* ``open_stream(procedure, ...)`` issues a stream-carrying CALL and
  returns a :class:`~repro.stream.core.ClientStream` correlated by the
  call's serial; STREAM frames are demultiplexed off both the inline
  and pushed delivery paths.  Streams are torn down — never left
  dangling — on keepalive death, desync, and ``close``.
* ``call_many([...])`` coalesces several small CALL frames into one
  transport write (one per-message latency charge for the whole batch).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.errors import (
    ConnectionClosedError,
    InvalidArgumentError,
    KeepaliveTimeoutError,
    OperationTimeoutError,
    RPCError,
    TransportStalledError,
    VirtError,
)
from repro.rpc.protocol import (
    KEEPALIVE_PONG,
    STREAM_PROCEDURES,
    MessageType,
    ReplyStatus,
    RPCMessage,
    is_keepalive,
    make_ping,
    peek_message_type,
    procedure_number,
)
from repro.rpc.transport import Channel
from repro.stream.core import ClientStream
from repro.util.eventloop import EventLoop

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracing import Span, Tracer

#: real-time (not modelled) ceiling on waiting for an async reply — a
#: backstop against a wedged dispatcher, far above any legitimate wait
REPLY_WAIT_BACKSTOP = 60.0


class _PendingCall:
    """One call awaiting its reply, keyed by serial."""

    __slots__ = (
        "serial",
        "procedure",
        "timeout",
        "wait_bound",
        "bound_is_keepalive",
        "started",
        "cond",
        "outcome",
        "raw",
        "reason",
        "span",
    )

    def __init__(
        self,
        serial: int,
        procedure: str,
        timeout: "Optional[float]",
        wait_bound: "Optional[float]",
        bound_is_keepalive: bool,
        started: float,
    ) -> None:
        self.serial = serial
        self.procedure = procedure
        self.timeout = timeout
        self.wait_bound = wait_bound
        self.bound_is_keepalive = bound_is_keepalive
        self.started = started
        self.cond = threading.Condition()
        #: None while in flight; then "reply" | "lost" | "closed" | "desync"
        self.outcome: "Optional[str]" = None
        self.raw: "Optional[bytes]" = None
        self.reason: "Optional[str]" = None
        #: detached rpc.call span (tracing enabled only)
        self.span: "Optional[Span]" = None

    def resolve(self, outcome: str, raw: "Optional[bytes]" = None, reason: "Optional[str]" = None) -> None:
        with self.cond:
            if self.outcome is not None:
                return  # first resolution wins
            self.outcome = outcome
            self.raw = raw
            self.reason = reason
            self.cond.notify_all()


class PendingReply:
    """Handle to one in-flight call (see :meth:`RPCClient.call_async`)."""

    __slots__ = ("_client", "_entry", "_done", "_result", "_failure")

    def __init__(self, client: "RPCClient", entry: _PendingCall) -> None:
        self._client = client
        self._entry = entry
        self._done = False
        self._result: Any = None
        self._failure: "Optional[BaseException]" = None

    @property
    def serial(self) -> int:
        return self._entry.serial

    @property
    def procedure(self) -> str:
        return self._entry.procedure

    def done(self) -> bool:
        """True once the reply (or its loss) is known without blocking."""
        return self._done or self._entry.outcome is not None

    def result(self) -> Any:
        """Block until the reply arrives and return its body (idempotent)."""
        if not self._done:
            try:
                self._result = self._client._finish_call(self._entry)
            except BaseException as exc:
                self._failure = exc
            self._done = True
        if self._failure is not None:
            raise self._failure
        return self._result


class RPCClient:
    """The client end of one RPC connection."""

    def __init__(
        self,
        channel: Channel,
        default_timeout: "Optional[float]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
        tracer: "Optional[Tracer]" = None,
    ) -> None:
        self._channel = channel
        #: optional Tracer; when set, every call opens a detached
        #: ``rpc.call`` span and stamps its context onto the CALL frame
        self.tracer = tracer
        self._serials = itertools.count(1)
        self._event_handlers: Dict[int, Callable[[Any], None]] = {}
        self._pending: Dict[int, _PendingCall] = {}
        #: open streams keyed by their opening call's serial
        self._streams: Dict[int, ClientStream] = {}
        self._lock = threading.Lock()
        self.calls_made = 0
        self.timeouts = 0
        #: replies that overtook an earlier outstanding serial
        self.replies_out_of_order = 0
        #: per-call deadline applied when ``call`` gets no explicit one
        self.default_timeout = default_timeout
        self.metrics = metrics
        if metrics is not None:
            self._m_calls = metrics.counter(
                "rpc_client_calls_total", "RPC calls issued", ("procedure",)
            )
            self._m_latency = metrics.histogram(
                "rpc_client_call_seconds",
                "Modelled round-trip latency of successful RPC calls",
                ("procedure",),
            )
            self._m_timeouts = metrics.counter(
                "rpc_client_timeouts_total", "Calls that hit their deadline", ("procedure",)
            )
            self._m_errors = metrics.counter(
                "rpc_client_errors_total", "Structured error replies", ("procedure",)
            )
            self._m_pings = metrics.counter(
                "rpc_client_keepalive_pings_total", "Keepalive PINGs sent"
            )
            self._m_pongs = metrics.counter(
                "rpc_client_keepalive_pongs_total", "Keepalive PONGs received"
            )
            self._m_deaths = metrics.counter(
                "rpc_client_keepalive_deaths_total",
                "Connections declared dead (keepalive or desync)",
            )
            self._m_ooo = metrics.counter(
                "rpc_client_out_of_order_replies_total",
                "REPLY frames that overtook an earlier outstanding serial",
            )
        # -- keepalive state
        self.eventloop: "Optional[EventLoop]" = None
        self._ka_interval: "Optional[float]" = None
        self._ka_count = 0
        self._ka_missed = 0
        self._ka_timer: "Optional[int]" = None
        self._dead_reason: "Optional[str]" = None
        self.pings_sent = 0
        self.pongs_received = 0
        channel.set_event_handler(self._on_event_frame)
        channel.set_reply_handler(self._on_reply_frame)
        channel.set_reply_lost_handler(self._on_reply_lost)

    @property
    def transport(self) -> str:
        return self._channel.spec.name

    @property
    def closed(self) -> bool:
        return self._channel.closed

    @property
    def dead(self) -> bool:
        """True once keepalive (or a desync) declared this link dead."""
        return self._dead_reason is not None

    @property
    def dead_reason(self) -> "Optional[str]":
        return self._dead_reason

    @property
    def calls_in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- keepalive ---------------------------------------------------------

    def enable_keepalive(
        self,
        interval: float,
        count: int = 5,
        eventloop: "Optional[EventLoop]" = None,
    ) -> None:
        """Arm client-side keepalive (``virConnectSetKeepAlive``).

        Every ``interval`` modelled seconds the event loop sends a PING;
        ``count`` consecutive missed PONGs declare the connection dead.
        Drive the timers with :meth:`tick` (or ``eventloop.drive``).
        """
        if interval <= 0:
            raise InvalidArgumentError("keepalive interval must be positive")
        if count < 1:
            raise InvalidArgumentError("keepalive count must be at least 1")
        self.disable_keepalive()
        self._ka_interval = interval
        self._ka_count = count
        self._ka_missed = 0
        self.eventloop = eventloop or EventLoop(self._channel.clock.now)
        self._ka_timer = self.eventloop.add_interval(interval, self._keepalive_probe)

    def disable_keepalive(self) -> None:
        if self._ka_timer is not None and self.eventloop is not None:
            self.eventloop.cancel(self._ka_timer)
        self._ka_timer = None
        self._ka_interval = None
        self._ka_count = 0
        self._ka_missed = 0

    @property
    def keepalive_enabled(self) -> bool:
        return self._ka_interval is not None

    @property
    def missed_pings(self) -> int:
        return self._ka_missed

    def tick(self) -> int:
        """Run due keepalive timers; returns how many fired."""
        if self.eventloop is None:
            return 0
        return self.eventloop.run_due()

    def send_ping(self, timeout: "Optional[float]" = None) -> bool:
        """One PING/PONG round trip; True when the PONG arrived."""
        if self._dead_reason is not None:
            raise KeepaliveTimeoutError(self._dead_reason)
        if self._channel.closed:
            raise ConnectionClosedError("RPC connection is closed")
        with self._lock:
            serial = next(self._serials)
            self.pings_sent += 1
        if self.metrics is not None:
            self._m_pings.inc()
        bound_in = timeout if timeout is not None else self._ka_interval
        wait_bound = (
            self._channel.clock.now() + bound_in if bound_in is not None else None
        )
        # keepalive is answered inline even by pooled servers, so the
        # synchronous round trip is always valid here
        raw = self._channel.call_bytes(make_ping(serial).pack(), wait_bound=wait_bound)
        if raw is None:
            return False
        pong = RPCMessage.unpack(raw)
        if not is_keepalive(pong) or pong.procedure != KEEPALIVE_PONG:
            return False
        with self._lock:
            self.pongs_received += 1
        if self.metrics is not None:
            self._m_pongs.inc()
        return True

    def _keepalive_probe(self) -> None:
        """The interval-timer body: probe, count misses, declare death."""
        if self._dead_reason is not None or self._channel.closed:
            return
        try:
            if self.send_ping():
                self._ka_missed = 0
                return
        except TransportStalledError:
            pass
        except ConnectionClosedError as exc:
            self._declare_dead(f"keepalive probe failed: {exc}")
            return
        self._ka_missed += 1
        if self._ka_missed >= self._ka_count:
            self._declare_dead(
                f"keepalive: no response to {self._ka_missed} consecutive pings "
                f"({self._ka_interval:g}s apart)"
            )

    def _declare_dead(self, reason: str) -> None:
        self._dead_reason = reason
        if self.metrics is not None:
            self._m_deaths.inc()
        self._channel.abandon()
        self._abort_all_streams(reason)
        if self._ka_timer is not None and self.eventloop is not None:
            self.eventloop.cancel(self._ka_timer)
            self._ka_timer = None

    # -- calls -------------------------------------------------------------

    def call(self, procedure: str, body: Any = None, timeout: "Optional[float]" = None) -> Any:
        """Invoke a remote procedure and return its result body.

        Server-side failures arrive as structured error replies and are
        re-raised here as the matching :class:`VirtError` subclass.

        ``timeout`` (defaulting to ``default_timeout``) bounds the wait
        for the reply.  With keepalive armed, the wait is additionally
        bounded by ``interval * count`` — the point at which the probe
        loop would have declared the connection dead under a blocked
        call, mirroring how libvirt aborts in-flight calls when
        ``virKeepAlive`` trips.
        """
        return self._finish_call(self._start_call(procedure, body, timeout))

    def call_async(
        self, procedure: str, body: Any = None, timeout: "Optional[float]" = None
    ) -> PendingReply:
        """Start a call without waiting for its reply.

        Several calls may be pipelined on the connection this way; the
        server executes them concurrently (up to its
        ``max_client_requests`` window) and each reply is correlated
        back by serial.  Collect with :meth:`PendingReply.result`, which
        applies the same deadline/keepalive semantics as :meth:`call`.
        """
        return PendingReply(self, self._start_call(procedure, body, timeout))

    def call_many(
        self,
        calls: "list[tuple[str, Any]]",
        timeout: "Optional[float]" = None,
    ) -> "list[Any]":
        """Issue several calls as one coalesced transport write.

        ``calls`` is a list of ``(procedure, body)`` pairs.  The whole
        batch pays the per-message transport latency once instead of
        once per call — the win for many small calls (bulk status
        polls, fleet sweeps).  Replies are still correlated per serial,
        results are returned in input order, and the first failure is
        re-raised after every reply has been collected.
        """
        if not calls:
            return []
        entries = []
        frames = []
        for procedure, body in calls:
            entry, frame = self._prepare_call(procedure, body, timeout)
            entries.append(entry)
            frames.append(frame)
        try:
            outcomes = self._channel.send_batch(
                frames,
                wait_bound=entries[0].wait_bound,
                tokens=[entry.serial for entry in entries],
            )
        except BaseException as exc:
            for entry in entries:
                self._forget(entry)
                self._finish_span(entry, error=repr(exc))
            raise
        for entry, (kind, raw) in zip(entries, outcomes):
            if kind == "reply":
                self._forget(entry)
                if raw is None:
                    self._desynchronize(f"no reply to {entry.procedure}")
                entry.resolve("reply", raw=raw)
            # "pending" resolves via _on_reply_frame; "lost" was already
            # resolved through the reply-lost handler
        results: "list[Any]" = []
        first_failure: "Optional[BaseException]" = None
        for entry in entries:
            try:
                results.append(self._finish_call(entry))
            except BaseException as exc:  # collect every reply regardless
                results.append(None)
                if first_failure is None:
                    first_failure = exc
        if first_failure is not None:
            raise first_failure
        return results

    # -- streams -----------------------------------------------------------

    def open_stream(
        self, procedure: str, body: Any = None, timeout: "Optional[float]" = None
    ) -> ClientStream:
        """Issue a stream-carrying CALL and return its client stream.

        The stream is registered *before* the CALL goes out: a server
        that starts pushing chunks while still dispatching the opening
        call (every download does) finds the buffer already in place.
        The opening reply's body lands on ``stream.info``.

        Stream procedures are deliberately absent from the idempotent
        retry allowlist — replaying an upload after a lost reply would
        duplicate bytes — so unlike :meth:`call` this path never
        retries.
        """
        if procedure not in STREAM_PROCEDURES:
            raise InvalidArgumentError(
                f"procedure {procedure!r} does not carry a stream"
            )
        with self._lock:
            serial = next(self._serials)
        stream = ClientStream(self, procedure, procedure_number(procedure), serial)
        with self._lock:
            self._streams[serial] = stream
        try:
            entry = self._start_call(procedure, body, timeout, serial=serial)
            stream.info = self._finish_call(entry)
        except BaseException as exc:
            self._forget_stream(serial)
            if stream.state == "open":
                stream.state = "aborted"
                stream.error = (
                    exc
                    if isinstance(exc, VirtError)
                    else RPCError(f"stream open failed: {exc}")
                )
            raise
        if stream.state == "aborted":
            raise stream.error
        return stream

    def _send_stream_frame(self, frame: bytes) -> bool:
        """Push one STREAM frame; True when it reached the server."""
        if self._dead_reason is not None:
            raise ConnectionClosedError(
                f"connection declared dead: {self._dead_reason}"
            )
        return self._channel.send_oneway(frame)

    def _stream_link_ok(self) -> bool:
        return not (
            self._channel.closed
            or self._channel.severed
            or self._dead_reason is not None
        )

    def _forget_stream(self, serial: int) -> None:
        with self._lock:
            self._streams.pop(serial, None)

    @property
    def streams_open(self) -> int:
        with self._lock:
            return len(self._streams)

    def _abort_all_streams(self, reason: str) -> None:
        """Teardown every open stream (link died): nothing may dangle."""
        with self._lock:
            streams = list(self._streams.values())
            self._streams.clear()
        for stream in streams:
            stream._local_abort(reason)

    def _on_stream_frame(self, data: bytes) -> None:
        try:
            message = RPCMessage.unpack(memoryview(data))
        except RPCError:
            # a corrupted stream frame leaves a hole in the byte
            # stream; the stalled stream aborts at the next recv/finish
            return
        with self._lock:
            stream = self._streams.get(message.serial)
        if stream is not None:
            stream._on_frame(message)

    def _prepare_call(
        self,
        procedure: str,
        body: Any,
        timeout: "Optional[float]",
        serial: "Optional[int]" = None,
    ) -> "tuple[_PendingCall, bytes]":
        """Build the CALL frame and register the pending entry.

        Shared by the single-call path, the batched path
        (:meth:`call_many`) and the stream-opening path
        (:meth:`open_stream`, which pre-allocates the serial so the
        stream can be registered before the frame goes out)."""
        if self._dead_reason is not None:
            raise KeepaliveTimeoutError(f"connection declared dead: {self._dead_reason}")
        if self._channel.closed:
            raise ConnectionClosedError("RPC connection is closed")
        number = procedure_number(procedure)
        if timeout is None:
            timeout = self.default_timeout
        if timeout is not None and timeout <= 0:
            raise InvalidArgumentError("call timeout must be positive")
        with self._lock:
            if serial is None:
                serial = next(self._serials)
            self.calls_made += 1
        if self.metrics is not None:
            self._m_calls.labels(procedure=procedure).inc()
        request = RPCMessage(number, MessageType.CALL, serial)
        request.body = body
        span: "Optional[Span]" = None
        if self.tracer is not None:
            # detached (never on the thread stack): pipelined calls from
            # one thread must stay siblings, and the reply may be
            # collected from a different thread than the one that sent
            span = self.tracer.start_span(
                "rpc.call",
                procedure=procedure,
                transport=self.transport,
                serial=serial,
            )
            request.trace = span.context.to_wire()
        now = self._channel.clock.now()
        wait_bound: "Optional[float]" = None
        bound_is_keepalive = False
        if timeout is not None:
            wait_bound = now + timeout
        if self._ka_interval is not None:
            ka_bound = now + self._ka_interval * self._ka_count
            if wait_bound is None or ka_bound < wait_bound:
                wait_bound = ka_bound
                bound_is_keepalive = True
        entry = _PendingCall(serial, procedure, timeout, wait_bound, bound_is_keepalive, now)
        entry.span = span
        with self._lock:
            self._pending[serial] = entry
        return entry, request.pack()

    def _start_call(
        self,
        procedure: str,
        body: Any,
        timeout: "Optional[float]",
        serial: "Optional[int]" = None,
    ) -> _PendingCall:
        """Send the CALL frame and register the pending entry."""
        entry, frame = self._prepare_call(procedure, body, timeout, serial=serial)
        try:
            inline, pending = self._channel.send_request(
                frame, wait_bound=entry.wait_bound, token=entry.serial
            )
        except TransportStalledError as exc:
            self._forget(entry)
            self._finish_span(entry, error=repr(exc))
            self._map_stall(exc, entry)
            raise  # pragma: no cover - _map_stall always raises
        except BaseException as exc:
            self._forget(entry)
            self._finish_span(entry, error=repr(exc))
            raise
        if not pending:
            # synchronous server: the reply came back inline
            self._forget(entry)
            if inline is None:
                self._desynchronize(f"no reply to {procedure}")
            entry.resolve("reply", raw=inline)
        return entry

    def _finish_call(self, entry: _PendingCall) -> Any:
        """Wait for the reply and translate it, or the loss of it,
        closing the call's span with the outcome either way."""
        try:
            result = self._finish_call_inner(entry)
        except BaseException as exc:
            self._finish_span(entry, error=repr(exc))
            raise
        self._finish_span(entry)
        return result

    def _finish_span(self, entry: _PendingCall, error: "Optional[str]" = None) -> None:
        if entry.span is None or self.tracer is None or entry.span.finished:
            return
        entry.span.set_attribute("status", "error" if error is not None else "ok")
        self.tracer.finish_span(entry.span, error=error)

    def _finish_call_inner(self, entry: _PendingCall) -> Any:
        self._wait_for_outcome(entry)
        if entry.outcome == "lost":
            # the transport told us no reply is coming; charge the wait
            # on this caller's clock, exactly as the synchronous path does
            try:
                self._channel.charge_stall(
                    entry.wait_bound, f"reply to {entry.procedure} lost"
                )
            except TransportStalledError as exc:
                self._map_stall(exc, entry)
                raise  # pragma: no cover - _map_stall always raises
        if entry.outcome == "closed":
            raise ConnectionClosedError(
                entry.reason or "connection closed with the call in flight"
            )
        if entry.outcome == "desync":
            raise RPCError(entry.reason or "reply stream desynchronized")
        raw_reply = entry.raw
        try:
            reply = RPCMessage.unpack(raw_reply)
        except RPCError as exc:
            self._desynchronize(f"unparsable reply to {entry.procedure}: {exc}")
        if reply.mtype != MessageType.REPLY:
            self._desynchronize(f"expected REPLY, got {reply.mtype.name}")
        if reply.serial != entry.serial:
            self._desynchronize(
                f"serial mismatch: sent {entry.serial}, got {reply.serial}"
            )
        if reply.status == ReplyStatus.ERROR:
            if not isinstance(reply.body, dict):
                self._desynchronize(f"malformed error body: {reply.body!r}")
            if self.metrics is not None:
                self._m_errors.labels(procedure=entry.procedure).inc()
            raise VirtError.from_dict(reply.body)
        if self.metrics is not None:
            self._m_latency.labels(procedure=entry.procedure).observe(
                self._channel.clock.now() - entry.started
            )
        return reply.body

    def _wait_for_outcome(self, entry: _PendingCall) -> None:
        with entry.cond:
            if entry.outcome is not None:
                return
            deadline = time.monotonic() + REPLY_WAIT_BACKSTOP
            while entry.outcome is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RPCError(
                        f"no reply to {entry.procedure} after "
                        f"{REPLY_WAIT_BACKSTOP:g}s of real time (dispatch wedged)"
                    )
                entry.cond.wait(remaining)

    def _map_stall(self, exc: TransportStalledError, entry: _PendingCall) -> None:
        """Translate a transport stall into the user-facing error."""
        if entry.wait_bound is None:
            raise exc  # TransportHangError: the unprotected client hung
        if entry.bound_is_keepalive:
            self._declare_dead(
                f"keepalive: connection unresponsive during {entry.procedure!r} "
                f"({self._ka_count} probe intervals elapsed)"
            )
            raise KeepaliveTimeoutError(self._dead_reason) from exc
        with self._lock:
            self.timeouts += 1
        if self.metrics is not None:
            self._m_timeouts.labels(procedure=entry.procedure).inc()
        raise OperationTimeoutError(
            f"{entry.procedure} got no reply within its {entry.timeout:g}s deadline"
        ) from exc

    def _forget(self, entry: _PendingCall) -> None:
        with self._lock:
            self._pending.pop(entry.serial, None)

    # -- asynchronous reply demultiplexing ---------------------------------

    def _on_reply_frame(self, data: bytes) -> None:
        """Channel delivery of a deferred REPLY frame (worker thread)."""
        if peek_message_type(data) == MessageType.STREAM:
            self._on_stream_frame(data)
            return
        try:
            message = RPCMessage.unpack(data)
        except RPCError as exc:
            self._fail_all_pending(f"unparsable reply: {exc}")
            return
        if message.mtype != MessageType.REPLY:
            self._fail_all_pending(f"expected REPLY, got {message.mtype.name}")
            return
        with self._lock:
            entry = self._pending.pop(message.serial, None)
            out_of_order = entry is not None and any(
                serial < message.serial for serial in self._pending
            )
            if out_of_order:
                self.replies_out_of_order += 1
        if entry is None:
            self._fail_all_pending(
                f"serial mismatch: reply {message.serial} matches no outstanding call"
            )
            return
        if out_of_order and self.metrics is not None:
            self._m_ooo.inc()
        entry.resolve("reply", raw=data)

    def _on_reply_lost(self, token: Any, reason: str) -> None:
        """Channel notification that a pending reply can never arrive."""
        with self._lock:
            entry = self._pending.pop(token, None)
        if entry is None:
            return
        if reason == "closed":
            entry.resolve("closed", reason="connection closed with the call in flight")
        else:
            entry.resolve("lost")

    def _fail_all_pending(self, why: str) -> None:
        """Async-path desync: no frame can be trusted to correlate any
        more, so the channel closes and every waiter fails loudly."""
        reason = f"{why} (channel closed: reply stream desynchronized)"
        with self._lock:
            entries = list(self._pending.values())
            self._pending.clear()
        self._channel.abandon()
        for entry in entries:
            entry.resolve("desync", reason=reason)
        self._abort_all_streams(reason)

    def _desynchronize(self, why: str) -> None:
        """The reply stream can no longer be trusted: close the channel
        so every subsequent call fails loudly with
        ``ConnectionClosedError`` instead of silently mispairing
        replies, and raise for the current call."""
        self._channel.abandon()
        raise RPCError(f"{why} (channel closed: reply stream desynchronized)")

    # -- events -----------------------------------------------------------

    def on_event(self, event_id: int, handler: Callable[[Any], None]) -> None:
        """Register a callback for server-pushed EVENT frames."""
        with self._lock:
            self._event_handlers[event_id] = handler

    def remove_event_handler(self, event_id: int) -> None:
        with self._lock:
            self._event_handlers.pop(event_id, None)

    def _on_event_frame(self, data: bytes) -> None:
        if peek_message_type(data) == MessageType.STREAM:
            self._on_stream_frame(data)
            return
        try:
            message = RPCMessage.unpack(data)
        except RPCError:
            return  # a corrupted event frame is dropped, not fatal
        if message.mtype != MessageType.EVENT:
            return
        with self._lock:
            handler = self._event_handlers.get(message.procedure)
        if handler is not None:
            handler(message.body)

    def close(self) -> None:
        self.disable_keepalive()
        self._abort_all_streams("connection closed")
        self._channel.close()
