"""Connection transports with per-transport latency models.

Libvirt supports several transports for the client↔daemon link, with
very different cost profiles.  Real bytes flow through these channels
(the messages are genuinely packed/unpacked); only the physical link
latency is modelled, charged on a shared clock:

========= ================= ==================== =========================
transport connect cost      per-message latency  bandwidth
========= ================= ==================== =========================
local     ~0 (in-process)   ~0                   ∞ (function call)
unix      socket connect    kernel round trip    memory speed
tcp       3-way handshake   LAN RTT              ~1 GiB/s
tls       + TLS handshake   RTT + crypto         ~0.4 GiB/s (AES overhead)
ssh       + exec ssh + auth RTT + ssh framing    ~0.3 GiB/s
========= ================= ==================== =========================
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.errors import (
    AuthenticationError,
    ConnectionClosedError,
    InvalidArgumentError,
    RPCError,
    TransportHangError,
    TransportStalledError,
)
from repro.util.clock import Clock, VirtualClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan
    from repro.observability.metrics import MetricsRegistry

#: modelled stand-in for "blocked forever": a client with no deadline
#: and no keepalive charges a full day of simulated time on a dead link
HANG_SECONDS = 86400.0

#: sentinel a message handler returns when the REPLY frame will be
#: produced later (pooled dispatch) and delivered through
#: :meth:`ServerConnection.send_reply` instead of the handler's return
ASYNC_REPLY: Any = object()


class TransportSpec:
    """The latency/bandwidth profile of one transport kind."""

    def __init__(
        self,
        name: str,
        connect_latency: float,
        per_message_latency: float,
        bytes_per_second: float,
        encrypted: bool,
        local: bool,
    ) -> None:
        if connect_latency < 0 or per_message_latency < 0:
            raise InvalidArgumentError("latencies must be non-negative")
        if bytes_per_second <= 0:
            raise InvalidArgumentError("bandwidth must be positive")
        self.name = name
        self.connect_latency = connect_latency
        self.per_message_latency = per_message_latency
        self.bytes_per_second = bytes_per_second
        self.encrypted = encrypted
        self.local = local

    def message_latency(self, num_bytes: int) -> float:
        """One-way latency for a message of ``num_bytes``."""
        return self.per_message_latency + num_bytes / self.bytes_per_second


TRANSPORT_SPECS: Dict[str, TransportSpec] = {
    "local": TransportSpec("local", 0.0, 0.0, 64e9, encrypted=False, local=True),
    "unix": TransportSpec("unix", 50e-6, 25e-6, 2e9, encrypted=False, local=True),
    "tcp": TransportSpec("tcp", 350e-6, 120e-6, 1e9, encrypted=False, local=False),
    "tls": TransportSpec("tls", 2.8e-3, 160e-6, 0.4e9, encrypted=True, local=False),
    "ssh": TransportSpec("ssh", 55e-3, 220e-6, 0.3e9, encrypted=True, local=False),
    "libssh2": TransportSpec("libssh2", 48e-3, 210e-6, 0.3e9, encrypted=True, local=False),
}


def spec_for(name: str) -> TransportSpec:
    try:
        return TRANSPORT_SPECS[name]
    except KeyError:
        raise InvalidArgumentError(f"unknown transport {name!r}") from None


class ServerConnection:
    """The daemon-side endpoint of one accepted client channel."""

    def __init__(self, listener: "Listener", channel: "Channel", identity: Dict[str, Any]) -> None:
        self.listener = listener
        self.channel = channel
        #: who the transport says this client is (uid, username, sock addr…)
        self.identity = identity
        self._handler: "Optional[Callable[[bytes], Optional[bytes]]]" = None
        self.closed = False
        self.bytes_in = 0
        self.bytes_out = 0
        # per-thread dispatch context: the frame index of the message a
        # handler is currently processing on this thread, so a pooled
        # dispatcher can echo it back through send_reply
        self._dispatch_ctx = threading.local()

    def set_handler(self, handler: Callable[[bytes], Optional[bytes]]) -> None:
        """Install the message handler (called once per client frame)."""
        self._handler = handler

    @property
    def current_frame_index(self) -> "Optional[int]":
        """The frame index being handled on the calling thread (if any)."""
        return getattr(self._dispatch_ctx, "frame_index", None)

    def handle(self, data: bytes, frame_index: "Optional[int]" = None) -> Optional[bytes]:
        if self.closed:
            raise ConnectionClosedError("server side of the connection is closed")
        if self._handler is None:
            raise ConnectionClosedError("no message handler installed")
        self.bytes_in += len(data)
        self.listener._record_bytes(received=len(data))
        self._dispatch_ctx.frame_index = frame_index
        try:
            reply = self._handler(data)
        finally:
            self._dispatch_ctx.frame_index = None
        if reply is not None and reply is not ASYNC_REPLY:
            self.bytes_out += len(reply)
            self.listener._record_bytes(sent=len(reply))
        return reply

    def send_reply(self, data: bytes, frame_index: "Optional[int]") -> None:
        """Deliver an asynchronously produced REPLY frame to the client.

        A reply for a connection that has since closed vanishes, like
        bytes written to a half-closed socket — the client side charges
        its own deadline instead.
        """
        if self.closed or self.channel.closed or frame_index is None:
            return
        self.bytes_out += len(data)
        self.listener._record_bytes(sent=len(data))
        self.channel._deliver_reply(data, frame_index)

    def push(self, data: bytes) -> None:
        """Server-initiated message (events) to the client."""
        if self.closed or self.channel.closed:
            raise ConnectionClosedError("cannot push on a closed connection")
        self.bytes_out += len(data)
        self.listener._record_bytes(sent=len(data))
        self.channel._deliver_event(data)

    def close(self) -> None:
        """Force-close from the server side (client-disconnect path)."""
        if self.closed:
            return
        self.closed = True
        self.channel.closed = True
        self.listener._forget(self)
        self.channel._fail_inflight("closed")


class Channel:
    """The client-side endpoint."""

    def __init__(self, spec: TransportSpec, clock: Clock, server_conn_ref: "list") -> None:
        self.spec = spec
        self.clock = clock
        self._server_conn_ref = server_conn_ref  # late-bound [ServerConnection]
        self.closed = False
        #: silently cut: the peer is gone but this side was never told
        self.severed = False
        self._event_handler: "Optional[Callable[[bytes], None]]" = None
        #: receives asynchronously delivered REPLY frames (pooled dispatch)
        self._reply_handler: "Optional[Callable[[bytes], None]]" = None
        #: told (token, reason) when a pending reply can never arrive;
        #: reason is "lost" (silent link death) or "closed" (clean close)
        self._reply_lost_handler: "Optional[Callable[[Any, str], None]]" = None
        self._faults: "Optional[FaultPlan]" = None
        #: frame index → caller-supplied correlation token, for frames
        #: whose reply is still owed by the server
        self._inflight: Dict[int, Any] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_lost = 0
        self._lock = threading.Lock()

    @property
    def _server_conn(self) -> ServerConnection:
        return self._server_conn_ref[0]

    # -- fault injection ---------------------------------------------------

    def install_fault_plan(self, plan: "Optional[FaultPlan]") -> None:
        """Route every frame on this channel through ``plan``."""
        self._faults = plan

    def _record_fault(self, kind: str) -> None:
        conn = self._server_conn
        if conn is not None:
            conn.listener._record_fault(kind)

    def sever(self) -> None:
        """Cut the link silently: tear down the server side without
        notifying this endpoint (a pulled cable, not a clean close)."""
        self.severed = True
        conn = self._server_conn
        if conn is not None and not conn.closed:
            conn.closed = True
            conn.listener._forget(conn)
        self._fail_inflight("lost")

    def abandon(self) -> None:
        """Close this side only — for links already declared dead, where
        reaching through to the peer would be cheating the simulation."""
        self.closed = True
        self._fail_inflight("closed")

    def _record_lost_frame(self) -> None:
        with self._lock:
            self.frames_lost += 1
        conn = self._server_conn
        if conn is not None:
            conn.listener._record_loss()

    def charge_stall(self, wait_bound: "Optional[float]", what: str) -> None:
        """The reply is known lost; charge the caller's wait and raise.

        With a bound, exactly the remaining wait is charged and
        :class:`~repro.errors.TransportStalledError` raised; without
        one, :data:`HANG_SECONDS` and
        :class:`~repro.errors.TransportHangError` — the deterministic
        model of a client hanging forever.
        """
        if wait_bound is None:
            self.clock.sleep(HANG_SECONDS)
            raise TransportHangError(
                f"{what}: no reply and no deadline — call hung "
                f"({HANG_SECONDS:.0f}s of modelled time lost)"
            )
        now = self.clock.now()
        if wait_bound > now:
            self.clock.sleep(wait_bound - now)
        raise TransportStalledError(f"{what}: no reply within wait bound")

    def _stall(self, wait_bound: "Optional[float]", what: str) -> None:
        """No reply is ever coming; charge the wait and raise."""
        self._record_lost_frame()
        self.charge_stall(wait_bound, what)

    def _fail_inflight(self, reason: str) -> None:
        """Resolve every reply still owed on this channel as undeliverable."""
        with self._lock:
            entries = list(self._inflight.items())
            self._inflight.clear()
        handler = self._reply_lost_handler
        for _frame_index, token in entries:
            if reason == "lost":
                self._record_lost_frame()
            if handler is not None:
                handler(token, reason)

    @property
    def inflight_requests(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- calls -------------------------------------------------------------

    def call_bytes(self, data: bytes, wait_bound: "Optional[float]" = None) -> Optional[bytes]:
        """Deliver one frame and return the reply frame, charging latency.

        The fully synchronous form of :meth:`send_request`: only valid
        against servers that answer inline (no workerpool).  ``wait_bound``
        is the absolute modelled time the caller is willing to block
        until; when the reply is lost the channel charges exactly that
        wait and raises :class:`~repro.errors.TransportStalledError`
        (:class:`~repro.errors.TransportHangError` without a bound).
        """
        reply, pending = self.send_request(data, wait_bound=wait_bound)
        if pending:
            raise RPCError(
                "server dispatched the call asynchronously; "
                "call_bytes cannot correlate deferred replies"
            )
        return reply

    def send_request(
        self,
        data: bytes,
        wait_bound: "Optional[float]" = None,
        token: Any = None,
    ) -> "Tuple[Optional[bytes], bool]":
        """Deliver one frame; returns ``(inline_reply, pending)``.

        ``pending=True`` means the server deferred the reply to its
        workerpool: the REPLY frame will arrive later through the
        reply handler (or the reply-lost handler), correlated by the
        caller-supplied opaque ``token``.
        """
        if self.closed:
            raise ConnectionClosedError(f"{self.spec.name} channel is closed")
        with self._lock:
            frame_index = self.frames_sent
            self.frames_sent += 1
        plan = self._faults
        extra_delay = 0.0
        duplicate = False
        if plan is not None:
            from repro.faults.plan import FaultKind

            decision = plan.decide("send", frame_index, self.clock.now())
            if decision.kind is not None:
                self._record_fault(decision.kind.value)
            if decision.kind is FaultKind.SEVER:
                self.sever()
            elif decision.kind is FaultKind.DROP:
                self._stall(wait_bound, f"frame {frame_index} dropped")
            elif decision.kind is FaultKind.DELAY:
                extra_delay = decision.delay
            elif decision.kind is FaultKind.DUPLICATE:
                duplicate = True
            elif decision.kind is FaultKind.CORRUPT:
                data = plan.corrupt_bytes(data)
        if self.severed or (plan is not None and plan.blackholed):
            self._stall(wait_bound, f"frame {frame_index} lost on dead link")
        # detect the closed peer before charging latency or counting the
        # frame as delivered traffic — a dead link carries no bytes
        if self._server_conn.closed:
            self.closed = True
            raise ConnectionClosedError("server closed the connection")
        self.clock.sleep(self.spec.message_latency(len(data)) + extra_delay)
        with self._lock:
            self.bytes_sent += len(data)
            # register before handing the frame over: a pooled server may
            # finish the job and deliver the reply before handle() returns
            self._inflight[frame_index] = token
        try:
            reply = self._server_conn.handle(data, frame_index=frame_index)
            if duplicate:
                with self._lock:
                    self.bytes_sent += len(data)
                # the duplicate's inline reply is discarded here; a deferred
                # duplicate reply is dropped in _deliver_reply because the
                # frame resolves on first delivery
                self._server_conn.handle(data, frame_index=frame_index)
        except BaseException:
            with self._lock:
                self._inflight.pop(frame_index, None)
            raise
        if reply is ASYNC_REPLY:
            return None, True
        with self._lock:
            self._inflight.pop(frame_index, None)
        if plan is not None:
            from repro.faults.plan import FaultKind

            decision = plan.decide("recv", frame_index, self.clock.now())
            if decision.kind is not None:
                self._record_fault(decision.kind.value)
            if decision.kind is FaultKind.SEVER:
                self.sever()
            if decision.kind in (FaultKind.SEVER, FaultKind.DROP) or plan.blackholed:
                self._stall(wait_bound, f"reply to frame {frame_index} lost")
            if decision.kind is FaultKind.DELAY:
                self.clock.sleep(decision.delay)
            if decision.kind is FaultKind.CORRUPT and reply is not None:
                reply = plan.corrupt_bytes(reply)
        if reply is None:
            return None, False
        self.clock.sleep(self.spec.message_latency(len(reply)))
        with self._lock:
            self.bytes_received += len(reply)
        return reply, False

    def send_oneway(self, data: bytes) -> bool:
        """Deliver one frame that expects no correlated reply.

        Stream data/control frames travel this way: they are never
        registered in the in-flight table and never wait.  Returns True
        when the frame reached the server, False when the link silently
        ate it (sever, drop, blackhole) — exactly how bytes written to a
        half-dead socket behave.  A cleanly closed channel still raises.
        """
        if self.closed:
            raise ConnectionClosedError(f"{self.spec.name} channel is closed")
        with self._lock:
            frame_index = self.frames_sent
            self.frames_sent += 1
        plan = self._faults
        extra_delay = 0.0
        if plan is not None:
            from repro.faults.plan import FaultKind

            decision = plan.decide("send", frame_index, self.clock.now())
            if decision.kind is not None:
                self._record_fault(decision.kind.value)
            if decision.kind is FaultKind.SEVER:
                self.sever()
            elif decision.kind is FaultKind.DROP:
                self._record_lost_frame()
                return False
            elif decision.kind is FaultKind.DELAY:
                extra_delay = decision.delay
            elif decision.kind is FaultKind.CORRUPT:
                data = plan.corrupt_bytes(data)
        if self.severed or (plan is not None and plan.blackholed):
            self._record_lost_frame()
            return False
        if self._server_conn.closed:
            self.closed = True
            raise ConnectionClosedError("server closed the connection")
        self.clock.sleep(self.spec.message_latency(len(data)) + extra_delay)
        with self._lock:
            self.bytes_sent += len(data)
        self._server_conn.handle(data, frame_index=None)
        return True

    def send_batch(
        self,
        frames: "list[bytes]",
        wait_bound: "Optional[float]" = None,
        tokens: "Optional[list]" = None,
    ) -> "list[Tuple[str, Optional[bytes]]]":
        """Deliver several frames in one coalesced transport write.

        This is the RPC batching path: the whole batch pays the
        per-message transport latency *once* (plus bandwidth on the
        total bytes), instead of once per frame — the coalescing win
        for many small calls.  Returns one ``(status, reply)`` pair per
        input frame: ``("reply", bytes)`` answered inline,
        ``("pending", None)`` deferred to the pool, ``("lost", None)``
        eaten by a fault (the reply-lost handler was already told).
        Send-direction fault decisions apply per frame.
        """
        if self.closed:
            raise ConnectionClosedError(f"{self.spec.name} channel is closed")
        toks = list(tokens) if tokens is not None else [None] * len(frames)
        if len(toks) != len(frames):
            raise InvalidArgumentError("send_batch needs one token per frame")
        with self._lock:
            indexed = []
            for data, token in zip(frames, toks):
                indexed.append([self.frames_sent, data, token])
                self.frames_sent += 1
        results: "Dict[int, Tuple[str, Optional[bytes]]]" = {}

        def lose(frame_index: int, token: Any) -> None:
            results[frame_index] = ("lost", None)
            self._record_lost_frame()
            if self._reply_lost_handler is not None:
                self._reply_lost_handler(token, "lost")

        plan = self._faults
        deliverable = []
        for item in indexed:
            frame_index, data, token = item
            if plan is not None:
                from repro.faults.plan import FaultKind

                decision = plan.decide("send", frame_index, self.clock.now())
                if decision.kind is not None:
                    self._record_fault(decision.kind.value)
                if decision.kind is FaultKind.SEVER:
                    self.sever()
                elif decision.kind is FaultKind.DROP:
                    lose(frame_index, token)
                    continue
                elif decision.kind is FaultKind.DELAY:
                    self.clock.sleep(decision.delay)
                elif decision.kind is FaultKind.CORRUPT:
                    item[1] = plan.corrupt_bytes(data)
            if self.severed or (plan is not None and plan.blackholed):
                lose(frame_index, token)
                continue
            deliverable.append(item)
        if deliverable:
            if self._server_conn.closed:
                self.closed = True
                raise ConnectionClosedError("server closed the connection")
            total = sum(len(data) for _fi, data, _tok in deliverable)
            # the whole batch crosses the wire as one write
            self.clock.sleep(self.spec.message_latency(total))
            with self._lock:
                self.bytes_sent += total
                for frame_index, _data, token in deliverable:
                    self._inflight[frame_index] = token
            inline_total = 0
            for frame_index, data, _token in deliverable:
                try:
                    reply = self._server_conn.handle(data, frame_index=frame_index)
                except BaseException:
                    with self._lock:
                        for fi, _d, _t in deliverable:
                            self._inflight.pop(fi, None)
                    raise
                if reply is ASYNC_REPLY:
                    results[frame_index] = ("pending", None)
                    continue
                with self._lock:
                    self._inflight.pop(frame_index, None)
                results[frame_index] = ("reply", reply)
                inline_total += len(reply) if reply is not None else 0
            if inline_total:
                # the inline replies come back as one coalesced read too
                self.clock.sleep(self.spec.message_latency(inline_total))
                with self._lock:
                    self.bytes_received += inline_total
        return [results[frame_index] for frame_index, _data, _token in indexed]

    def set_reply_handler(self, handler: Callable[[bytes], None]) -> None:
        """Install the sink for asynchronously delivered REPLY frames."""
        self._reply_handler = handler

    def set_reply_lost_handler(self, handler: "Callable[[Any, str], None]") -> None:
        """Install the sink for replies that can never arrive."""
        self._reply_lost_handler = handler

    def _deliver_reply(self, data: bytes, frame_index: int) -> None:
        """Server-side delivery of a deferred REPLY frame.

        Runs on the worker thread that finished the job: correlates the
        frame with its request, applies recv-direction fault decisions,
        charges the reply latency, and hands the frame to the reply
        handler.  Unknown frames (duplicates, already-failed requests)
        are dropped silently.
        """
        with self._lock:
            token = self._inflight.pop(frame_index, None)
        if token is None:
            return
        lost = False
        plan = self._faults
        if plan is not None:
            from repro.faults.plan import FaultKind

            decision = plan.decide("recv", frame_index, self.clock.now())
            if decision.kind is not None:
                self._record_fault(decision.kind.value)
            if decision.kind is FaultKind.SEVER:
                self.sever()
            if decision.kind in (FaultKind.SEVER, FaultKind.DROP) or plan.blackholed:
                lost = True
            elif decision.kind is FaultKind.DELAY:
                self.clock.sleep(decision.delay)
            elif decision.kind is FaultKind.CORRUPT:
                data = plan.corrupt_bytes(data)
        if self.closed or self.severed:
            lost = True
        if lost:
            self._record_lost_frame()
            if self._reply_lost_handler is not None:
                self._reply_lost_handler(token, "lost")
            return
        self.clock.sleep(self.spec.message_latency(len(data)))
        with self._lock:
            self.bytes_received += len(data)
        if self._reply_handler is not None:
            self._reply_handler(data)

    def set_event_handler(self, handler: Callable[[bytes], None]) -> None:
        self._event_handler = handler

    def _deliver_event(self, data: bytes) -> None:
        if self.closed or self.severed:
            return
        if self._faults is not None and self._faults.blackholed:
            return
        self.clock.sleep(self.spec.message_latency(len(data)))
        with self._lock:
            self.bytes_received += len(data)
        if self._event_handler is not None:
            self._event_handler(data)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._fail_inflight("closed")
        if not self.severed:
            self._server_conn.close()


class Listener:
    """The server-side acceptor for one (transport, service) pair.

    ``authenticator`` maps the client-supplied credentials to an
    identity dict, raising :class:`AuthenticationError` to refuse.
    ``on_accept`` lets the daemon veto/account the new connection.
    """

    def __init__(
        self,
        transport: str,
        clock: Optional[Clock] = None,
        authenticator: "Optional[Callable[[Dict[str, Any]], Dict[str, Any]]]" = None,
        on_accept: "Optional[Callable[[ServerConnection], None]]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        self.spec = spec_for(transport)
        self.clock = clock or VirtualClock()
        self._authenticator = authenticator
        self._on_accept = on_accept
        self._connections: "list[ServerConnection]" = []
        self._lock = threading.Lock()
        self._fault_plan: "Optional[FaultPlan]" = None
        self.accepted = 0
        self.rejected = 0
        self.metrics = metrics
        if metrics is not None:
            self._m_conns = metrics.counter(
                "transport_connections_total",
                "Connection attempts by transport and outcome",
                ("transport", "outcome"),
            )
            self._m_bytes_in = metrics.counter(
                "transport_bytes_received_total",
                "Payload bytes received by the daemon",
                ("transport",),
            )
            self._m_bytes_out = metrics.counter(
                "transport_bytes_sent_total",
                "Payload bytes sent by the daemon",
                ("transport",),
            )
            self._m_lost = metrics.counter(
                "transport_frames_lost_total",
                "Frames that never produced a reply (drops, dead links)",
                ("transport",),
            )
            self._m_faults = metrics.counter(
                "transport_faults_total",
                "Fault injections observed on the wire",
                ("transport", "kind"),
            )

    # -- metric recording (no-ops without a registry) ----------------------

    def _record_bytes(self, sent: int = 0, received: int = 0) -> None:
        if self.metrics is None:
            return
        if sent:
            self._m_bytes_out.labels(transport=self.spec.name).inc(sent)
        if received:
            self._m_bytes_in.labels(transport=self.spec.name).inc(received)

    def _record_loss(self) -> None:
        if self.metrics is not None:
            self._m_lost.labels(transport=self.spec.name).inc()

    def _record_fault(self, kind: str) -> None:
        if self.metrics is not None:
            self._m_faults.labels(transport=self.spec.name, kind=kind).inc()

    def _record_connection(self, outcome: str) -> None:
        if self.metrics is not None:
            self._m_conns.labels(transport=self.spec.name, outcome=outcome).inc()

    def install_fault_plan(self, plan: "Optional[FaultPlan]") -> None:
        """Apply ``plan`` to every channel accepted from now on.

        Sharing one plan across channels is how daemon-wide faults
        (blackhole) are scripted; frame-pinned rules fire once, so a
        reconnected channel does not replay the same scripted fault.
        """
        self._fault_plan = plan

    def connect(self, credentials: "Optional[Dict[str, Any]]" = None) -> Channel:
        """Client-side connect: handshake latency, auth, accept hook."""
        self.clock.sleep(self.spec.connect_latency)
        creds = dict(credentials or {})
        identity: Dict[str, Any] = {
            "transport": self.spec.name,
            "username": creds.get("username", "anonymous"),
        }
        if self.spec.local:
            identity.setdefault("unix_user_id", creds.get("uid", 0))
            identity.setdefault("unix_process_id", creds.get("pid", 1))
        else:
            identity.setdefault("sock_addr", creds.get("addr", "192.0.2.10:0"))
        if self._authenticator is not None:
            try:
                identity.update(self._authenticator(creds) or {})
            except AuthenticationError:
                with self._lock:
                    self.rejected += 1
                self._record_connection("rejected")
                raise
        conn_ref: "list" = [None]
        channel = Channel(self.spec, self.clock, conn_ref)
        if self._fault_plan is not None:
            channel.install_fault_plan(self._fault_plan)
        conn = ServerConnection(self, channel, identity)
        conn_ref[0] = conn
        if self._on_accept is not None:
            try:
                self._on_accept(conn)
            except Exception:
                with self._lock:
                    self.rejected += 1
                self._record_connection("rejected")
                conn.closed = True
                channel.closed = True
                raise
        with self._lock:
            self._connections.append(conn)
            self.accepted += 1
        self._record_connection("accepted")
        return channel

    def _forget(self, conn: ServerConnection) -> None:
        with self._lock:
            if conn in self._connections:
                self._connections.remove(conn)

    @property
    def active_connections(self) -> int:
        with self._lock:
            return len(self._connections)

    def close_all(self) -> None:
        with self._lock:
            conns = list(self._connections)
        for conn in conns:
            conn.close()
