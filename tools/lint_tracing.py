#!/usr/bin/env python
"""Lint: span-stack internals stay inside ``tracing.py``.

The tracer's thread-local span stack is an implementation detail —
cross-thread propagation must go through the public ``SpanContext``
API (``attach``/``detach``/``start_span``/``span(parent=...)``).
Code that pokes at the stack directly breaks the moment a call hops
threads, which is exactly the bug class PR 3 introduced.  This script
fails CI when anything outside ``tracing.py``:

* touches ``tracer._local`` / ``tracer._stack`` / ``._state()``; or
* builds its own ``threading.local()`` span bookkeeping inside
  ``repro/observability``.

It also enforces span *coverage* on the fleet control plane: every
public ``FleetOrchestrator`` operation and every migration handshake
phase must run inside a span (``.span(`` / ``self._span(``), so a
drained guest always yields a complete stitched trace.  An orchestrator
verb added without a span is exactly the kind of observability hole
this repo's fleet-trace tests exist to prevent.

Usage::

    python tools/lint_tracing.py [root ...]   # default: src tests benchmarks
"""

import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
DEFAULT_ROOTS = ("src", "tests", "benchmarks")
ALLOWED = os.path.join("observability", "tracing.py")

#: forbidden everywhere outside tracing.py
_STACK_ACCESS = re.compile(
    r"(?:tracer|\.tracer|self\._tracer)\s*\.\s*(?:_local|_stack|_state)\b"
    r"|\btracer\._local\b|\btracer\._stack\b"
)
#: forbidden inside repro/observability outside tracing.py
_THREAD_LOCAL = re.compile(r"\bthreading\.local\s*\(")


def lint_file(path):
    problems = []
    in_observability = (os.sep + "observability" + os.sep) in path
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.split("#", 1)[0]
            if _STACK_ACCESS.search(stripped):
                problems.append(
                    (lineno, "direct span-stack access (use SpanContext attach/detach)")
                )
            if in_observability and _THREAD_LOCAL.search(stripped):
                problems.append(
                    (lineno, "threading.local() span bookkeeping belongs in tracing.py")
                )
    return problems


#: files whose named functions must open a span in their body
_ORCHESTRATOR = os.path.join("fleet", "orchestrator.py")
_MIGRATION = os.path.join("migration", "manager.py")
#: a span is opened by ``tracer.span(...)`` or the ``self._span(...)`` helper
_SPAN_OPEN = re.compile(r"\._?span\s*\(")
_MIGRATION_PHASES = ("begin", "prepare", "perform", "finish", "confirm")


def _public_methods(source, class_name):
    """(name, body) for each method defined under ``class class_name``."""
    match = re.search(rf"^class {class_name}\b", source, re.MULTILINE)
    if match is None:
        return []
    offset = match.start()
    source = source[offset:]
    methods = []
    matches = list(re.finditer(r"^    def (\w+)\s*\(", source, re.MULTILINE))
    for i, match in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(source)
        methods.append((match.group(1), source[match.start() : end]))
    return methods


def lint_span_coverage(path):
    """Require a span around fleet orchestration and migration phases."""
    problems = []
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    if path.endswith(_ORCHESTRATOR):
        for name, body in _public_methods(source, "FleetOrchestrator"):
            if name.startswith("_") or name in ("plan_drain",):
                continue  # planning is pure bookkeeping, no I/O to trace
            if not _SPAN_OPEN.search(body):
                lineno = source[: source.index(f"def {name}")].count("\n") + 1
                problems.append(
                    (lineno, f"FleetOrchestrator.{name} must run inside a span")
                )
    if path.endswith(_MIGRATION):
        match = re.search(r"^def run_handshake\b.*?(?=^def |\Z)", source,
                          re.MULTILINE | re.DOTALL)
        if match is None or not _SPAN_OPEN.search(match.group(0)):
            problems.append(
                (1, "run_handshake must open a span around each phase")
            )
        else:
            body = match.group(0)
            for phase in _MIGRATION_PHASES:
                if f'"{phase}"' not in body and f"'{phase}'" not in body:
                    problems.append(
                        (1, f"migration phase {phase!r} missing from run_handshake")
                    )
    return problems


def main(argv=None):
    roots = (argv or sys.argv[1:]) or [os.path.join(REPO, r) for r in DEFAULT_ROOTS]
    failures = 0
    for root in roots:
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                if path.endswith(ALLOWED):
                    continue
                for lineno, why in lint_file(path) + lint_span_coverage(path):
                    rel = os.path.relpath(path, REPO)
                    print(f"{rel}:{lineno}: {why}", file=sys.stderr)
                    failures += 1
    if failures:
        print(f"lint_tracing: {failures} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
