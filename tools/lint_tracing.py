#!/usr/bin/env python
"""Lint: span-stack internals stay inside ``tracing.py``.

The tracer's thread-local span stack is an implementation detail —
cross-thread propagation must go through the public ``SpanContext``
API (``attach``/``detach``/``start_span``/``span(parent=...)``).
Code that pokes at the stack directly breaks the moment a call hops
threads, which is exactly the bug class PR 3 introduced.  This script
fails CI when anything outside ``tracing.py``:

* touches ``tracer._local`` / ``tracer._stack`` / ``._state()``; or
* builds its own ``threading.local()`` span bookkeeping inside
  ``repro/observability``.

Usage::

    python tools/lint_tracing.py [root ...]   # default: src tests benchmarks
"""

import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
DEFAULT_ROOTS = ("src", "tests", "benchmarks")
ALLOWED = os.path.join("observability", "tracing.py")

#: forbidden everywhere outside tracing.py
_STACK_ACCESS = re.compile(
    r"(?:tracer|\.tracer|self\._tracer)\s*\.\s*(?:_local|_stack|_state)\b"
    r"|\btracer\._local\b|\btracer\._stack\b"
)
#: forbidden inside repro/observability outside tracing.py
_THREAD_LOCAL = re.compile(r"\bthreading\.local\s*\(")


def lint_file(path):
    problems = []
    in_observability = (os.sep + "observability" + os.sep) in path
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            stripped = line.split("#", 1)[0]
            if _STACK_ACCESS.search(stripped):
                problems.append(
                    (lineno, "direct span-stack access (use SpanContext attach/detach)")
                )
            if in_observability and _THREAD_LOCAL.search(stripped):
                problems.append(
                    (lineno, "threading.local() span bookkeeping belongs in tracing.py")
                )
    return problems


def main(argv=None):
    roots = (argv or sys.argv[1:]) or [os.path.join(REPO, r) for r in DEFAULT_ROOTS]
    failures = 0
    for root in roots:
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                if path.endswith(ALLOWED):
                    continue
                for lineno, why in lint_file(path):
                    rel = os.path.relpath(path, REPO)
                    print(f"{rel}:{lineno}: {why}", file=sys.stderr)
                    failures += 1
    if failures:
        print(f"lint_tracing: {failures} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
