#!/usr/bin/env python
"""Lint: every journaling ``StatefulDriver`` procedure publishes an event.

The event-driven control plane's coherence contract is publish-on-
mutate: remote clients cache reads (``list_domains``, ``domain_state``,
``get_xml_desc``) and rely on pushed bus records to invalidate those
entries, so a mutating procedure that journals a change without
publishing leaves every subscribed client serving stale data until its
next reconnect.  That contract decays silently — a new driver method
that calls ``self._journal_domain(...)`` but never touches
``self.events`` passes every functional test that doesn't also poll a
cache — so this script fails CI when:

* a public ``StatefulDriver`` method that (transitively, through
  ``self.`` helper calls) reaches a ``self._journal*`` write cannot
  (transitively) reach ``self.events.emit`` or ``self.events.publish``
  — unless listed in ``EXEMPT`` with a reason;
* ``EXEMPT`` names a method the class does not define (stale entry), or
  an entry whose method no longer journals (the exemption is dead
  weight and should be removed).

Usage::

    python tools/lint_event_emits.py
"""

import ast
import inspect
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
sys.path.insert(0, os.path.join(REPO, "src"))

import repro.drivers.stateful as stateful_module  # noqa: E402
from repro.drivers.stateful import StatefulDriver  # noqa: E402

#: ``self.events`` methods that put a record in front of subscribers —
#: ``emit`` (legacy lifecycle callbacks; the bus mirrors it) and
#: ``publish`` (typed bus records)
EVENT_CALLS = {"emit", "publish"}

#: methods allowed to journal without publishing, with the reason why
EXEMPT = {
    # restart recovery rebuilds bookkeeping from the journal; replaying
    # the mutations as fresh events would double-deliver every record a
    # subscriber already saw before the crash
    "recover_state": "recovery replays the journal, not the events",
}


def _attribute_chain(node):
    """``self.events.publish`` -> ("self", "events", "publish"); None if
    the chain is not rooted in a plain name (e.g. rooted in a call)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _MethodScan(ast.NodeVisitor):
    """One pass over a method body: self-calls, journal writes, emits."""

    def __init__(self, name):
        self.name = name
        self.self_calls = set()
        self.journals = False
        self.emits = False

    def visit_Call(self, node):
        chain = _attribute_chain(node.func)
        if chain is not None and chain[0] == "self":
            if len(chain) == 2:
                self.self_calls.add(chain[1])
                if chain[1].startswith("_journal"):
                    self.journals = True
            elif len(chain) == 3 and chain[1] == "events" and chain[2] in EVENT_CALLS:
                self.emits = True
        self.generic_visit(node)

    def visit_FunctionDef(self, node):  # nested defs share the namespace
        self.generic_visit(node)


def scan_class(tree):
    """Per-method scan of the ``StatefulDriver`` class body."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "StatefulDriver":
            class_node = node
            break
    else:
        raise SystemExit("StatefulDriver class not found in stateful.py")
    scans = {}
    for item in class_node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scan = _MethodScan(item.name)
        scan.visit(item)
        scans[item.name] = scan
    return scans


def close_over_calls(scans, attribute):
    """Transitive closure of a boolean per-method flag along self-calls."""
    closed = {name: getattr(scan, attribute) for name, scan in scans.items()}
    changed = True
    while changed:
        changed = False
        for name, scan in scans.items():
            if closed[name]:
                continue
            if any(closed.get(callee, False) for callee in scan.self_calls):
                closed[name] = True
                changed = True
    return closed


def lint(source=None):
    if source is None:
        source = inspect.getsource(stateful_module)
    scans = scan_class(ast.parse(source))
    journals = close_over_calls(scans, "journals")
    emits = close_over_calls(scans, "emits")

    problems = []
    for name in sorted(EXEMPT):
        if name not in scans:
            problems.append(f"EXEMPT names unknown method {name!r}")
            continue
        if not callable(getattr(StatefulDriver, name, None)):
            problems.append(f"EXEMPT entry {name!r} is not a StatefulDriver method")
        if not journals[name]:
            problems.append(
                f"EXEMPT entry {name!r} never reaches a journal write — stale"
            )
    for name in sorted(scans):
        if name in EXEMPT:
            continue
        # the publish-on-mutate contract binds the public procedure
        # surface; private helpers are building blocks whose callers
        # publish once the full mutation is assembled
        if name.startswith("_"):
            continue
        if journals[name] and not emits[name]:
            problems.append(
                f"{name} journals driver state but never reaches "
                f"self.events.emit/publish (subscribed clients keep "
                f"serving stale cached reads)"
            )
    return problems


def main(argv=None):
    failures = 0
    for why in lint():
        print(f"stateful driver: {why}", file=sys.stderr)
        failures += 1
    if failures:
        print(f"lint_event_emits: {failures} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
