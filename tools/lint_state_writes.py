#!/usr/bin/env python
"""Lint: every mutating ``StatefulDriver`` procedure journals its change.

The crash-safety contract is journal-before-ack: a daemon acknowledges
a mutation only after a record for it reached the state directory, and
every journal write funnels through ``StatefulDriver._journal_write``
so the seeded ``MID_JOURNAL`` kill point can tear it.  Both halves
decay silently — a new driver method that updates ``self._domains``
but never journals simply loses that state on the next restart, and a
direct ``self._state.put(...)`` bypasses crash injection — so this
script fails CI when:

* a ``StatefulDriver`` method that (transitively, through ``self.``
  helper calls) mutates persisted bookkeeping cannot (transitively)
  reach a ``self._journal*`` call, a ``flush_state``, or a journal
  checkpoint — unless listed in ``EXEMPT`` with a reason;
* any method other than the ``_journal_write`` funnel calls a journal
  *write* primitive (``put`` / ``delete`` / ``append_torn``) on
  ``self._state``, which would dodge the seeded kill point;
* ``EXEMPT`` names a method the class does not define (stale entry).

Usage::

    python tools/lint_state_writes.py
"""

import ast
import inspect
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
sys.path.insert(0, os.path.join(REPO, "src"))

import repro.drivers.stateful as stateful_module  # noqa: E402
from repro.drivers.stateful import StatefulDriver  # noqa: E402

#: driver attributes that recovery rebuilds from the journal — writing
#: any of them without journaling loses the write on restart
PERSISTED = {
    "_domains",
    "_uuid_index",
    "_ids",
    "_next_id",
    "_networks",
    "_active_networks",
    "_dhcp_leases",
    "_pools",
    "_active_pools",
    "_pool_volumes",
}

#: method names that mutate the container/record they are called on
MUTATOR_CALLS = {
    "add",
    "append",
    "clear",
    "create",
    "delete",
    "discard",
    "extend",
    "insert",
    "merge",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

#: journal write primitives that must stay inside the funnel
JOURNAL_WRITE_PRIMITIVES = {"put", "delete", "append_torn"}
JOURNAL_FUNNEL = "_journal_write"

#: methods allowed to mutate without journaling, with the reason why
EXEMPT = {
    # runtime-only transitions: whether a guest is running/paused is the
    # hypervisor's truth; recovery re-reads it from the backend
    "domain_suspend": "runtime-only state, backend is the truth",
    "domain_resume": "runtime-only state, backend is the truth",
    "domain_reboot": "runtime-only state, backend is the truth",
    # read-only description of the source domain for a migration
    "migrate_begin": "builds a description, mutates nothing persisted",
    # pure orchestration: the per-phase hooks it drives journal themselves
    "migrate_p2p": "delegates to migrate_* hooks, which journal",
    # boot-time convenience wrapper over domain_create, which journals
    "autostart_all": "delegates to domain_create, which journals",
}


def _attribute_chain(node):
    """``self._domains.get`` -> ("self", "_domains", "get"); None if the
    chain is not rooted in a plain name (e.g. rooted in a call)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _subscript_root(node):
    """Peel subscripts: ``self._pool_volumes[pool][vol]`` -> the chain."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _is_self_record_call(node):
    """``self._record(...)`` / ``self._get_pool(...)`` — returns a live
    record object; assigning through it mutates persisted bookkeeping."""
    if not isinstance(node, ast.Call):
        return False
    chain = _attribute_chain(node.func)
    return chain is not None and chain[0] == "self" and chain[1] in {
        "_record",
        "_get_network",
        "_get_pool",
    }


class _MethodScan(ast.NodeVisitor):
    """One pass over a method body: aliases, mutations, journal calls."""

    def __init__(self, name):
        self.name = name
        self.self_calls = set()
        self.mutates = False
        self.journals = False
        self.state_writes = []
        #: locals that alias persisted state (records, container views)
        self.aliases = set()

    # -- alias tracking ------------------------------------------------

    def _value_is_persisted(self, node):
        if _is_self_record_call(node):
            return True
        if isinstance(node, ast.Call):
            node = node.func
        chain = _attribute_chain(_subscript_root(node))
        if chain is None:
            return False
        if chain[0] == "self" and len(chain) > 1 and chain[1] in PERSISTED:
            return True
        return chain[0] in self.aliases

    def visit_Assign(self, node):
        for target in node.targets:
            if isinstance(target, ast.Name) and self._value_is_persisted(node.value):
                self.aliases.add(target.id)
            else:
                self._check_write_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        self._check_write_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node):
        for target in node.targets:
            self._check_write_target(target)
        self.generic_visit(node)

    # -- mutation detection --------------------------------------------

    def _roots_in_persisted(self, node):
        node = _subscript_root(node)
        inner = node
        while isinstance(inner, ast.Attribute):
            inner = inner.value
        if _is_self_record_call(inner):
            return True
        chain = _attribute_chain(node)
        if chain is None:
            return False
        if chain[0] == "self" and len(chain) > 1 and chain[1] in PERSISTED:
            return True
        return chain[0] in self.aliases

    def _check_write_target(self, target):
        # a bare-name rebind is a local; attribute/subscript writes count
        if isinstance(target, ast.Name):
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_write_target(element)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value if isinstance(target, ast.Attribute) else target
            if self._roots_in_persisted(base):
                self.mutates = True

    def visit_Call(self, node):
        chain = _attribute_chain(node.func)
        if chain is not None and chain[0] == "self" and len(chain) == 2:
            method = chain[1]
            self.self_calls.add(method)
            if method.startswith("_journal") or method == "flush_state":
                self.journals = True
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = node.func.value
            receiver_chain = _attribute_chain(_subscript_root(receiver))
            on_state = receiver_chain is not None and (
                (receiver_chain[0] == "self" and receiver_chain[-1] == "_state")
                or receiver_chain[0] in {"journal"}
            )
            if on_state and attr in JOURNAL_WRITE_PRIMITIVES:
                self.state_writes.append((self.name, node.lineno, attr))
            if on_state and attr == "checkpoint":
                self.journals = True
            if attr in MUTATOR_CALLS and not on_state:
                if self._roots_in_persisted(receiver):
                    self.mutates = True
        self.generic_visit(node)

    def visit_FunctionDef(self, node):  # nested defs share the namespace
        self.generic_visit(node)


def scan_class(tree):
    """Per-method scan of the ``StatefulDriver`` class body."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "StatefulDriver":
            class_node = node
            break
    else:
        raise SystemExit("StatefulDriver class not found in stateful.py")
    scans = {}
    for item in class_node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scan = _MethodScan(item.name)
        # record-shaped parameters alias persisted state too
        for arg in item.args.args:
            if arg.arg == "record":
                scan.aliases.add("record")
        scan.visit(item)
        scans[item.name] = scan
    return scans


def close_over_calls(scans, attribute):
    """Transitive closure of a boolean per-method flag along self-calls."""
    closed = {name: getattr(scan, attribute) for name, scan in scans.items()}
    changed = True
    while changed:
        changed = False
        for name, scan in scans.items():
            if closed[name]:
                continue
            if any(closed.get(callee, False) for callee in scan.self_calls):
                closed[name] = True
                changed = True
    return closed


def lint():
    source = inspect.getsource(stateful_module)
    scans = scan_class(ast.parse(source))
    mutates = close_over_calls(scans, "mutates")
    journals = close_over_calls(scans, "journals")

    problems = []
    for name in sorted(EXEMPT):
        if name not in scans:
            problems.append(f"EXEMPT names unknown method {name!r}")
        if not callable(getattr(StatefulDriver, name, None)):
            problems.append(f"EXEMPT entry {name!r} is not a StatefulDriver method")
    for name, scan in sorted(scans.items()):
        if name in EXEMPT:
            continue
        # the journal-before-ack contract binds the public procedure
        # surface; private helpers are building blocks whose callers
        # journal once the full mutation is assembled
        if not name.startswith("_") and mutates[name] and not journals[name]:
            problems.append(
                f"{name} mutates persisted driver state but never reaches "
                f"a self._journal* call (state lost on daemon restart)"
            )
        if name != JOURNAL_FUNNEL:
            for method, lineno, attr in scan.state_writes:
                problems.append(
                    f"{method}:{lineno} calls journal.{attr}() outside the "
                    f"{JOURNAL_FUNNEL} funnel (bypasses MID_JOURNAL crash injection)"
                )
    return problems


def main(argv=None):
    failures = 0
    for why in lint():
        print(f"stateful driver: {why}", file=sys.stderr)
        failures += 1
    if failures:
        print(f"lint_state_writes: {failures} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
