#!/usr/bin/env python
"""Lint: driver capability claims match their implemented surface.

Every driver advertises features (``features()``) and declares the
methods it deliberately refuses (``unsupported_ops``).  The paper's
capability matrix is only honest if those declarations match the code,
so this script fails CI when:

* a driver claims a feature but one of that feature's methods (see
  ``FEATURE_METHODS`` in ``repro.core.driver``) is not overridden
  below the abstract ``Driver`` base, or is listed in
  ``unsupported_ops`` anyway;
* a driver implements a method belonging to a feature it does *not*
  claim without listing it in ``unsupported_ops`` (silent capability);
* ``unsupported_ops`` names something that is not a ``Driver`` method;
* the remote driver fails to pass a public ``Driver`` method through
  (a hole in the RPC surface the capability matrix cannot see).

Usage::

    python tools/lint_driver_surface.py
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.core.driver import FEATURE_METHODS, Driver  # noqa: E402
from repro.drivers.esx import EsxDriver  # noqa: E402
from repro.drivers.lxc import LxcDriver  # noqa: E402
from repro.drivers.qemu import QemuDriver  # noqa: E402
from repro.drivers.remote import RemoteDriver  # noqa: E402
from repro.drivers.test import TestDriver  # noqa: E402
from repro.drivers.xen import XenDriver  # noqa: E402
from repro.hypervisors.esx_backend import EsxBackend  # noqa: E402

#: base-class plumbing no driver is expected to override
_NOT_SURFACE = {"features", "supports_feature"}


def public_driver_methods():
    return sorted(
        name
        for name, value in vars(Driver).items()
        if callable(value) and not name.startswith("_")
    )


def overrides(driver_class, method):
    """Is ``method`` implemented below the abstract base in the MRO?"""
    for klass in driver_class.__mro__:
        if klass is Driver:
            return False
        if method in vars(klass):
            return True
    return False


def lint_driver(driver):
    problems = []
    klass = type(driver)
    claimed = set(driver.features())
    unsupported = set(driver.unsupported_ops)
    surface = set(public_driver_methods())

    for name in sorted(unsupported - surface):
        problems.append(f"unsupported_ops names unknown method {name!r}")

    for feature, methods in sorted(FEATURE_METHODS.items()):
        if feature in claimed:
            for method in methods:
                if not overrides(klass, method):
                    problems.append(
                        f"claims {feature!r} but does not implement {method!r}"
                    )
                if method in unsupported:
                    problems.append(
                        f"claims {feature!r} yet lists {method!r} in unsupported_ops"
                    )
        else:
            for method in methods:
                if overrides(klass, method) and method not in unsupported:
                    problems.append(
                        f"implements {method!r} without claiming {feature!r} "
                        f"or listing it in unsupported_ops"
                    )
    return problems


def lint_remote():
    """The remote driver must pass every public method over the wire."""
    problems = []
    own = vars(RemoteDriver)
    for method in public_driver_methods():
        if method in _NOT_SURFACE:
            continue
        if method not in own:
            problems.append(f"remote driver does not forward {method!r}")
    return problems


def main(argv=None):
    drivers = [
        QemuDriver(),
        XenDriver(),
        LxcDriver(),
        TestDriver(seed_default=False),
        EsxDriver(EsxBackend()),
    ]
    failures = 0
    for driver in drivers:
        for why in lint_driver(driver):
            print(f"driver {driver.name}: {why}", file=sys.stderr)
            failures += 1
    for why in lint_remote():
        print(f"driver remote: {why}", file=sys.stderr)
        failures += 1
    if failures:
        print(f"lint_driver_surface: {failures} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
