#!/usr/bin/env python3
"""Quickstart: the uniform API in five minutes.

Connects to the built-in mock node (``test:///default``), defines a
domain from a config object, walks it through its lifecycle, resizes
it, snapshots it, and watches lifecycle events arrive — everything a
management application does, with no hypervisor required.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # 1. open a connection — the URI picks the driver
    conn = repro.open_connection("test:///default")
    print(f"connected to {conn.uri} (host {conn.hostname()})")

    # 2. subscribe to lifecycle events before doing anything
    events = []
    conn.register_domain_event(
        lambda name, event, detail: events.append(f"{name}: {event.name.lower()}")
    )

    # 3. describe a guest as a config document
    config = repro.DomainConfig(
        name="web1",
        domain_type="test",
        memory_kib=2 * 1024 * 1024,  # 2 GiB
        vcpus=2,
        disks=[repro.DiskDevice("/img/web1.qcow2", "vda", capacity_bytes=10 * 1024**3)],
        interfaces=[repro.InterfaceDevice("network", "default")],
    )

    # 4. define (persist) and start it
    domain = conn.define_domain(config)
    domain.start()
    info = domain.info()
    print(f"web1 is {domain.state_text()}: {info.vcpus} vCPUs, {info.memory_kib} KiB")

    # 5. live management: balloon the memory down, take a snapshot
    domain.set_memory(1024 * 1024)
    print(f"ballooned to {domain.info().memory_kib} KiB")
    domain.create_snapshot("before-maintenance")
    print(f"snapshots: {domain.list_snapshots()}")

    # 6. pause/resume and a clean shutdown
    domain.suspend()
    print(f"paused: {domain.state_text()}")
    domain.resume()
    domain.shutdown()
    print(f"after shutdown: {domain.state_text()}")

    # 7. the event stream saw it all
    print("events observed:")
    for line in events:
        print(f"  {line}")

    domain.undefine()
    conn.close()


if __name__ == "__main__":
    main()
