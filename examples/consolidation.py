#!/usr/bin/env python3
"""Server consolidation via live migration — the intro's motivating case.

A small data centre runs guests spread across four hosts at low
utilization.  The consolidation loop live-migrates guests onto as few
hosts as possible (first-fit decreasing by memory), then reports how
many hosts were freed and what each migration cost in total time and
guest downtime.

Run:  python examples/consolidation.py
"""

import random
from typing import Dict, List

import repro
from repro.core.connection import Connection
from repro.core.uri import ConnectionURI
from repro.drivers.qemu import QemuDriver
from repro.hypervisors.host import SimHost
from repro.hypervisors.qemu_backend import QemuBackend
from repro.util.clock import VirtualClock

GiB_KIB = 1024 * 1024
HOST_MEMORY_KIB = 24 * GiB_KIB


def build_datacentre(clock: VirtualClock) -> Dict[str, Connection]:
    """Four identical hosts, each with its own qemu driver."""
    connections = {}
    for index in range(4):
        hostname = f"host{index}"
        host = SimHost(hostname=hostname, cpus=16, memory_kib=HOST_MEMORY_KIB, clock=clock)
        driver = QemuDriver(QemuBackend(host=host, clock=clock))
        connections[hostname] = Connection(
            driver, ConnectionURI.parse(f"qemu://{hostname}/system")
        )
    return connections


def deploy_guests(connections: Dict[str, Connection], rng: random.Random) -> None:
    """Scatter 10 guests round-robin: the fragmented starting point."""
    hosts = list(connections)
    sizes_gib = [4, 2, 2, 1, 1, 4, 2, 1, 2, 1]
    for index, size in enumerate(sizes_gib):
        hostname = hosts[index % len(hosts)]
        config = repro.DomainConfig(
            name=f"vm{index:02d}",
            domain_type="kvm",
            memory_kib=size * GiB_KIB,
            vcpus=max(1, size // 2),
        )
        domain = connections[hostname].define_domain(config)
        domain.start()
        # deterministic per-guest dirty rates: busier guests migrate slower
        runtime = connections[hostname]._driver.backend._get(config.name)
        runtime.dirty_rate_mib_s = rng.choice([16.0, 32.0, 64.0, 128.0])


def utilization(connections: Dict[str, Connection]) -> Dict[str, float]:
    result = {}
    for hostname, conn in connections.items():
        host = conn._driver.backend.host
        result[hostname] = host.used_memory_kib / host.allocatable_kib
    return result


def print_layout(connections: Dict[str, Connection], title: str) -> None:
    print(f"\n{title}")
    for hostname, conn in sorted(connections.items()):
        names = [d.name for d in conn.list_domains(active=True)]
        host = conn._driver.backend.host
        used_gib = host.used_memory_kib / GiB_KIB
        bar = "#" * int(20 * used_gib * GiB_KIB / host.allocatable_kib)
        print(f"  {hostname}: [{bar:<20}] {used_gib:4.1f} GiB  {names}")


def consolidate(connections: Dict[str, Connection]) -> List[dict]:
    """First-fit decreasing: move guests off the emptiest hosts."""
    migrations = []
    # order hosts by current load, descending — fill the fullest first
    ordered = sorted(
        connections, key=lambda h: connections[h]._driver.backend.host.used_memory_kib,
        reverse=True,
    )
    targets, sources = ordered[:2], ordered[2:]
    for source_name in sources:
        source = connections[source_name]
        for domain in list(source.list_domains(active=True)):
            info = domain.info()
            for target_name in targets:
                target_host = connections[target_name]._driver.backend.host
                if target_host.free_memory_kib >= info.memory_kib:
                    moved = domain.migrate(connections[target_name])
                    stats = moved.last_migration_stats
                    migrations.append(
                        {
                            "guest": moved.name,
                            "from": source_name,
                            "to": target_name,
                            "total_s": stats["total_time_s"],
                            "downtime_ms": stats["downtime_s"] * 1000,
                            "rounds": stats["rounds"],
                        }
                    )
                    break
    return migrations


def main() -> None:
    clock = VirtualClock()
    rng = random.Random(2010)
    connections = build_datacentre(clock)
    deploy_guests(connections, rng)
    print_layout(connections, "before consolidation:")

    migrations = consolidate(connections)
    print_layout(connections, "after consolidation:")

    print(f"\n{len(migrations)} live migrations:")
    print(f"  {'guest':<8}{'route':<18}{'total':>9}{'downtime':>11}{'rounds':>8}")
    for mig in migrations:
        route = f"{mig['from']}->{mig['to']}"
        print(
            f"  {mig['guest']:<8}{route:<18}{mig['total_s']:>8.2f}s"
            f"{mig['downtime_ms']:>9.1f}ms{mig['rounds']:>8}"
        )

    empty = [h for h, u in utilization(connections).items() if u == 0.0]
    print(f"\nhosts freed and ready to power off: {sorted(empty)}")
    total_downtime = sum(m["downtime_ms"] for m in migrations)
    print(f"cumulative guest downtime across the whole operation: {total_downtime:.1f} ms")

    for conn in connections.values():
        conn.close()


if __name__ == "__main__":
    main()
