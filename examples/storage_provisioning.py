#!/usr/bin/env python3
"""Storage-pool workflow: golden image + copy-on-write clones.

Builds a storage pool, installs a "golden" base image, fast-clones it
for a fleet of guests (thin qcow2 overlays), boots them, and shows how
pool allocation grows only with the overlays' writes — then tears one
guest down and reclaims its overlay.

Run:  python examples/storage_provisioning.py
"""

import repro
from repro.util.units import format_size
from repro.xmlconfig.storage import StoragePoolConfig, VolumeConfig

GiB = 1024**3
GiB_KIB = 1024 * 1024


def main() -> None:
    conn = repro.open_connection("qemu:///system")
    driver = conn._driver

    # 1. a 100 GiB pool for guest images
    pool = conn.define_storage_pool(
        StoragePoolConfig(name="guests", capacity_bytes=100 * GiB)
    ).start()
    print(f"pool 'guests' up: {format_size(pool.info().capacity_bytes)} capacity")

    # 2. the golden image: a fully allocated 8 GiB base
    base = pool.create_volume(
        VolumeConfig("golden-base.qcow2", 8 * GiB, allocation_bytes=8 * GiB)
    )
    print(f"golden image installed at {base.path} ({format_size(8 * GiB)})")

    # 3. thin clones: one overlay per guest, backed by the golden image
    guests = ["web1", "web2", "web3"]
    for name in guests:
        pool.create_volume(
            VolumeConfig(f"{name}.qcow2", 8 * GiB, backing_store=base.path)
        )
    info = pool.info()
    print(
        f"after {len(guests)} clones: allocation {format_size(info.allocation_bytes)} "
        f"(thin overlays cost nothing until written)"
    )

    # 4. boot a guest per clone
    for name in guests:
        volume = pool.lookup_volume(f"{name}.qcow2")
        config = repro.DomainConfig(
            name=name,
            domain_type="kvm",
            memory_kib=1 * GiB_KIB,
            vcpus=1,
            disks=[repro.DiskDevice(volume.path, "vda", capacity_bytes=8 * GiB)],
        )
        conn.define_domain(config).start()
    print(f"booted {len(guests)} guests from their overlays")

    # 5. guests write; their overlays grow, the base stays pristine
    images = driver.backend.images
    for index, name in enumerate(guests):
        images.write(f"/var/lib/pyvirt/images/guests/{name}.qcow2", (index + 1) * GiB)
    info = pool.info()
    print(f"after guest writes: pool allocation {format_size(info.allocation_bytes)}")
    for name in guests:
        vol_info = pool.lookup_volume(f"{name}.qcow2").info()
        chain = images.chain(vol_info.path)
        print(
            f"  {name}: {format_size(vol_info.allocation_bytes):>9} used, "
            f"chain depth {len(chain)}"
        )

    # 6. retire one guest and reclaim its overlay
    victim = conn.lookup_domain("web3")
    victim.destroy()
    victim.undefine()
    pool.lookup_volume("web3.qcow2").delete()
    print(
        f"web3 retired; pool allocation back to "
        f"{format_size(pool.info().allocation_bytes)}"
    )

    # 7. the base image is protected while clones depend on it
    try:
        base.delete()
    except repro.errors.ResourceBusyError as exc:
        print(f"golden image protected: {exc}")

    conn.close()


if __name__ == "__main__":
    main()
